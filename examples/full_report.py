#!/usr/bin/env python3
"""One-shot reproduction report: all tables/figures to Markdown + CSV.

Runs the complete evaluation and writes ``report/REPORT.md`` plus one
CSV per table/figure (for pandas/R/spreadsheets), using the library's
export helpers.

With a cache directory the figure/table drivers run through the
content-addressed result store (see docs/CACHING.md): a re-run after a
crash — or after a code change that only affects some drivers —
recomputes only the units whose fingerprints changed.

Run:  python examples/full_report.py [scale] [outdir] [cache_dir]
"""

import sys
from pathlib import Path

from repro.analysis import (
    astar_scaling,
    average_row,
    format_errors,
    format_figure,
    format_table,
    run_parallel,
    save_csv,
    table1,
)
from repro.analysis.experiments import grand_comparison
from repro.workloads import dacapo

SERIES = ["lower_bound", "iar", "default", "base_level", "optimizing_level"]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    outdir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("report")
    cache_dir = sys.argv[3] if len(sys.argv) > 3 else None
    outdir.mkdir(parents=True, exist_ok=True)

    sections = []

    def emit(name: str, rows, text_title: str, series=None):
        save_csv(rows, outdir / f"{name}.csv")
        if series:
            sections.append(format_figure(rows, series, title=text_title))
        else:
            sections.append(format_table(rows, title=text_title))

    print(f"generating suite at scale {scale} ...")
    suite = dacapo.load_suite(scale=scale)

    emit("table1", table1(scale=scale), "Table 1 — benchmarks")

    # All five paper drivers in one fault-tolerant, resumable pass;
    # with cache_dir, already-computed cells are served from the store.
    print("running figures 5-8 and table 2 ...")
    run = run_parallel(
        suite,
        drivers=("figure5", "figure6", "figure7", "figure8", "table2"),
        cache=cache_dir,
        resume=cache_dir is not None,
        max_retries=2,
    )
    warnings = format_errors(run.errors)
    if warnings:
        print(warnings, file=sys.stderr)
    if cache_dir is not None:
        print(
            f"cache: {run.cache_hits} hits / {run.cache_misses} misses "
            f"({cache_dir})"
        )

    for name, title, driver in (
        ("fig5", "Figure 5 — default cost-benefit model", "figure5"),
        ("fig6", "Figure 6 — oracle cost-benefit model", "figure6"),
    ):
        rows = list(run.rows[driver])
        rows.insert(0, average_row(rows, SERIES, mean="geo"))
        emit(name, rows, title, series=SERIES)

    rows7 = list(run.rows["figure7"])
    cores = [c for c in rows7[0] if c.startswith("cores_")]
    rows7.insert(0, average_row(rows7, cores))
    emit("fig7", rows7, "Figure 7 — concurrent JIT", series=cores)

    rows8 = list(run.rows["figure8"])
    rows8.insert(0, average_row(rows8, SERIES, mean="geo"))
    emit("fig8", rows8, "Figure 8 — V8 scheme", series=SERIES)

    emit("table2", run.rows["table2"], "Table 2 — IAR overhead")

    print("running A*-search scaling ...")
    emit("astar", astar_scaling(max_frontier=200_000), "A*-search feasibility")

    print("running grand comparison ...")
    grand_rows = []
    for name, instance in suite.items():
        row = {"benchmark": name}
        row.update(grand_comparison(instance))
        grand_rows.append(row)
    emit("grand", grand_rows, "Extension — all schedulers")

    report = outdir / "REPORT.md"
    body = "\n\n".join(f"```\n{s}\n```" for s in sections)
    report.write_text(
        "# Reproduction report\n\n"
        f"Workload scale: {scale}.  See EXPERIMENTS.md for the "
        "paper-vs-measured discussion.\n\n" + body + "\n"
    )
    print(f"wrote {report} and {len(sections)} CSVs to {outdir}/")


if __name__ == "__main__":
    main()
