#!/usr/bin/env python3
"""One-shot reproduction report: all tables/figures to Markdown + CSV.

Runs the complete evaluation and writes ``report/REPORT.md`` plus one
CSV per table/figure (for pandas/R/spreadsheets), using the library's
export helpers.

Run:  python examples/full_report.py [scale] [outdir]
"""

import sys
from pathlib import Path

from repro.analysis import (
    astar_scaling,
    average_row,
    figure5,
    figure6,
    figure7,
    figure8,
    format_figure,
    format_table,
    save_csv,
    table1,
    table2,
)
from repro.analysis.experiments import grand_comparison
from repro.workloads import dacapo

SERIES = ["lower_bound", "iar", "default", "base_level", "optimizing_level"]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    outdir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("report")
    outdir.mkdir(parents=True, exist_ok=True)

    sections = []

    def emit(name: str, rows, text_title: str, series=None):
        save_csv(rows, outdir / f"{name}.csv")
        if series:
            sections.append(format_figure(rows, series, title=text_title))
        else:
            sections.append(format_table(rows, title=text_title))

    print(f"generating suite at scale {scale} ...")
    suite = dacapo.load_suite(scale=scale)

    emit("table1", table1(scale=scale), "Table 1 — benchmarks")

    for name, title, driver in (
        ("fig5", "Figure 5 — default cost-benefit model", figure5),
        ("fig6", "Figure 6 — oracle cost-benefit model", figure6),
    ):
        print(f"running {name} ...")
        rows = driver(suite)
        rows.insert(0, average_row(rows, SERIES, mean="geo"))
        emit(name, rows, title, series=SERIES)

    print("running fig7 ...")
    rows7 = figure7(suite)
    cores = [c for c in rows7[0] if c.startswith("cores_")]
    rows7.insert(0, average_row(rows7, cores))
    emit("fig7", rows7, "Figure 7 — concurrent JIT", series=cores)

    print("running fig8 ...")
    rows8 = figure8(suite)
    rows8.insert(0, average_row(rows8, SERIES, mean="geo"))
    emit("fig8", rows8, "Figure 8 — V8 scheme", series=SERIES)

    print("running table2 ...")
    emit("table2", table2(suite), "Table 2 — IAR overhead")

    print("running A*-search scaling ...")
    emit("astar", astar_scaling(max_frontier=200_000), "A*-search feasibility")

    print("running grand comparison ...")
    grand_rows = []
    for name, instance in suite.items():
        row = {"benchmark": name}
        row.update(grand_comparison(instance))
        grand_rows.append(row)
    emit("grand", grand_rows, "Extension — all schedulers")

    report = outdir / "REPORT.md"
    body = "\n\n".join(f"```\n{s}\n```" for s in sections)
    report.write_text(
        "# Reproduction report\n\n"
        f"Workload scale: {scale}.  See EXPERIMENTS.md for the "
        "paper-vs-measured discussion.\n\n" + body + "\n"
    )
    print(f"wrote {report} and {len(sections)} CSVs to {outdir}/")


if __name__ == "__main__":
    main()
