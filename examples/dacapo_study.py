#!/usr/bin/env python3
"""The full evaluation study: every table and figure of Section 6.

Regenerates Table 1, Figures 5–8, Table 2, and the A*-search
feasibility experiment on the synthetic DaCapo suite.

Run:  python examples/dacapo_study.py [scale]

``scale`` defaults to 0.01 (about a minute); the paper's full trace
lengths correspond to ``scale=1.0``.
"""

import sys

from repro.analysis import (
    astar_scaling,
    average_row,
    figure5,
    figure6,
    figure7,
    figure8,
    format_figure,
    format_table,
    table1,
    table2,
)
from repro.workloads import dacapo

SERIES = ["lower_bound", "iar", "default", "base_level", "optimizing_level"]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    print(f"Generating the nine Table-1 benchmarks at scale={scale} ...")
    suite = dacapo.load_suite(scale=scale)
    print()

    print(format_table(table1(scale=scale), title="Table 1 — benchmarks", precision=1))
    print()

    for title, driver in (
        ("Figure 5 — default cost-benefit model", figure5),
        ("Figure 6 — oracle cost-benefit model", figure6),
    ):
        rows = driver(suite)
        rows.insert(0, average_row(rows, SERIES, mean="geo"))
        print(format_figure(rows, SERIES, title=title))
        print()

    rows7 = figure7(suite)
    cores = [c for c in rows7[0] if c.startswith("cores_")]
    rows7.insert(0, average_row(rows7, cores))
    print(format_figure(rows7, cores, title="Figure 7 — concurrent JIT speed-up"))
    print()

    rows8 = figure8(suite)
    rows8.insert(0, average_row(rows8, SERIES, mean="geo"))
    print(format_figure(rows8, SERIES, title="Figure 8 — V8 scheme (two levels)"))
    print()

    print(format_table(table2(suite), title="Table 2 — IAR overhead", precision=4))
    print()

    print(
        format_table(
            astar_scaling(max_frontier=200_000),
            title="Section 6.2.5 — A*-search feasibility",
            precision=1,
        )
    )


if __name__ == "__main__":
    main()
