#!/usr/bin/env python3
"""Walk through the paper's Figures 1 and 2, timeline by timeline.

Reproduces the worked example of Section 4.2: three compilation
schedules for the call sequence ``f0 f1 f2 f1`` (Figure 1), how
appending one more call to ``f2`` flips their ranking (Figure 2), and
what the exact optimum is (brute force + A*-search).

Run:  python examples/paper_walkthrough.py
"""

from repro.analysis import format_timeline
from repro.core import (
    FunctionProfile,
    OCSPInstance,
    Schedule,
    astar_schedule,
    optimal_schedule,
    simulate,
)

PROFILES = {
    "f0": FunctionProfile("f0", (1.0,), (1.0,)),
    "f1": FunctionProfile("f1", (1.0, 4.0), (3.0, 2.0)),
    "f2": FunctionProfile("f2", (1.0, 5.0), (3.0, 1.0)),
}

SCHEMES = {
    "s1: all compiled at level 0": Schedule.of(("f0", 0), ("f1", 0), ("f2", 0)),
    "s2: f1 compiled at level 1, others at level 0": Schedule.of(
        ("f0", 0), ("f1", 1), ("f2", 0)
    ),
    "s3: f1 compiled at level 0 first and then at level 1": Schedule.of(
        ("f0", 0), ("f1", 0), ("f2", 0), ("f1", 1)
    ),
}


def show(instance: OCSPInstance, title: str, schedule: Schedule) -> float:
    result = simulate(instance, schedule, record_timeline=True)
    print(f"--- {title} ---")
    print(format_timeline(result))
    print()
    return result.makespan


def main() -> None:
    fig1 = OCSPInstance(PROFILES, ("f0", "f1", "f2", "f1"), name="fig1")
    print("=" * 64)
    print("Figure 1: invocation sequence  f0 f1 f2 f1")
    print("=" * 64)
    spans = {}
    for title, schedule in SCHEMES.items():
        spans[title] = show(fig1, title, schedule)
    best = min(spans, key=spans.get)
    print(f"Best of the three: {best} (make-span {spans[best]:.0f})")
    print("Compiling f1 cheap first and better later avoids the bubble")
    print("that scheme s2's eager deep compilation causes.")
    print()

    fig2 = OCSPInstance(PROFILES, ("f0", "f1", "f2", "f1", "f2"), name="fig2")
    print("=" * 64)
    print("Figure 2: one more call to f2 appended")
    print("=" * 64)
    extended = {
        "s1 + append C1(f2)": Schedule.of(
            ("f0", 0), ("f1", 0), ("f2", 0), ("f2", 1)
        ),
        "s2 + append C1(f2)": Schedule.of(
            ("f0", 0), ("f1", 1), ("f2", 0), ("f2", 1)
        ),
        "s3 (appending C1(f2) would not help)": SCHEMES[
            "s3: f1 compiled at level 0 first and then at level 1"
        ],
    }
    spans2 = {}
    for title, schedule in extended.items():
        spans2[title] = show(fig2, title, schedule)
    best2 = min(spans2, key=spans2.get)
    print(f"The previously best schedule is now the worst; {best2}")
    print("wins — it recompiles f2, the function with the COSTLIEST")
    print("recompilation, because that is where the remaining calls are.")
    print()

    print("=" * 64)
    print("Exact optimum for the Figure 2 sequence")
    print("=" * 64)
    exact = optimal_schedule(fig2)
    astar = astar_schedule(fig2)
    print(f"brute force: make-span {exact.makespan:.0f} via {exact.schedule}")
    print(
        f"A*-search:   make-span {astar.makespan:.0f}, expanded "
        f"{astar.nodes_expanded} nodes (full-permutation space: "
        f"{astar.paths_total} paths)"
    )


if __name__ == "__main__":
    main()
