#!/usr/bin/env python3
"""Why is a schedule slow?  Exact gap decomposition across schedulers.

Every make-span decomposes exactly as

    makespan = lower_bound + bubbles + timing excess + policy excess

(waiting for compiles; calls that ran slow because their upgrade had
not landed yet; calls that ran slow because the scheduler chose never
to upgrade).  Different schedulers fail differently — this example
makes that visible on one benchmark, the practical tool Section 7 of
the paper gestures at for "see[ing] the room left for improvement".

Run:  python examples/gap_analysis.py [benchmark] [scale]
"""

import sys

from repro.analysis import format_table
from repro.analysis.diagnose import diagnose
from repro.analysis.experiments import project_to_model_levels
from repro.core import iar_schedule
from repro.core.baselines import greedy_budget_schedule, hotness_first_schedule
from repro.core.single_level import base_level_schedule, optimizing_level_schedule
from repro.vm.costbenefit import EstimatedModel
from repro.vm.hotspot import run_tiered
from repro.vm.jikes import run_jikes
from repro.vm.v8 import run_v8
from repro.workloads import dacapo


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "antlr"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.01
    raw = dacapo.load(benchmark, scale=scale)
    # Work on the two-level projection the paper's experiments use: the
    # cost-benefit model picks each function's "suitable" level, and
    # the bound credits calls at that level (see EXPERIMENTS.md).
    instance = project_to_model_levels(raw, EstimatedModel(raw))
    print(
        f"{benchmark} @ scale {scale}: {instance.num_calls} calls over "
        f"{instance.num_functions} functions (model-level projection)"
    )
    print()

    schedules = {
        "IAR": iar_schedule(instance),
        "Jikes RVM scheme": run_jikes(instance).schedule,
        "V8 scheme": run_v8(instance).schedule,
        "tiered (HotSpot-like)": run_tiered(instance).schedule,
        "hotness-first": hotness_first_schedule(instance),
        "greedy budget": greedy_budget_schedule(instance),
        "base level only": base_level_schedule(instance),
        "optimizing level only": optimizing_level_schedule(instance),
    }

    rows = []
    reports = {}
    for label, schedule in schedules.items():
        report = diagnose(instance, schedule)
        reports[label] = report
        rows.append(
            {
                "scheduler": label,
                "normalized": report.normalized,
                "bubbles": report.bubbles / report.lower_bound,
                "timing_excess": report.excess_before_upgrade / report.lower_bound,
                "policy_excess": report.excess_never_upgraded / report.lower_bound,
            }
        )
    rows.sort(key=lambda r: r["normalized"])
    print(
        format_table(
            rows,
            title="Gap decomposition (all columns normalized to the lower bound)",
        )
    )
    print()
    print("Reading: reactive schemes bleed through POLICY excess (upgrades")
    print("that never happen) and TIMING excess (hot code arriving late);")
    print("eager single-level schemes through bubbles; planned schedules")
    print("(IAR, greedy budget) leave only slivers of each.")
    print()

    worst_label = rows[-1]["scheduler"]
    print(f"Worst offenders inside '{worst_label}':")
    print(format_table(reports[worst_label].rows(5), precision=1))


if __name__ == "__main__":
    main()
