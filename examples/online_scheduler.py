#!/usr/bin/env python3
"""Toward an online IAR: plan on noisy cross-run data, execute on truth.

Section 8 of the paper discusses what separates the offline limit study
from a deployable scheduler: the call sequence must be *predicted*
(e.g. from earlier runs) and the per-level times must be *estimated*.
This example measures how IAR's advantage erodes as both degrade —
and at what error level the reactive Jikes scheme catches up.

Run:  python examples/online_scheduler.py
"""

from repro.analysis import format_table
from repro.core import lower_bound
from repro.core.online import online_iar_makespan
from repro.vm.jikes import run_jikes
from repro.workloads import dacapo

BENCHMARK = "jython"
SCALE = 0.01
TIME_ERRORS = (0.0, 0.25, 0.5, 1.0, 2.0)
SEQ_ERRORS = (0.0, 0.1, 0.3)


def main() -> None:
    instance = dacapo.load(BENCHMARK, scale=SCALE)
    lb = lower_bound(instance)
    jikes_span = run_jikes(instance).makespan
    print(
        f"{BENCHMARK} @ scale {SCALE}: {instance.num_calls} calls, "
        f"lower bound {lb:.0f} us, reactive Jikes scheme "
        f"{jikes_span / lb:.2f}x the bound"
    )
    print()

    rows = []
    crossover = None
    for seq_err in SEQ_ERRORS:
        for time_err in TIME_ERRORS:
            result = online_iar_makespan(
                instance,
                time_error=time_err,
                sequence_error=seq_err,
                seed=7,
            )
            normalized = result.makespan / lb
            rows.append(
                {
                    "seq_error": seq_err,
                    "time_error": time_err,
                    "normalized_makespan": normalized,
                    "vs_perfect_iar": result.degradation,
                    "still_beats_jikes": result.makespan < jikes_span,
                }
            )
            if crossover is None and result.makespan >= jikes_span:
                crossover = (seq_err, time_err)

    print(
        format_table(
            rows,
            title="Online IAR under prediction noise (plan on noisy view, "
            "run on truth)",
        )
    )
    print()
    if crossover is None:
        print(
            "Even at the largest injected errors, planned-ahead IAR still "
            "beats the reactive scheme — scheduling tolerates rough "
            "estimates (the hopeful reading of Section 8)."
        )
    else:
        print(
            f"The reactive scheme catches up around seq_error="
            f"{crossover[0]}, time_error={crossover[1]} — beyond that, "
            "better prediction is needed before better scheduling helps."
        )


if __name__ == "__main__":
    main()
