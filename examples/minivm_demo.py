#!/usr/bin/env python3
"""End-to-end with the mini JIT runtime: write bytecode, profile it,
and schedule its compilation.

This is the full data-collection pipeline of the paper's Section 6.1 in
miniature: a program runs on the interpreter, the profiler records the
call sequence and per-invocation work, the simulated multi-level
compiler prices each function at each level, and the schedulers compete
on the resulting OCSP instance.

Run:  python examples/minivm_demo.py
"""

from repro.core import iar, lower_bound, simulate
from repro.core.single_level import base_level_schedule
from repro.jitsim import (
    Interpreter,
    Program,
    SimulatedCompiler,
    assemble,
    extract_instance,
)
from repro.vm.jikes import run_jikes


def build_program() -> Program:
    """A tiny "application": checksum a pseudo-random stream.

    ``next_value`` is the hot leaf (a linear congruence), ``mix`` the
    warm combiner, and ``main`` drives 30000 iterations.
    """
    next_value = assemble(
        "next_value",
        num_params=1,
        num_locals=1,
        source="""
            LOAD 0
            PUSH 1103515245
            MUL
            PUSH 12345
            ADD
            PUSH 2147483648
            MOD
            RET
        """,
    )
    mix = assemble(
        "mix",
        num_params=2,
        num_locals=2,
        source="""
            LOAD 0
            PUSH 31
            MUL
            LOAD 1
            ADD
            PUSH 1000000007
            MOD
            RET
        """,
    )
    main = assemble(
        "main",
        num_params=1,
        num_locals=3,
        source="""
            PUSH 42
            STORE 1
            PUSH 0
            STORE 2
        loop:
            LOAD 0
            JZ done
            LOAD 1
            CALL next_value
            STORE 1
            LOAD 2
            LOAD 1
            CALL mix
            STORE 2
            LOAD 0
            PUSH 1
            SUB
            STORE 0
            JMP loop
        done:
            LOAD 2
            RET
        """,
    )
    return Program.from_functions([main, next_value, mix], entry="main")


def main() -> None:
    program = build_program()
    trace = Interpreter(program).run(30000)
    print(f"program result: {trace.result}")
    print(f"profiled {len(trace.invocations)} invocations, "
          f"{trace.total_instructions} interpreted instructions")

    compiler = SimulatedCompiler()
    for name, func in sorted(program.functions.items()):
        times = ", ".join(
            f"L{lvl}: c={compiler.compile_time(func, lvl):.0f}us "
            f"speedup={compiler.speedup(func, lvl):.1f}x"
            for lvl in range(2)
        )
        print(f"  {name:<12} size={func.size:<3} {times} ...")
    print()

    instance = extract_instance(program, 30000, name="checksum")
    lb = lower_bound(instance)

    iar_result = iar(instance)
    iar_span = simulate(instance, iar_result.schedule, validate=False).makespan
    base_span = simulate(
        instance, base_level_schedule(instance), validate=False
    ).makespan
    jikes_span = run_jikes(instance).makespan

    print(f"lower bound            {lb:10.0f} us")
    print(f"IAR schedule           {iar_span:10.0f} us  ({iar_span / lb:.2f}x)")
    print(f"Jikes RVM scheme       {jikes_span:10.0f} us  ({jikes_span / lb:.2f}x)")
    print(f"base-level only        {base_span:10.0f} us  ({base_span / lb:.2f}x)")
    print()
    print("IAR categories:",
          {f: c for f, c in sorted(iar_result.categories.items())})
    print("IAR schedule:  ", iar_result.schedule)


if __name__ == "__main__":
    main()
