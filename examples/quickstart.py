#!/usr/bin/env python3
"""Quickstart: build an OCSP instance, schedule it five ways, compare.

Run:  python examples/quickstart.py
"""

from repro.core import (
    FunctionProfile,
    OCSPInstance,
    iar_schedule,
    lower_bound,
    simulate,
)
from repro.core.single_level import base_level_schedule, optimizing_level_schedule
from repro.core.singlecore import single_core_optimal_makespan
from repro.vm.jikes import run_jikes
from repro.vm.v8 import run_v8


def build_instance() -> OCSPInstance:
    """A toy warmup run: one hot kernel, one warm helper, cold setup.

    Each function has two compilation levels: (compile time, per-call
    execution time) chosen so that recompiling the hot kernel pays off,
    the helper is borderline, and the setup code is not worth it.
    """
    profiles = {
        "kernel": FunctionProfile("kernel", (30.0, 400.0), (12.0, 3.0)),
        "helper": FunctionProfile("helper", (20.0, 300.0), (8.0, 4.0)),
        "setup": FunctionProfile("setup", (25.0, 500.0), (20.0, 15.0)),
    }
    calls = ("setup",) * 3 + ("helper", "kernel") * 40 + ("kernel",) * 120
    return OCSPInstance(profiles, calls, name="quickstart")


def main() -> None:
    instance = build_instance()
    lb = lower_bound(instance)
    print(f"workload: {instance.num_calls} calls over "
          f"{instance.num_functions} functions; lower bound = {lb:.0f}")
    print()

    schemes = {
        "IAR (this paper)": simulate(
            instance, iar_schedule(instance), validate=False
        ).makespan,
        "Jikes RVM default": run_jikes(instance).makespan,
        "V8 scheme": run_v8(instance).makespan,
        "base level only": simulate(
            instance, base_level_schedule(instance), validate=False
        ).makespan,
        "optimizing level only": simulate(
            instance, optimizing_level_schedule(instance), validate=False
        ).makespan,
        "single-core optimum": single_core_optimal_makespan(instance),
    }
    width = max(len(k) for k in schemes)
    for label, span in sorted(schemes.items(), key=lambda kv: kv[1]):
        print(f"  {label.ljust(width)}  make-span {span:8.0f}"
              f"   ({span / lb:.2f}x lower bound)")

    print()
    print("A good compilation order hides compile time behind execution;")
    print("the reactive schemes discover hotness too late and stall.")


if __name__ == "__main__":
    main()
