"""DaCapo-2006-calibrated benchmark presets (the paper's Table 1).

The paper profiles nine DaCapo benchmarks on Jikes RVM.  We cannot run
that stack, so each preset is a :class:`~repro.workloads.synthetic.WorkloadSpec`
calibrated to Table 1: the function count, the call-sequence length, and
a per-call execution scale chosen so the (unscaled) level-0 run time is
on the order of the reported default run time.

Full-length sequences range up to 43.6M calls; a ``scale`` factor
shrinks the trace for routine runs.  Two quantities must survive
scaling for the results to keep their shape: the *calls-per-function*
ratio (hotness structure) and the *total-compile to total-execution*
ratio (scheduling pressure).  We therefore scale the call count by
``scale``, the function count by ``sqrt(scale)``, and per-function
compile times by ``sqrt(scale)`` — which keeps both ratios within a
constant of their full-size values.  ``scale=1.0`` reproduces Table 1
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.model import OCSPInstance
from .synthetic import WorkloadSpec, generate

__all__ = ["BenchmarkInfo", "TABLE1", "BENCHMARKS", "load", "load_suite", "table1_rows"]


@dataclass(frozen=True)
class BenchmarkInfo:
    """One row of the paper's Table 1.

    Attributes:
        name: benchmark name.
        parallel: whether the DaCapo program is multithreaded (the paper
            merges threads into one call sequence; so do we).
        num_functions: distinct functions in the profiled sequence.
        call_seq_length: full call-sequence length.
        default_time_s: the benchmark's default run time in seconds.
    """

    name: str
    parallel: bool
    num_functions: int
    call_seq_length: int
    default_time_s: float


TABLE1: Tuple[BenchmarkInfo, ...] = (
    BenchmarkInfo("antlr", False, 1187, 2_403_584, 1.6),
    BenchmarkInfo("bloat", False, 1581, 9_423_445, 5.0),
    BenchmarkInfo("eclipse", False, 2194, 467_372, 28.4),
    BenchmarkInfo("fop", False, 1927, 1_323_119, 1.5),
    BenchmarkInfo("hsqldb", True, 1006, 8_022_794, 2.9),
    BenchmarkInfo("jython", False, 2128, 23_655_473, 6.7),
    BenchmarkInfo("luindex", False, 641, 20_582_610, 6.1),
    BenchmarkInfo("lusearch", True, 543, 43_573_214, 3.2),
    BenchmarkInfo("pmd", False, 1876, 12_543_579, 3.5),
)

BENCHMARKS: Dict[str, BenchmarkInfo] = {info.name: info for info in TABLE1}

_SEED_BASE = 0xDACA90


def _spec_for(info: BenchmarkInfo, scale: float) -> WorkloadSpec:
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    root = scale ** 0.5
    num_functions = max(int(round(info.num_functions * root)), 48)
    num_calls = max(int(info.call_seq_length * scale), num_functions)
    # Per-call level-0 time so the full-length level-0 run lands near the
    # reported default time (default runs execute a mix of levels; level
    # 0 being ~2-3x slower than the mix keeps us in the right regime).
    mean_exec_us = info.default_time_s * 1e6 / info.call_seq_length * 2.0
    return WorkloadSpec(
        name=info.name,
        num_functions=num_functions,
        num_calls=num_calls,
        num_levels=4,
        zipf_s=1.45,
        mean_exec_us=mean_exec_us,
        exec_sigma=1.2,
        base_compile_us=150.0 * root,
        level_compile_factors=(1.0, 15.0, 45.0, 120.0),
        max_speedup_range=(3.0, 15.0),
        compile_sigma=0.8,
        warmup_fraction=0.5,
        hot_early_bias=1.0,
    )


def load(name: str, scale: float = 0.02, seed: Optional[int] = None) -> OCSPInstance:
    """Generate the preset trace for one Table 1 benchmark.

    Args:
        name: benchmark name (see :data:`TABLE1`).
        scale: call-sequence scale factor in (0, 1]; 1.0 is the paper's
            full length (compile times co-scale — see module docs).
        seed: RNG seed; defaults to a per-benchmark constant so repeated
            loads agree.

    Raises:
        KeyError: for an unknown benchmark name.
    """
    info = BENCHMARKS[name]
    if seed is None:
        seed = _SEED_BASE + TABLE1.index(info)
    return generate(_spec_for(info, scale), seed=seed)


def load_suite(
    scale: float = 0.02, seed: Optional[int] = None
) -> Dict[str, OCSPInstance]:
    """Generate all nine benchmarks at the given scale.

    With an explicit ``seed``, benchmark ``i`` uses ``seed + i`` — one
    shared seed would generate correlated traces across the suite
    (identical Zipf draws, same hot-function pattern), silently
    narrowing what a "nine-benchmark" study actually exercises.
    """
    return {
        info.name: load(
            info.name,
            scale=scale,
            seed=None if seed is None else seed + i,
        )
        for i, info in enumerate(TABLE1)
    }


def table1_rows(scale: float = 0.02) -> List[Dict[str, object]]:
    """Paper Table 1 vs the generated suite, one dict per benchmark.

    Columns: name, parallelism, paper's function count and sequence
    length, and the generated instance's measured values at ``scale``.
    """
    rows: List[Dict[str, object]] = []
    for info in TABLE1:
        inst = load(info.name, scale=scale)
        rows.append(
            {
                "program": info.name,
                "parallelism": "parallel" if info.parallel else "seq",
                "paper_functions": info.num_functions,
                "paper_calls": info.call_seq_length,
                "paper_time_s": info.default_time_s,
                "generated_functions": inst.num_functions,
                "generated_calls": inst.num_calls,
                "scale": scale,
            }
        )
    return rows
