"""Synthetic call-trace generation.

The paper's data comes from profiling DaCapo benchmarks on Jikes RVM:
per run, a call sequence plus the measured compile/execution time of
every method at every level (Section 6.1).  Without that testbed we
generate statistically similar data (substitution documented in
DESIGN.md).  The generator reproduces the structural properties the
scheduling problem is sensitive to:

* **hotness skew** — call counts follow a Zipf law; a few hot methods
  dominate the sequence;
* **warmup structure** — first appearances are spread over an initial
  fraction of the run (class loading / phase behaviour), hot methods
  tending to appear early;
* **monotone level costs** — per Definition 1, compile times rise and
  execution times fall with the level, with per-function variation in
  how profitable optimization is;
* **cost regime** — baseline compiles cost roughly as much as a handful
  of invocations while top-level compiles cost orders of magnitude
  more, the regime in which scheduling decisions matter (warmup runs).

All times are in microseconds.  Generation is deterministic per
``(spec, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.model import FunctionProfile, OCSPInstance

__all__ = ["WorkloadSpec", "generate", "DEFAULT_LEVEL_COMPILE_FACTORS"]

DEFAULT_LEVEL_COMPILE_FACTORS = (1.0, 10.0, 30.0, 80.0)
"""Relative compile cost per level, shaped after Jikes RVM's baseline
compiler vs optimizing compiler at -O0/-O1/-O2."""


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload.

    Attributes:
        name: label for the generated instance.
        num_functions: distinct functions (``M``); every one appears in
            the trace at least once.
        num_calls: trace length (``N``); must be >= ``num_functions``.
        num_levels: compilation levels per function (Jikes RVM has 4).
        zipf_s: Zipf exponent of the call-count distribution.
        mean_exec_us: median level-0 per-invocation time (microseconds).
        exec_sigma: lognormal spread of per-function level-0 times.
        base_compile_us: median level-0 compile time (microseconds).
        compile_sigma: lognormal spread of per-function compile times.
        level_compile_factors: per-level compile-cost multipliers
            (length must be >= ``num_levels``).
        max_speedup_range: (lo, hi) of the per-function total speedup at
            the top level; intermediate levels interpolate.
        warmup_fraction: fraction of the trace within which all first
            appearances fall.
        hot_early_bias: how strongly hot functions appear early
            (0 = activation order is random).
        num_phases: temporal phases; from phase 2 on, each function's
            hotness is rescaled by a random per-phase factor, so the
            hot set rotates (phase behaviour, Section 9's [14]).
        phase_churn: strength of the per-phase hotness rotation
            (0 = phases are identical, 1 = heavily reshuffled).
    """

    name: str = "synthetic"
    num_functions: int = 100
    num_calls: int = 10_000
    num_levels: int = 4
    zipf_s: float = 1.1
    mean_exec_us: float = 2.0
    exec_sigma: float = 1.2
    base_compile_us: float = 300.0
    compile_sigma: float = 0.8
    level_compile_factors: Tuple[float, ...] = DEFAULT_LEVEL_COMPILE_FACTORS
    max_speedup_range: Tuple[float, float] = (1.5, 8.0)
    warmup_fraction: float = 0.5
    hot_early_bias: float = 1.0
    num_phases: int = 1
    phase_churn: float = 0.5

    def __post_init__(self) -> None:
        if self.num_phases < 1:
            raise ValueError("num_phases must be >= 1")
        if not 0.0 <= self.phase_churn <= 1.0:
            raise ValueError("phase_churn must be in [0, 1]")
        if self.num_functions < 1:
            raise ValueError("num_functions must be >= 1")
        if self.num_calls < self.num_functions:
            raise ValueError("num_calls must be >= num_functions")
        if self.num_levels < 1:
            raise ValueError("num_levels must be >= 1")
        if len(self.level_compile_factors) < self.num_levels:
            raise ValueError(
                "need a compile factor for each of the "
                f"{self.num_levels} levels"
            )
        if not 0.0 < self.warmup_fraction <= 1.0:
            raise ValueError("warmup_fraction must be in (0, 1]")
        lo, hi = self.max_speedup_range
        if lo < 1.0 or hi < lo:
            raise ValueError("max_speedup_range must satisfy 1 <= lo <= hi")


def _function_profiles(
    spec: WorkloadSpec, rng: np.random.Generator
) -> List[FunctionProfile]:
    """Draw per-function cost tables satisfying Definition 1."""
    m = spec.num_functions
    levels = spec.num_levels
    # Level-0 execution time per invocation.
    e0 = spec.mean_exec_us * rng.lognormal(0.0, spec.exec_sigma, size=m)
    # Total speedup achieved at the top level, per function.
    lo, hi = spec.max_speedup_range
    top_speedup = rng.uniform(lo, hi, size=m)
    # Fraction of the (log-scale) speedup realized by each level:
    # concave progression — early levels grab most of the win.
    if levels > 1:
        exponents = np.linspace(0.0, 1.0, levels) ** 0.6
    else:
        exponents = np.array([0.0])
    # Compile times: proportional to a per-function "size" factor.
    size = rng.lognormal(0.0, spec.compile_sigma, size=m)
    factors = np.asarray(spec.level_compile_factors[:levels])

    profiles: List[FunctionProfile] = []
    for i in range(m):
        speedups = top_speedup[i] ** exponents
        exec_times = e0[i] / speedups
        compile_times = spec.base_compile_us * size[i] * factors
        # Small per-level jitter that must not break monotonicity.
        jitter_c = rng.uniform(0.9, 1.1, size=levels)
        jitter_e = rng.uniform(0.9, 1.1, size=levels)
        compile_times = np.maximum.accumulate(compile_times * jitter_c)
        exec_times = np.minimum.accumulate(exec_times * jitter_e)
        profiles.append(
            FunctionProfile(
                name=f"f{i:04d}",
                compile_times=tuple(float(c) for c in compile_times),
                exec_times=tuple(float(e) for e in exec_times),
            )
        )
    return profiles


def _activation_positions(
    spec: WorkloadSpec, weights: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """First-appearance position of each function (by hotness rank).

    Positions fall inside the warmup window; hotter functions are biased
    toward the front via an exponent on a uniform draw.
    """
    m = spec.num_functions
    window = max(int(spec.num_calls * spec.warmup_fraction), m)
    window = min(window, spec.num_calls)
    u = rng.uniform(0.0, 1.0, size=m)
    if spec.hot_early_bias > 0:
        # Hotter (higher weight) -> larger exponent -> earlier position.
        rank_bias = weights / weights.max()
        u = u ** (1.0 + spec.hot_early_bias * rank_bias)
    positions = np.floor(u * window).astype(np.int64)
    # Make positions distinct while preserving order as much as possible.
    order = np.argsort(positions, kind="stable")
    distinct = np.empty(m, dtype=np.int64)
    prev = -1
    for idx in order:
        pos = max(positions[idx], prev + 1)
        distinct[idx] = pos
        prev = pos
    if prev >= spec.num_calls:
        # Overflowed the window (tiny traces): compress into range.
        distinct = np.argsort(np.argsort(distinct, kind="stable"), kind="stable")
    return distinct


def generate(spec: WorkloadSpec, seed: int = 0) -> OCSPInstance:
    """Generate a deterministic synthetic :class:`OCSPInstance`.

    Args:
        spec: workload parameters.
        seed: RNG seed; identical (spec, seed) pairs produce identical
            instances.
    """
    rng = np.random.default_rng(seed)
    profiles = _function_profiles(spec, rng)
    m = spec.num_functions
    n = spec.num_calls

    ranks = np.arange(1, m + 1, dtype=np.float64)
    weights = 1.0 / ranks ** spec.zipf_s
    # Shuffle which function gets which hotness rank (names carry no
    # rank information).
    perm = rng.permutation(m)
    weights = weights[perm]

    first_pos = _activation_positions(spec, weights, rng)
    # Activation events sorted by position.
    activation_order = np.argsort(first_pos, kind="stable")

    # Per-phase hotness rotation: phase 0 keeps the base weights; later
    # phases rescale each function's weight by a lognormal factor.
    phase_factors = np.ones((spec.num_phases, m))
    for p in range(1, spec.num_phases):
        phase_factors[p] = rng.lognormal(0.0, 1.5 * spec.phase_churn, size=m)
    phase_len = max(n // spec.num_phases, 1)

    def phase_of(position: int) -> int:
        return min(position // phase_len, spec.num_phases - 1)

    calls = np.empty(n, dtype=np.int64)
    active: List[int] = []
    active_weights: List[float] = []

    def fill(lo: int, hi: int) -> None:
        """Sample calls for [lo, hi) from the active set, phase-aware."""
        pos = lo
        while pos < hi:
            phase = phase_of(pos)
            phase_end = min((phase + 1) * phase_len, hi)
            if phase == spec.num_phases - 1:
                phase_end = hi
            p = np.asarray(active_weights) * phase_factors[phase][active]
            p = p / p.sum()
            calls[pos:phase_end] = rng.choice(
                active, size=phase_end - pos, p=p
            )
            pos = phase_end

    cursor = 0
    events = list(activation_order)
    event_positions = [int(first_pos[i]) for i in activation_order]

    for event_idx, fidx in enumerate(events):
        pos = min(event_positions[event_idx], n - 1)
        pos = max(pos, cursor)  # never before already-filled prefix
        if pos > cursor and active:
            fill(cursor, pos)
        elif pos > cursor:
            pos = cursor  # nothing active yet: activate immediately
        calls[pos] = fidx
        cursor = pos + 1
        active.append(int(fidx))
        active_weights.append(float(weights[fidx]))

    if cursor < n:
        fill(cursor, n)

    names = [profiles[i].name for i in range(m)]
    call_names = tuple(names[i] for i in calls)
    return OCSPInstance(
        profiles={prof.name: prof for prof in profiles},
        calls=call_names,
        name=spec.name,
    )
