"""Trace (de)serialization.

An :class:`~repro.core.model.OCSPInstance` round-trips through a compact
JSON document: the profile table plus the call sequence as indices into
it.  This is the interchange format between the mini-VM
(:mod:`repro.jitsim`), the generators, and offline analysis — the
equivalent of the paper's collected advice/trace files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..core.model import FunctionProfile, OCSPInstance
from ..core.schedule import CompileTask, Schedule

__all__ = [
    "to_json",
    "from_json",
    "save",
    "load",
    "schedule_to_json",
    "schedule_from_json",
    "save_schedule",
    "load_schedule",
]

_FORMAT_VERSION = 1


def to_json(instance: OCSPInstance) -> str:
    """Serialize an instance to a JSON string."""
    names = sorted(instance.profiles)
    index = {name: i for i, name in enumerate(names)}
    doc = {
        "version": _FORMAT_VERSION,
        "name": instance.name,
        "functions": [
            {
                "name": name,
                "compile_times": list(instance.profiles[name].compile_times),
                "exec_times": list(instance.profiles[name].exec_times),
            }
            for name in names
        ],
        "calls": [index[f] for f in instance.calls],
    }
    return json.dumps(doc, separators=(",", ":"))


def from_json(text: str) -> OCSPInstance:
    """Deserialize an instance from :func:`to_json` output.

    Raises:
        ValueError: on an unsupported format version or malformed doc.
    """
    doc = json.loads(text)
    version = doc.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version!r}")
    profiles: Dict[str, FunctionProfile] = {}
    names: List[str] = []
    for entry in doc["functions"]:
        prof = FunctionProfile(
            name=entry["name"],
            compile_times=tuple(entry["compile_times"]),
            exec_times=tuple(entry["exec_times"]),
        )
        profiles[prof.name] = prof
        names.append(prof.name)
    calls = tuple(names[i] for i in doc["calls"])
    return OCSPInstance(profiles=profiles, calls=calls, name=doc.get("name", "trace"))


def save(instance: OCSPInstance, path: Union[str, Path]) -> None:
    """Write an instance to ``path`` as JSON."""
    Path(path).write_text(to_json(instance))


def load(path: Union[str, Path]) -> OCSPInstance:
    """Read an instance previously written by :func:`save`."""
    return from_json(Path(path).read_text())


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize a compilation schedule to a JSON string."""
    doc = {
        "version": _FORMAT_VERSION,
        "tasks": [[t.function, t.level] for t in schedule],
    }
    return json.dumps(doc, separators=(",", ":"))


def schedule_from_json(text: str) -> Schedule:
    """Deserialize a schedule from :func:`schedule_to_json` output.

    Raises:
        ValueError: on an unsupported format version.
    """
    doc = json.loads(text)
    version = doc.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported schedule format version: {version!r}")
    return Schedule(
        tuple(CompileTask(fname, int(level)) for fname, level in doc["tasks"])
    )


def save_schedule(schedule: Schedule, path: Union[str, Path]) -> None:
    """Write a schedule to ``path`` as JSON."""
    Path(path).write_text(schedule_to_json(schedule))


def load_schedule(path: Union[str, Path]) -> Schedule:
    """Read a schedule previously written by :func:`save_schedule`."""
    return schedule_from_json(Path(path).read_text())
