"""Trace (de)serialization.

An :class:`~repro.core.model.OCSPInstance` round-trips through a compact
JSON document: the profile table plus the call sequence as indices into
it.  This is the interchange format between the mini-VM
(:mod:`repro.jitsim`), the generators, and offline analysis — the
equivalent of the paper's collected advice/trace files.

Loading is hardened: these files cross tool boundaries (hand edits,
other languages, truncation in transit), so every malformed shape —
bad JSON, wrong types, NaN/negative times, unknown function names,
out-of-range call indices — raises a structured
:class:`~repro.core.model.ModelError` (``trace:`` prefix) or
:class:`~repro.core.schedule.ScheduleError` (``schedule:`` prefix)
rather than leaking a ``KeyError``/``TypeError`` from the middle of the
parser.  The message prefixes are stable; tooling may match on them.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.model import FunctionProfile, ModelError, OCSPInstance
from ..core.schedule import CompileTask, Schedule, ScheduleError

__all__ = [
    "to_json",
    "from_json",
    "save",
    "load",
    "schedule_to_json",
    "schedule_from_json",
    "save_schedule",
    "load_schedule",
]

_FORMAT_VERSION = 1


def to_json(instance: OCSPInstance) -> str:
    """Serialize an instance to a JSON string."""
    names = sorted(instance.profiles)
    index = {name: i for i, name in enumerate(names)}
    doc = {
        "version": _FORMAT_VERSION,
        "name": instance.name,
        "functions": [
            {
                "name": name,
                "compile_times": list(instance.profiles[name].compile_times),
                "exec_times": list(instance.profiles[name].exec_times),
            }
            for name in names
        ],
        "calls": [index[f] for f in instance.calls],
    }
    return json.dumps(doc, separators=(",", ":"))


def _parse_doc(text: str, error, prefix: str) -> dict:
    """Parse ``text`` as a JSON object, or raise ``error``."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise error(f"{prefix} not valid JSON ({exc})") from exc
    if not isinstance(doc, dict):
        raise error(
            f"{prefix} expected a JSON object, got {type(doc).__name__}"
        )
    return doc


def _check_version(doc: dict, error, prefix: str) -> None:
    version = doc.get("version")
    if version != _FORMAT_VERSION:
        raise error(f"{prefix} unsupported format version: {version!r}")


def _times_tuple(raw: object, fname: str, field: str) -> tuple:
    """Validate one profile's time list: finite, non-negative numbers."""
    if not isinstance(raw, list) or not raw:
        raise ModelError(
            f"trace: function {fname!r}: {field} must be a non-empty list"
        )
    out = []
    for value in raw:
        # bool is an int subclass; reject it explicitly.
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ModelError(
                f"trace: function {fname!r}: {field} entries must be "
                f"numbers, got {value!r}"
            )
        value = float(value)
        if not math.isfinite(value):
            raise ModelError(
                f"trace: function {fname!r}: {field} entries must be "
                f"finite, got {value!r}"
            )
        if value < 0.0:
            raise ModelError(
                f"trace: function {fname!r}: {field} entries must be "
                f"non-negative, got {value!r}"
            )
        out.append(value)
    return tuple(out)


def from_json(text: str) -> OCSPInstance:
    """Deserialize an instance from :func:`to_json` output.

    Raises:
        ModelError: on bad JSON, an unsupported format version, or any
            malformed/out-of-range field (messages carry the stable
            ``trace:`` prefix; ``ModelError`` is a ``ValueError``).
    """
    doc = _parse_doc(text, ModelError, "trace:")
    _check_version(doc, ModelError, "trace:")
    name = doc.get("name", "trace")
    if not isinstance(name, str):
        raise ModelError(f"trace: name must be a string, got {name!r}")
    functions = doc.get("functions")
    if not isinstance(functions, list):
        raise ModelError("trace: missing or non-list 'functions' field")
    raw_calls = doc.get("calls")
    if not isinstance(raw_calls, list):
        raise ModelError("trace: missing or non-list 'calls' field")

    profiles: Dict[str, FunctionProfile] = {}
    names: List[str] = []
    for pos, entry in enumerate(functions):
        if not isinstance(entry, dict):
            raise ModelError(
                f"trace: functions[{pos}] must be an object, "
                f"got {type(entry).__name__}"
            )
        fname = entry.get("name")
        if not isinstance(fname, str) or not fname:
            raise ModelError(
                f"trace: functions[{pos}] needs a non-empty string name, "
                f"got {fname!r}"
            )
        if fname in profiles:
            raise ModelError(f"trace: duplicate function name {fname!r}")
        compile_times = _times_tuple(
            entry.get("compile_times"), fname, "compile_times"
        )
        exec_times = _times_tuple(entry.get("exec_times"), fname, "exec_times")
        try:
            prof = FunctionProfile(
                name=fname, compile_times=compile_times, exec_times=exec_times
            )
        except ModelError as exc:
            # The profile's own invariants (matching lengths, monotone
            # levels); keep the stable prefix.
            raise ModelError(f"trace: function {fname!r}: {exc}") from exc
        profiles[fname] = prof
        names.append(fname)

    calls = []
    for pos, i in enumerate(raw_calls):
        if isinstance(i, bool) or not isinstance(i, int):
            raise ModelError(
                f"trace: calls[{pos}] must be an integer function index, "
                f"got {i!r}"
            )
        if not 0 <= i < len(names):
            raise ModelError(
                f"trace: calls[{pos}] index {i} out of range "
                f"(have {len(names)} functions)"
            )
        calls.append(names[i])
    try:
        return OCSPInstance(profiles=profiles, calls=tuple(calls), name=name)
    except ModelError as exc:
        raise ModelError(f"trace: {exc}") from exc


def save(instance: OCSPInstance, path: Union[str, Path]) -> None:
    """Write an instance to ``path`` as JSON."""
    Path(path).write_text(to_json(instance))


def load(path: Union[str, Path]) -> OCSPInstance:
    """Read an instance previously written by :func:`save`.

    Raises:
        ModelError: see :func:`from_json`.
        OSError: if the file cannot be read.
    """
    return from_json(Path(path).read_text())


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize a compilation schedule to a JSON string."""
    doc = {
        "version": _FORMAT_VERSION,
        "tasks": [[t.function, t.level] for t in schedule],
    }
    return json.dumps(doc, separators=(",", ":"))


def schedule_from_json(
    text: str, instance: Optional[OCSPInstance] = None
) -> Schedule:
    """Deserialize a schedule from :func:`schedule_to_json` output.

    Args:
        text: the JSON document.
        instance: when given, every task's function must exist in the
            instance and its level must be within the function's range
            (catches a schedule paired with the wrong trace *at load
            time* instead of as a ``KeyError`` mid-simulation).

    Raises:
        ScheduleError: on bad JSON, an unsupported format version, a
            malformed task list, or — with ``instance`` — an unknown
            function or out-of-range level (messages carry the stable
            ``schedule:`` prefix; ``ScheduleError`` is a ``ValueError``).
    """
    doc = _parse_doc(text, ScheduleError, "schedule:")
    _check_version(doc, ScheduleError, "schedule:")
    raw_tasks = doc.get("tasks")
    if not isinstance(raw_tasks, list):
        raise ScheduleError("schedule: missing or non-list 'tasks' field")
    tasks = []
    for pos, item in enumerate(raw_tasks):
        if not isinstance(item, list) or len(item) != 2:
            raise ScheduleError(
                f"schedule: tasks[{pos}] must be a [function, level] pair, "
                f"got {item!r}"
            )
        fname, level = item
        if not isinstance(fname, str) or not fname:
            raise ScheduleError(
                f"schedule: tasks[{pos}] function must be a non-empty "
                f"string, got {fname!r}"
            )
        if isinstance(level, bool) or not isinstance(level, int):
            raise ScheduleError(
                f"schedule: tasks[{pos}] level must be an integer, "
                f"got {level!r}"
            )
        if level < 0:
            raise ScheduleError(
                f"schedule: tasks[{pos}] level must be >= 0, got {level}"
            )
        if instance is not None:
            prof = instance.profiles.get(fname)
            if prof is None:
                raise ScheduleError(
                    f"schedule: tasks[{pos}] names unknown function "
                    f"{fname!r}"
                )
            if level >= prof.num_levels:
                raise ScheduleError(
                    f"schedule: tasks[{pos}] level {level} out of range "
                    f"for {fname!r} (has {prof.num_levels} levels)"
                )
        tasks.append(CompileTask(fname, level))
    return Schedule(tuple(tasks))


def save_schedule(schedule: Schedule, path: Union[str, Path]) -> None:
    """Write a schedule to ``path`` as JSON."""
    Path(path).write_text(schedule_to_json(schedule))


def load_schedule(
    path: Union[str, Path], instance: Optional[OCSPInstance] = None
) -> Schedule:
    """Read a schedule previously written by :func:`save_schedule`.

    Raises:
        ScheduleError: see :func:`schedule_from_json`.
        OSError: if the file cannot be read.
    """
    return schedule_from_json(Path(path).read_text(), instance=instance)
