"""Import OCSP instances from external profiler output.

A downstream user of this library has a *real* runtime and wants to ask
the paper's question about it.  What their profiler can realistically
produce is:

* a **call log** — one function name per line, in invocation order
  (optionally prefixed with a timestamp, which we ignore: Definition 1
  only needs the order);
* a **cost table** — CSV with one row per function:
  ``name, c0, c1, ..., e0, e1, ...`` giving compile and per-invocation
  execution times for each level.

:func:`instance_from_logs` turns those two artifacts into an
:class:`~repro.core.model.OCSPInstance`, validating the monotonicity
assumptions and reporting actionable errors (line numbers, offending
function names).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..core.model import FunctionProfile, OCSPInstance

__all__ = ["parse_call_log", "parse_cost_table", "instance_from_logs"]


def parse_call_log(text: str) -> Tuple[str, ...]:
    """Parse a call log: one invocation per line.

    Each non-empty, non-comment (``#``) line is either ``name`` or
    ``timestamp name`` (whitespace-separated; the timestamp — anything
    parseable as a float — is ignored, as only the order matters).

    Raises:
        ValueError: for a line with more than two fields.
    """
    calls: List[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            calls.append(parts[0])
        elif len(parts) == 2:
            try:
                float(parts[0])
            except ValueError as exc:
                raise ValueError(
                    f"call log line {lineno}: expected 'timestamp name', "
                    f"got {raw!r}"
                ) from exc
            calls.append(parts[1])
        else:
            raise ValueError(
                f"call log line {lineno}: too many fields in {raw!r}"
            )
    return tuple(calls)


def parse_cost_table(text: str) -> Dict[str, FunctionProfile]:
    """Parse the per-function cost CSV.

    Header must be ``name, c0..c<L-1>, e0..e<L-1>`` (any single level
    count ``L``); every row supplies that many compile and execution
    times.  Monotonicity (Definition 1) is validated per function.

    Raises:
        ValueError: on malformed headers or rows.
        ModelError: when a function's costs violate Definition 1.
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("cost table is empty")
    header = [h.strip() for h in header]
    if not header or header[0] != "name":
        raise ValueError("cost table header must start with 'name'")
    c_cols = [h for h in header[1:] if h.startswith("c")]
    e_cols = [h for h in header[1:] if h.startswith("e")]
    if not c_cols or len(c_cols) != len(e_cols):
        raise ValueError(
            "cost table needs matching c0..cN and e0..eN columns, got "
            f"{header[1:]}"
        )
    if header[1:] != c_cols + e_cols:
        raise ValueError("cost table columns must be name, c..., e...")
    levels = len(c_cols)

    profiles: Dict[str, FunctionProfile] = {}
    for lineno, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != 1 + 2 * levels:
            raise ValueError(
                f"cost table line {lineno}: expected {1 + 2 * levels} "
                f"fields, got {len(row)}"
            )
        name = row[0].strip()
        if name in profiles:
            raise ValueError(f"cost table line {lineno}: duplicate {name!r}")
        try:
            values = [float(cell) for cell in row[1:]]
        except ValueError as exc:
            raise ValueError(
                f"cost table line {lineno}: non-numeric cost in {row!r}"
            ) from exc
        profiles[name] = FunctionProfile(
            name=name,
            compile_times=tuple(values[:levels]),
            exec_times=tuple(values[levels:]),
        )
    if not profiles:
        raise ValueError("cost table has no data rows")
    return profiles


def instance_from_logs(
    call_log: Union[str, Path],
    cost_table: Union[str, Path],
    name: str = "imported",
    from_files: bool = True,
) -> OCSPInstance:
    """Build an instance from a profiler call log and a cost table.

    Args:
        call_log: path to the call log (or its text when
            ``from_files=False``).
        cost_table: path to the cost CSV (or its text).
        name: instance label.
        from_files: treat the first two arguments as paths (default) or
            as raw text.

    Raises:
        ValueError / ModelError: propagated from the parsers, plus a
            check that every called function has a cost row.
    """
    log_text = Path(call_log).read_text() if from_files else str(call_log)
    table_text = Path(cost_table).read_text() if from_files else str(cost_table)
    calls = parse_call_log(log_text)
    profiles = parse_cost_table(table_text)
    missing = sorted({f for f in calls if f not in profiles})
    if missing:
        raise ValueError(
            "call log references functions absent from the cost table: "
            + ", ".join(missing[:10])
        )
    return OCSPInstance(profiles=profiles, calls=calls, name=name)
