"""Workload generation and trace I/O.

* :mod:`repro.workloads.synthetic` — parameterized trace generator;
* :mod:`repro.workloads.dacapo` — the nine Table-1 benchmark presets;
* :mod:`repro.workloads.traces` — JSON trace (de)serialization.
"""

from . import call_log, dacapo, traces
from .synthetic import DEFAULT_LEVEL_COMPILE_FACTORS, WorkloadSpec, generate

__all__ = [
    "WorkloadSpec",
    "generate",
    "DEFAULT_LEVEL_COMPILE_FACTORS",
    "dacapo",
    "call_log",
    "traces",
]
