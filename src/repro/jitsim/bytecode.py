"""A miniature stack-machine bytecode, the unit the mini-JIT compiles.

The paper's traces come from Java methods executing on Jikes RVM.  Our
end-to-end substitute is this tiny VM: programs are sets of bytecode
functions; the interpreter (:mod:`repro.jitsim.interpreter`) executes
them on a virtual clock and records the call sequence; the simulated
multi-level compiler (:mod:`repro.jitsim.compiler`) derives per-level
compile/execution costs from static properties of the bytecode.  The
result is an OCSP instance whose numbers are *earned* by running code,
not drawn from a distribution.

Instruction set (stack machine, integer-valued):

=============  =========  ==================================================
opcode         argument   effect
=============  =========  ==================================================
``PUSH``       int        push constant
``LOAD``       slot       push local variable
``STORE``      slot       pop into local variable
``ADD SUB``               pop b, pop a, push a (op) b
``MUL DIV``               integer ops; ``DIV`` by zero raises VMError
``MOD``
``NEG``                   pop a, push -a
``DUP``                   duplicate top of stack
``POP``                   discard top of stack
``LT LE EQ``              pop b, pop a, push 1 if a (cmp) b else 0
``JMP``        target     jump to instruction index
``JZ``         target     pop; jump if zero
``CALL``       name       call function by name; args popped, result pushed
``RET``                   pop return value, return to caller
=============  =========  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Op", "Instr", "BytecodeFunction", "Program", "BytecodeError", "OPCODES"]

OPCODES = frozenset(
    {
        "PUSH",
        "LOAD",
        "STORE",
        "ADD",
        "SUB",
        "MUL",
        "DIV",
        "MOD",
        "NEG",
        "DUP",
        "POP",
        "LT",
        "LE",
        "EQ",
        "JMP",
        "JZ",
        "CALL",
        "RET",
    }
)

_NEEDS_INT_ARG = frozenset({"PUSH", "LOAD", "STORE", "JMP", "JZ"})
_NEEDS_NAME_ARG = frozenset({"CALL"})


class BytecodeError(ValueError):
    """Raised for malformed bytecode at construction/validation time."""


Op = str


@dataclass(frozen=True)
class Instr:
    """One instruction: an opcode plus optional argument."""

    op: Op
    arg: Optional[Union[int, str]] = None

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise BytecodeError(f"unknown opcode {self.op!r}")
        if self.op in _NEEDS_INT_ARG and not isinstance(self.arg, int):
            raise BytecodeError(f"{self.op} needs an int argument, got {self.arg!r}")
        if self.op in _NEEDS_NAME_ARG and not isinstance(self.arg, str):
            raise BytecodeError(f"{self.op} needs a function name, got {self.arg!r}")
        if self.op not in _NEEDS_INT_ARG and self.op not in _NEEDS_NAME_ARG:
            if self.arg is not None:
                raise BytecodeError(f"{self.op} takes no argument")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.op if self.arg is None else f"{self.op} {self.arg}"


@dataclass(frozen=True)
class BytecodeFunction:
    """A function: parameters arrive in locals ``0..num_params-1``.

    Attributes:
        name: function name, unique within a program.
        num_params: arguments popped by ``CALL`` (left-to-right into
            slots 0..num_params-1).
        num_locals: local slots (must cover the parameters).
        code: the instruction sequence; must end every path with ``RET``
            (validated dynamically; statically we require at least one).
    """

    name: str
    num_params: int
    num_locals: int
    code: Tuple[Instr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "code", tuple(self.code))
        if self.num_params < 0 or self.num_locals < self.num_params:
            raise BytecodeError(
                f"{self.name}: num_locals ({self.num_locals}) must cover "
                f"num_params ({self.num_params})"
            )
        if not self.code:
            raise BytecodeError(f"{self.name}: empty code")
        if not any(instr.op == "RET" for instr in self.code):
            raise BytecodeError(f"{self.name}: no RET instruction")
        for i, instr in enumerate(self.code):
            if instr.op in ("JMP", "JZ"):
                target = instr.arg
                assert isinstance(target, int)
                if not 0 <= target < len(self.code):
                    raise BytecodeError(
                        f"{self.name}: jump target {target} out of range at #{i}"
                    )
            if instr.op in ("LOAD", "STORE"):
                slot = instr.arg
                assert isinstance(slot, int)
                if not 0 <= slot < self.num_locals:
                    raise BytecodeError(
                        f"{self.name}: local slot {slot} out of range at #{i}"
                    )

    @property
    def size(self) -> int:
        """Instruction count (the compiler's notion of method size)."""
        return len(self.code)

    def back_edge_count(self) -> int:
        """Number of backward jumps — a loop-structure proxy used by the
        simulated optimizer's cost model."""
        return sum(
            1
            for i, instr in enumerate(self.code)
            if instr.op in ("JMP", "JZ")
            and isinstance(instr.arg, int)
            and instr.arg <= i
        )

    def call_targets(self) -> List[str]:
        """Names of functions this function calls."""
        return [
            instr.arg
            for instr in self.code
            if instr.op == "CALL" and isinstance(instr.arg, str)
        ]


@dataclass(frozen=True)
class Program:
    """A set of bytecode functions with a designated entry point."""

    functions: Dict[str, BytecodeFunction]
    entry: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "functions", dict(self.functions))
        if self.entry not in self.functions:
            raise BytecodeError(f"entry function {self.entry!r} not defined")
        for func in self.functions.values():
            for target in func.call_targets():
                if target not in self.functions:
                    raise BytecodeError(
                        f"{func.name} calls undefined function {target!r}"
                    )

    @classmethod
    def from_functions(
        cls, functions: Sequence[BytecodeFunction], entry: str
    ) -> "Program":
        by_name: Dict[str, BytecodeFunction] = {}
        for func in functions:
            if func.name in by_name:
                raise BytecodeError(f"duplicate function name {func.name!r}")
            by_name[func.name] = func
        return cls(functions=by_name, entry=entry)
