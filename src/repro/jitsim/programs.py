"""A tiny assembler and a library of sample bytecode programs.

The assembler turns readable text into
:class:`~repro.jitsim.bytecode.BytecodeFunction` objects::

    func = assemble(
        "sum_to", num_params=1, num_locals=2,
        \"\"\"
            PUSH 0
            STORE 1
        loop:
            LOAD 0
            JZ done
            LOAD 1
            LOAD 0
            ADD
            STORE 1
            LOAD 0
            PUSH 1
            SUB
            STORE 0
            JMP loop
        done:
            LOAD 1
            RET
        \"\"\",
    )

Labels end with ``:`` on their own line; jump instructions may name a
label instead of an index.  The sample programs exercise the behaviours
the paper's workloads have: hot tiny methods, cold setup methods, loop
phases, and recursion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .bytecode import BytecodeError, BytecodeFunction, Instr, Program

__all__ = [
    "assemble",
    "fib_program",
    "loops_program",
    "phased_program",
    "sorting_program",
    "matmul_program",
    "hashing_program",
]


def assemble(
    name: str, num_params: int, num_locals: int, source: str
) -> BytecodeFunction:
    """Assemble textual bytecode into a :class:`BytecodeFunction`.

    Raises:
        BytecodeError: on unknown labels, bad arguments, or anything
            :class:`BytecodeFunction` itself rejects.
    """
    labels: Dict[str, int] = {}
    parsed: List[Tuple[str, Optional[str]]] = []
    for raw in source.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label or label in labels:
                raise BytecodeError(f"{name}: bad or duplicate label {label!r}")
            labels[label] = len(parsed)
            continue
        parts = line.split(None, 1)
        parsed.append((parts[0], parts[1].strip() if len(parts) == 2 else None))

    instrs: List[Instr] = []
    for op, arg_text in parsed:
        arg: Optional[Union[int, str]] = None
        if arg_text is not None:
            if op in ("JMP", "JZ") and arg_text in labels:
                arg = labels[arg_text]
            elif op == "CALL":
                arg = arg_text
            else:
                try:
                    arg = int(arg_text)
                except ValueError as exc:
                    raise BytecodeError(
                        f"{name}: bad argument {arg_text!r} for {op}"
                    ) from exc
        instrs.append(Instr(op, arg))
    return BytecodeFunction(
        name=name, num_params=num_params, num_locals=num_locals, code=tuple(instrs)
    )


def _counting_loop(name: str, body_calls: List[str], iterations_param: bool = True) -> BytecodeFunction:
    """A loop calling each of ``body_calls`` once per iteration.

    The function takes one parameter: the iteration count.  Each callee
    receives the running iteration index as its argument.  Returns the
    number of iterations executed.
    """
    call_lines = "\n".join(
        f"    LOAD 1\n    CALL {callee}\n    POP" for callee in body_calls
    )
    source = f"""
        PUSH 0
        STORE 1
    loop:
        LOAD 0
        JZ done
{call_lines}
        LOAD 1
        PUSH 1
        ADD
        STORE 1
        LOAD 0
        PUSH 1
        SUB
        STORE 0
        JMP loop
    done:
        LOAD 1
        RET
    """
    return assemble(name, num_params=1, num_locals=2, source=source)


def fib_program() -> Program:
    """Naive recursive Fibonacci: one hot recursive method plus a
    driver.  Entry: ``main(n)``; trace length grows exponentially in
    ``n`` — a dense stream of calls to a single tiny hot function."""
    fib = assemble(
        "fib",
        num_params=1,
        num_locals=1,
        source="""
            LOAD 0
            PUSH 2
            LT
            JZ recurse
            LOAD 0
            RET
        recurse:
            LOAD 0
            PUSH 1
            SUB
            CALL fib
            LOAD 0
            PUSH 2
            SUB
            CALL fib
            ADD
            RET
        """,
    )
    main = assemble(
        "main",
        num_params=1,
        num_locals=1,
        source="""
            LOAD 0
            CALL fib
            RET
        """,
    )
    return Program.from_functions([main, fib], entry="main")


def _leaf_arith(name: str, rounds: int) -> BytecodeFunction:
    """A small arithmetic leaf: ``rounds`` unrolled multiply-adds."""
    body = "\n".join(
        """
        LOAD 0
        PUSH 3
        MUL
        PUSH 7
        ADD
        PUSH 11
        MOD
        STORE 0
        """
        for _ in range(rounds)
    )
    return assemble(
        name,
        num_params=1,
        num_locals=1,
        source=body + "\n        LOAD 0\n        RET",
    )


def loops_program(hot_calls: int = 500, warm_calls: int = 40) -> Program:
    """Hot/warm/cold mixture shaped like a warmup run.

    * three *cold* setup functions, each invoked once;
    * a *warm* helper invoked ``warm_calls`` times;
    * a *hot* tight leaf invoked ``hot_calls`` times.

    Entry: ``main()`` (no arguments).
    """
    cold1 = _leaf_arith("cold_init_a", rounds=6)
    cold2 = _leaf_arith("cold_init_b", rounds=9)
    cold3 = _leaf_arith("cold_init_c", rounds=4)
    hot = _leaf_arith("hot_leaf", rounds=2)
    warm = _leaf_arith("warm_helper", rounds=5)
    hot_loop = _counting_loop("hot_loop", ["hot_leaf"])
    warm_loop = _counting_loop("warm_loop", ["warm_helper"])
    main = assemble(
        "main",
        num_params=0,
        num_locals=1,
        source=f"""
            PUSH 1
            CALL cold_init_a
            POP
            PUSH 2
            CALL cold_init_b
            POP
            PUSH 3
            CALL cold_init_c
            POP
            PUSH {warm_calls}
            CALL warm_loop
            POP
            PUSH {hot_calls}
            CALL hot_loop
            RET
        """,
    )
    return Program.from_functions(
        [main, cold1, cold2, cold3, hot, warm, hot_loop, warm_loop], entry="main"
    )


def phased_program(phase_calls: int = 200) -> Program:
    """Two phases using disjoint hot sets — the pattern that separates
    first-appearance-order scheduling from recompilation scheduling.

    Phase 1 hammers ``alpha``; phase 2 hammers ``beta`` (which phase 1
    never touches), so ``beta``'s first compile competes with ``alpha``'s
    recompilation for the compiler thread.

    Entry: ``main()``.
    """
    alpha = _leaf_arith("alpha", rounds=3)
    beta = _leaf_arith("beta", rounds=3)
    phase1 = _counting_loop("phase1", ["alpha"])
    phase2 = _counting_loop("phase2", ["beta"])
    main = assemble(
        "main",
        num_params=0,
        num_locals=0,
        source=f"""
            PUSH {phase_calls}
            CALL phase1
            POP
            PUSH {phase_calls}
            CALL phase2
            RET
        """,
    )
    return Program.from_functions([main, alpha, beta, phase1, phase2], entry="main")


def _bubble_sort_function(array_size: int) -> BytecodeFunction:
    """Bubble-sort over a pseudo-array in local slots.

    The ISA has no heap, so the "array" is ``array_size`` local slots
    initialized from a linear congruence of the single parameter; the
    function sorts them with compare-and-swap passes and returns the
    median element.  Heavy on branches and loops — the shape optimizing
    compilers love.
    """
    if array_size < 2:
        raise BytecodeError("array_size must be >= 2")
    # Locals: 0 = seed/param, 1..array_size = elements, then i, j, tmp.
    first = 1
    i_slot = first + array_size
    j_slot = i_slot + 1
    tmp = j_slot + 1
    lines = []
    # Initialize elements: e_k = (seed * 1103515245 + k*12345) % 1009
    for k in range(array_size):
        lines.append(
            f"""
            LOAD 0
            PUSH 1103515245
            MUL
            PUSH {12345 * (k + 1)}
            ADD
            PUSH 1009
            MOD
            STORE {first + k}
            """
        )
    # Selection-style pass: for i in range(n-1): for j in range(i+1, n):
    # compare slot-wise.  Unrolled (slots are static), still dynamic in
    # comparisons/branches.
    for i in range(array_size - 1):
        for j in range(i + 1, array_size):
            a, b = first + i, first + j
            lines.append(
                f"""
                LOAD {a}
                LOAD {b}
                LE
                JZ swap_{i}_{j}
                JMP done_{i}_{j}
            swap_{i}_{j}:
                LOAD {a}
                STORE {tmp}
                LOAD {b}
                STORE {a}
                LOAD {tmp}
                STORE {b}
            done_{i}_{j}:
                PUSH 0
                POP
                """
            )
    lines.append(f"LOAD {first + array_size // 2}\nRET")
    return assemble(
        "sort_kernel",
        num_params=1,
        num_locals=tmp + 1,
        source="\n".join(lines),
    )


def sorting_program(rounds: int = 100, array_size: int = 8) -> Program:
    """Repeatedly sort small pseudo-arrays; returns a checksum.

    One branch-heavy hot kernel (``sort_kernel``) driven ``rounds``
    times — the classic "one dominant method" profile.
    """
    kernel = _bubble_sort_function(array_size)
    main = _counting_loop("sort_driver", ["sort_kernel"])
    entry = assemble(
        "main",
        num_params=0,
        num_locals=0,
        source=f"""
            PUSH {rounds}
            CALL sort_driver
            RET
        """,
    )
    return Program.from_functions([entry, main, kernel], entry="main")


def matmul_program(size: int = 4, rounds: int = 60) -> Program:
    """Repeated ``size``x``size`` matrix "multiplication".

    Rows live in local slots; ``dot_row`` computes one output element
    as an unrolled dot product, and ``mat_driver`` iterates the
    multiplication ``rounds`` times.  Arithmetic-dense with a call-per-
    element structure (an inlining candidate).
    """
    if size < 2:
        raise BytecodeError("size must be >= 2")
    # dot(seed_a, seed_b): pseudo dot product of two derived rows.
    terms = []
    for k in range(size):
        terms.append(
            f"""
            LOAD 0
            PUSH {k + 3}
            MUL
            PUSH 251
            MOD
            LOAD 1
            PUSH {k + 7}
            MUL
            PUSH 241
            MOD
            MUL
            LOAD 2
            ADD
            STORE 2
            """
        )
    dot = assemble(
        "dot_row",
        num_params=2,
        num_locals=3,
        source="PUSH 0\nSTORE 2\n" + "\n".join(terms) + "\nLOAD 2\nRET",
    )
    # One multiplication = size*size dot calls, seeds derived from i, j.
    body = []
    for i in range(size):
        for j in range(size):
            body.append(
                f"""
                LOAD 0
                PUSH {i + 1}
                ADD
                LOAD 0
                PUSH {j + 1}
                ADD
                CALL dot_row
                LOAD 1
                ADD
                PUSH 1000003
                MOD
                STORE 1
                """
            )
    mat_once = assemble(
        "mat_once",
        num_params=1,
        num_locals=2,
        source="PUSH 0\nSTORE 1\n" + "\n".join(body) + "\nLOAD 1\nRET",
    )
    driver = _counting_loop("mat_driver", ["mat_once"])
    entry = assemble(
        "main",
        num_params=0,
        num_locals=0,
        source=f"""
            PUSH {rounds}
            CALL mat_driver
            RET
        """,
    )
    return Program.from_functions([entry, driver, mat_once, dot], entry="main")


def hashing_program(items: int = 500) -> Program:
    """FNV-style rolling hash over a pseudo-random stream.

    Two tiny leaf functions (``next_item``, ``mix_hash``) called in
    strict alternation — the pattern where both leaves go hot together
    and compete for the compiler.
    """
    next_item = assemble(
        "next_item",
        num_params=1,
        num_locals=1,
        source="""
            LOAD 0
            PUSH 6364136223846793005
            MUL
            PUSH 1442695040888963407
            ADD
            PUSH 2147483647
            MOD
            RET
        """,
    )
    mix_hash = assemble(
        "mix_hash",
        num_params=2,
        num_locals=2,
        source="""
            LOAD 0
            PUSH 16777619
            MUL
            LOAD 1
            ADD
            PUSH 1000000007
            MOD
            RET
        """,
    )
    entry = assemble(
        "main",
        num_params=0,
        num_locals=3,
        source=f"""
            PUSH {items}
            STORE 0
            PUSH 99
            STORE 1
            PUSH 2166136261
            STORE 2
        loop:
            LOAD 0
            JZ done
            LOAD 1
            CALL next_item
            STORE 1
            LOAD 2
            LOAD 1
            CALL mix_hash
            STORE 2
            LOAD 0
            PUSH 1
            SUB
            STORE 0
            JMP loop
        done:
            LOAD 2
            RET
        """,
    )
    return Program.from_functions([entry, next_item, mix_hash], entry="main")
