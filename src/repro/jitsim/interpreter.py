"""Bytecode interpreter with a virtual clock and call-trace recording.

Executes a :class:`~repro.jitsim.bytecode.Program` the way Jikes RVM's
profiling runs execute Java: every function entry is recorded in order,
and each invocation's dynamic instruction count is tallied so the
simulated compiler can turn it into per-level execution times.

The clock is virtual: one interpreted instruction costs
``CYCLE_US`` microseconds.  Determinism is total — no host timing leaks
into the results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .bytecode import BytecodeFunction, Program

__all__ = ["VMError", "InvocationRecord", "RunTrace", "Interpreter", "CYCLE_US"]

CYCLE_US = 0.05
"""Virtual cost of one interpreted instruction, in microseconds
(a 20-MIPS interpreter — deliberately slow, as interpreters are)."""


class VMError(RuntimeError):
    """Raised for dynamic errors: stack underflow, division by zero,
    missing RET, or exceeding the step budget."""


@dataclass(frozen=True)
class InvocationRecord:
    """One dynamic invocation: which function, and how much work it did.

    Attributes:
        function: function name.
        instructions: dynamic instructions executed in this invocation
            (excluding callees — costs are per-function, as in the
            paper's per-method times).
    """

    function: str
    instructions: int


@dataclass
class RunTrace:
    """Everything a profiling run collects.

    Attributes:
        invocations: per-invocation records, in call order.
        result: the entry function's return value.
        total_instructions: dynamic instructions over the whole run.
    """

    invocations: List[InvocationRecord]
    result: int
    total_instructions: int

    @property
    def call_sequence(self) -> Tuple[str, ...]:
        """The call sequence in the OCSP sense."""
        return tuple(rec.function for rec in self.invocations)

    def mean_instructions(self) -> Dict[str, float]:
        """Average dynamic instructions per invocation, per function."""
        totals: Dict[str, int] = {}
        counts: Dict[str, int] = {}
        for rec in self.invocations:
            totals[rec.function] = totals.get(rec.function, 0) + rec.instructions
            counts[rec.function] = counts.get(rec.function, 0) + 1
        return {f: totals[f] / counts[f] for f in totals}


class _Frame:
    __slots__ = ("func", "locals", "stack", "pc", "instructions", "trace_index")

    def __init__(self, func: BytecodeFunction, args: List[int], trace_index: int):
        self.func = func
        self.locals = args + [0] * (func.num_locals - func.num_params)
        self.stack: List[int] = []
        self.pc = 0
        self.instructions = 0
        self.trace_index = trace_index


class Interpreter:
    """Executes a program, recording the profiling trace.

    Args:
        program: the bytecode program.
        max_steps: dynamic instruction budget; exceeding it raises
            :class:`VMError` (guards against non-terminating inputs).
    """

    def __init__(self, program: Program, max_steps: int = 50_000_000):
        self.program = program
        self.max_steps = max_steps

    def run(self, *args: int) -> RunTrace:
        """Run the entry function with integer arguments.

        Returns:
            The :class:`RunTrace` with the call sequence and counts.

        Raises:
            VMError: on dynamic errors or step-budget exhaustion.
            TypeError: if the argument count mismatches the entry.
        """
        entry = self.program.functions[self.program.entry]
        if len(args) != entry.num_params:
            raise TypeError(
                f"entry {entry.name!r} takes {entry.num_params} args, "
                f"got {len(args)}"
            )
        invocations: List[InvocationRecord] = []
        records: List[int] = []  # instruction counts, parallel to invocations

        def new_frame(func: BytecodeFunction, call_args: List[int]) -> _Frame:
            invocations.append(InvocationRecord(func.name, 0))
            records.append(0)
            return _Frame(func, call_args, len(records) - 1)

        frames: List[_Frame] = [new_frame(entry, list(args))]
        steps = 0
        result: Optional[int] = None

        while frames:
            frame = frames[-1]
            code = frame.func.code
            if frame.pc >= len(code):
                raise VMError(f"{frame.func.name}: fell off the end without RET")
            instr = code[frame.pc]
            steps += 1
            frame.instructions += 1
            if steps > self.max_steps:
                raise VMError(f"exceeded step budget of {self.max_steps}")
            op = instr.op
            stack = frame.stack

            if op == "PUSH":
                stack.append(instr.arg)  # type: ignore[arg-type]
            elif op == "LOAD":
                stack.append(frame.locals[instr.arg])  # type: ignore[index]
            elif op == "STORE":
                frame.locals[instr.arg] = self._pop(frame)  # type: ignore[index]
            elif op in ("ADD", "SUB", "MUL", "DIV", "MOD", "LT", "LE", "EQ"):
                b = self._pop(frame)
                a = self._pop(frame)
                if op == "ADD":
                    stack.append(a + b)
                elif op == "SUB":
                    stack.append(a - b)
                elif op == "MUL":
                    stack.append(a * b)
                elif op == "DIV":
                    if b == 0:
                        raise VMError(f"{frame.func.name}: division by zero")
                    stack.append(int(a / b) if (a < 0) != (b < 0) else a // b)
                elif op == "MOD":
                    if b == 0:
                        raise VMError(f"{frame.func.name}: modulo by zero")
                    stack.append(a % b)
                elif op == "LT":
                    stack.append(1 if a < b else 0)
                elif op == "LE":
                    stack.append(1 if a <= b else 0)
                else:  # EQ
                    stack.append(1 if a == b else 0)
            elif op == "NEG":
                stack.append(-self._pop(frame))
            elif op == "DUP":
                if not stack:
                    raise VMError(f"{frame.func.name}: DUP on empty stack")
                stack.append(stack[-1])
            elif op == "POP":
                self._pop(frame)
            elif op == "JMP":
                frame.pc = instr.arg  # type: ignore[assignment]
                continue
            elif op == "JZ":
                if self._pop(frame) == 0:
                    frame.pc = instr.arg  # type: ignore[assignment]
                    continue
            elif op == "CALL":
                callee = self.program.functions[instr.arg]  # type: ignore[index]
                if len(stack) < callee.num_params:
                    raise VMError(
                        f"{frame.func.name}: not enough arguments for "
                        f"{callee.name}"
                    )
                call_args = stack[len(stack) - callee.num_params :]
                del stack[len(stack) - callee.num_params :]
                frame.pc += 1
                frames.append(new_frame(callee, call_args))
                continue
            else:  # RET
                value = self._pop(frame)
                records[frame.trace_index] = frame.instructions
                frames.pop()
                if frames:
                    frames[-1].stack.append(value)
                else:
                    result = value
                continue
            frame.pc += 1

        assert result is not None
        final = [
            InvocationRecord(rec.function, count)
            for rec, count in zip(invocations, records)
        ]
        return RunTrace(
            invocations=final, result=result, total_instructions=steps
        )

    @staticmethod
    def _pop(frame: _Frame) -> int:
        if not frame.stack:
            raise VMError(f"{frame.func.name}: stack underflow")
        return frame.stack.pop()
