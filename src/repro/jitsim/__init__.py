"""The mini JIT runtime: bytecode, interpreter, simulated compiler.

* :mod:`repro.jitsim.bytecode` — the stack-machine ISA;
* :mod:`repro.jitsim.interpreter` — execution + trace collection;
* :mod:`repro.jitsim.compiler` — the simulated multi-level compiler;
* :mod:`repro.jitsim.programs` — assembler and sample programs;
* :mod:`repro.jitsim.profile_extract` — run → OCSP instance.
"""

from .bytecode import BytecodeError, BytecodeFunction, Instr, Program
from .compiler import CompilerConfig, SimulatedCompiler
from .generator import ProgramSpec, random_program
from .inlining import inline_function, inline_program, is_inlinable
from .interpreter import CYCLE_US, Interpreter, InvocationRecord, RunTrace, VMError
from .profile_extract import extract_instance, trace_to_instance
from .programs import (
    assemble,
    fib_program,
    hashing_program,
    loops_program,
    matmul_program,
    phased_program,
    sorting_program,
)

__all__ = [
    "Instr",
    "BytecodeFunction",
    "Program",
    "BytecodeError",
    "Interpreter",
    "RunTrace",
    "InvocationRecord",
    "VMError",
    "CYCLE_US",
    "CompilerConfig",
    "inline_program",
    "inline_function",
    "is_inlinable",
    "ProgramSpec",
    "random_program",
    "SimulatedCompiler",
    "extract_instance",
    "trace_to_instance",
    "assemble",
    "fib_program",
    "loops_program",
    "phased_program",
    "sorting_program",
    "matmul_program",
    "hashing_program",
]
