"""The simulated multi-level optimizing compiler of the mini JIT.

Jikes RVM's JIT compiles a method at one of four levels; deeper levels
spend more compile time and produce faster code.  Our simulated compiler
reproduces that cost structure from *static properties of the bytecode*:

* **compile time** grows linearly with method size, with per-level
  per-instruction costs and fixed overheads shaped after baseline vs
  optimizing compilers;
* **execution speed-up** per level depends on how optimizable the
  method is: loop-heavy methods gain more from the loop-optimizing
  levels, call-heavy methods gain more from the inlining level, and
  every method gains the baseline's direct-threading win over the
  interpreter-like tier.

The numbers are a model, not a measurement — but they are *derived from
the code being compiled*, so different programs genuinely produce
different OCSP instances (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.model import FunctionProfile
from .bytecode import BytecodeFunction
from .interpreter import CYCLE_US

__all__ = ["CompilerConfig", "SimulatedCompiler"]


@dataclass(frozen=True)
class CompilerConfig:
    """Cost model of the simulated compiler.

    Attributes:
        per_instr_us: compile cost per bytecode instruction, per level.
        fixed_us: fixed per-compilation overhead, per level.
        tier_speedups: baseline speed-up of each level over raw
            interpretation, before per-function bonuses.
        loop_bonus: extra speed-up weight for back-edge density at the
            loop-optimizing levels (2 and up).
        call_bonus: extra speed-up weight for call density at the
            top (inlining) level.
    """

    per_instr_us: Tuple[float, ...] = (0.5, 5.0, 15.0, 40.0)
    fixed_us: Tuple[float, ...] = (20.0, 200.0, 600.0, 1500.0)
    tier_speedups: Tuple[float, ...] = (4.0, 7.0, 10.0, 13.0)
    loop_bonus: float = 8.0
    call_bonus: float = 4.0

    def __post_init__(self) -> None:
        n = len(self.per_instr_us)
        if not (len(self.fixed_us) == len(self.tier_speedups) == n):
            raise ValueError("per-level tuples must have equal lengths")
        if n < 1:
            raise ValueError("need at least one level")
        for seq, kind in ((self.per_instr_us, "compile"), (self.fixed_us, "fixed")):
            if any(x < 0 for x in seq):
                raise ValueError(f"negative {kind} cost")
        if any(s <= 0 for s in self.tier_speedups):
            raise ValueError("tier speedups must be positive")

    @property
    def num_levels(self) -> int:
        return len(self.per_instr_us)


class SimulatedCompiler:
    """Derives per-level compile/execution costs for bytecode functions.

    Args:
        config: the cost model (defaults mimic a 4-level JIT).
    """

    def __init__(self, config: CompilerConfig = CompilerConfig()):
        self.config = config

    def compile_time(self, func: BytecodeFunction, level: int) -> float:
        """Compile time of ``func`` at ``level`` (microseconds)."""
        cfg = self.config
        return cfg.fixed_us[level] + cfg.per_instr_us[level] * func.size

    def speedup(self, func: BytecodeFunction, level: int) -> float:
        """Speed-up of ``func``'s compiled code over interpretation."""
        cfg = self.config
        base = cfg.tier_speedups[level]
        size = max(func.size, 1)
        loop_density = func.back_edge_count() / size
        call_density = len(func.call_targets()) / size
        bonus = 1.0
        if level >= 2:
            bonus += cfg.loop_bonus * loop_density
        if level >= cfg.num_levels - 1 and cfg.num_levels > 1:
            bonus += cfg.call_bonus * call_density
        return base * bonus

    def exec_time(
        self, func: BytecodeFunction, level: int, mean_instructions: float
    ) -> float:
        """Per-invocation execution time at ``level`` (microseconds).

        Args:
            func: the function.
            level: compilation level.
            mean_instructions: average dynamic instructions per
                invocation (from a profiling run).
        """
        interpreted = mean_instructions * CYCLE_US
        return interpreted / self.speedup(func, level)

    def profile(
        self, func: BytecodeFunction, mean_instructions: float
    ) -> FunctionProfile:
        """The full OCSP cost table for ``func``.

        Monotonicity holds by construction: compile costs rise with the
        level (non-decreasing ``per_instr_us``/``fixed_us``) and
        speed-ups rise, so execution times fall.
        """
        levels = range(self.config.num_levels)
        return FunctionProfile(
            name=func.name,
            compile_times=tuple(self.compile_time(func, lvl) for lvl in levels),
            exec_times=tuple(
                self.exec_time(func, lvl, mean_instructions) for lvl in levels
            ),
        )
