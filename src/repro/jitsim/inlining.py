"""Function inlining for the mini JIT (the paper's Section 8 factor).

"Function inlining that happens in a run may substantially change the
length and execution time of the caller function" — and it changes the
OCSP instance itself: inlined callees vanish from the call sequence
while callers grow.  This module implements a classic leaf-inliner so
that effect can be measured instead of discussed:

* :func:`inline_function` — splice one callee's body into a caller;
* :func:`inline_program` — inline every small leaf callee everywhere;
* semantics are preserved exactly (same entry result), verified by the
  test suite on all sample programs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .bytecode import BytecodeFunction, Instr, Program

__all__ = ["inline_function", "inline_program", "is_inlinable"]

DEFAULT_MAX_CALLEE_SIZE = 24


def is_inlinable(func: BytecodeFunction, max_size: int = DEFAULT_MAX_CALLEE_SIZE) -> bool:
    """A callee qualifies when it is a small *leaf* (no calls — which
    also rules out recursion)."""
    return func.size <= max_size and not func.call_targets()


def _splice(
    caller: BytecodeFunction, callee: BytecodeFunction, site: int, local_base: int
) -> Tuple[List[Instr], int]:
    """Build the instruction block replacing ``CALL callee`` at ``site``.

    The callee's parameters are popped off the stack into fresh local
    slots (pop order is reverse argument order), its body runs with
    locals shifted by ``local_base`` and jumps rebased, and every RET
    becomes a jump just past the block with the return value left on
    the stack.

    Returns:
        (block instructions, locals consumed).
    """
    block: List[Instr] = []
    for slot in range(callee.num_params - 1, -1, -1):
        block.append(Instr("STORE", local_base + slot))
    body_offset = len(block)
    block_len = body_offset + len(callee.code)
    for instr in callee.code:
        if instr.op in ("LOAD", "STORE"):
            block.append(Instr(instr.op, local_base + instr.arg))  # type: ignore[operator]
        elif instr.op in ("JMP", "JZ"):
            block.append(Instr(instr.op, body_offset + instr.arg))  # type: ignore[operator]
        elif instr.op == "RET":
            # Return value stays on the stack; leave the block.
            block.append(Instr("JMP", block_len))
        else:
            block.append(instr)
    return block, callee.num_locals


def inline_function(
    caller: BytecodeFunction,
    callees: Dict[str, BytecodeFunction],
    max_callee_size: int = DEFAULT_MAX_CALLEE_SIZE,
) -> BytecodeFunction:
    """Inline every eligible call site in ``caller``.

    Args:
        caller: the function to transform.
        callees: candidate callee bodies by name.
        max_callee_size: size cap for inlinable callees.

    Returns:
        The transformed function (or ``caller`` unchanged if no site
        qualifies).
    """
    sites = [
        i
        for i, instr in enumerate(caller.code)
        if instr.op == "CALL"
        and instr.arg in callees
        and is_inlinable(callees[instr.arg], max_callee_size)
    ]
    if not sites:
        return caller

    # First pass: emit new code, recording where each old instruction
    # (and each inlined block) lands; jumps are patched afterwards.
    new_code: List[Instr] = []
    new_index: Dict[int, int] = {}
    local_base = caller.num_locals
    jump_sites: List[int] = []  # positions in new_code holding caller jumps

    for i, instr in enumerate(caller.code):
        new_index[i] = len(new_code)
        if i in sites:
            callee = callees[instr.arg]  # type: ignore[index]
            block, used = _splice(caller, callee, i, local_base)
            base = len(new_code)
            # Rebase the block's internal jumps to absolute positions.
            block_len = len(block)
            for b in block:
                if b.op in ("JMP", "JZ"):
                    target = b.arg
                    assert isinstance(target, int)
                    new_code.append(Instr(b.op, base + target))
                else:
                    new_code.append(b)
            local_base += used
            continue
        if instr.op in ("JMP", "JZ"):
            jump_sites.append(len(new_code))
        new_code.append(instr)

    # `new_index` needs a sentinel for jumps to one-past-the-end (none
    # are legal in validated input, but keep the mapping total).
    new_index[len(caller.code)] = len(new_code)

    for pos in jump_sites:
        instr = new_code[pos]
        assert isinstance(instr.arg, int)
        new_code[pos] = Instr(instr.op, new_index[instr.arg])

    return BytecodeFunction(
        name=caller.name,
        num_params=caller.num_params,
        num_locals=local_base,
        code=tuple(new_code),
    )


def inline_program(
    program: Program,
    max_callee_size: int = DEFAULT_MAX_CALLEE_SIZE,
    rounds: int = 1,
) -> Program:
    """Inline small leaf callees throughout the program.

    Args:
        program: the input program (unchanged).
        max_callee_size: size cap for inlinable callees.
        rounds: how many times to repeat (a second round can inline
            functions that *became* leaves after the first).

    Returns:
        A new program with the same entry and semantics.  Functions
        that end up uncalled are kept (they may still be entry points
        for other uses); the interpreter simply never visits them.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    functions = dict(program.functions)
    for _ in range(rounds):
        new_functions = {
            name: inline_function(func, functions, max_callee_size)
            for name, func in functions.items()
        }
        if new_functions == functions:
            break
        functions = new_functions
    return Program(functions=functions, entry=program.entry)
