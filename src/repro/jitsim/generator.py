"""Random program generation for the mini JIT.

The hand-written sample programs in :mod:`repro.jitsim.programs` cover
specific shapes; this module generates whole random programs — call
DAGs of loops and arithmetic leaves — so the end-to-end pipeline
(bytecode → interpreter → trace → scheduling) can be exercised at any
size.  Unlike the statistical trace generator in
:mod:`repro.workloads.synthetic`, every call sequence here is *earned*
by executing real bytecode, so call counts, per-invocation work, and
phase structure all emerge from program structure.

Generation is deterministic per seed, and every generated program
terminates by construction (the call graph is acyclic and all loops
have bounded trip counts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from .bytecode import BytecodeFunction, Program
from .programs import assemble

__all__ = ["ProgramSpec", "random_program"]


@dataclass(frozen=True)
class ProgramSpec:
    """Shape parameters for :func:`random_program`.

    Attributes:
        num_leaves: arithmetic leaf functions (the "hot" candidates).
        num_drivers: loop functions that call leaves/other drivers.
        max_leaf_rounds: leaf body size knob (unrolled multiply-add
            rounds; 1 round ≈ 8 instructions).
        max_trip_count: upper bound on any loop's iterations.
        max_calls_per_driver: distinct callees per driver loop body.
        phases: top-level phases; each phase runs one driver, so hot
            sets rotate between phases.
    """

    num_leaves: int = 4
    num_drivers: int = 3
    max_leaf_rounds: int = 4
    max_trip_count: int = 60
    max_calls_per_driver: int = 3
    phases: int = 2

    def __post_init__(self) -> None:
        if self.num_leaves < 1 or self.num_drivers < 1:
            raise ValueError("need at least one leaf and one driver")
        if self.max_leaf_rounds < 1:
            raise ValueError("max_leaf_rounds must be >= 1")
        if self.max_trip_count < 1:
            raise ValueError("max_trip_count must be >= 1")
        if self.max_calls_per_driver < 1:
            raise ValueError("max_calls_per_driver must be >= 1")
        if self.phases < 1:
            raise ValueError("phases must be >= 1")


def _leaf(name: str, rounds: int, rng: random.Random) -> BytecodeFunction:
    """A random arithmetic leaf: ``rounds`` multiply-add-mod blocks."""
    lines: List[str] = []
    for _ in range(rounds):
        mul = rng.randint(2, 9)
        add = rng.randint(1, 97)
        mod = rng.choice((101, 251, 509, 1021))
        lines.append(
            f"LOAD 0\nPUSH {mul}\nMUL\nPUSH {add}\nADD\nPUSH {mod}\nMOD\nSTORE 0"
        )
    lines.append("LOAD 0\nRET")
    return assemble(name, num_params=1, num_locals=1, source="\n".join(lines))


def _driver(
    name: str,
    callees: Sequence[str],
    trip_count: int,
) -> BytecodeFunction:
    """A counted loop calling each callee once per iteration.

    Takes one parameter (a data seed) and returns an accumulated value.
    """
    calls = "\n".join(
        f"    LOAD 1\n    CALL {callee}\n    LOAD 2\n    ADD\n    STORE 2"
        for callee in callees
    )
    source = f"""
        PUSH {trip_count}
        STORE 1
        PUSH 0
        STORE 2
    loop:
        LOAD 1
        JZ done
{calls}
        LOAD 1
        PUSH 1
        SUB
        STORE 1
        JMP loop
    done:
        LOAD 2
        RET
    """
    return assemble(name, num_params=1, num_locals=3, source=source)


def random_program(spec: ProgramSpec = ProgramSpec(), seed: int = 0) -> Program:
    """Generate a random, terminating program.

    The call graph is layered — ``main`` → drivers → leaves — so there
    is no recursion, and every loop is counted: termination (and a
    bound on total work) is structural.

    Args:
        spec: shape parameters.
        seed: RNG seed (identical seeds give identical programs).
    """
    rng = random.Random(seed)
    leaves = [
        _leaf(f"leaf{i:02d}", rng.randint(1, spec.max_leaf_rounds), rng)
        for i in range(spec.num_leaves)
    ]
    leaf_names = [f.name for f in leaves]

    drivers: List[BytecodeFunction] = []
    driver_names: List[str] = []
    for i in range(spec.num_drivers):
        # Drivers call only leaves (call depth is bounded at 2, so the
        # dynamic work is at most phases * trip * calls * leaf size).
        count = rng.randint(1, min(spec.max_calls_per_driver, len(leaf_names)))
        callees = rng.sample(leaf_names, count)
        trip = rng.randint(max(spec.max_trip_count // 4, 1), spec.max_trip_count)
        name = f"driver{i:02d}"
        drivers.append(_driver(name, callees, trip))
        driver_names.append(name)

    phase_calls = "\n".join(
        f"    PUSH {rng.randint(1, 99)}\n"
        f"    CALL {rng.choice(driver_names)}\n"
        "    POP"
        for _ in range(spec.phases)
    )
    main = assemble(
        "main",
        num_params=0,
        num_locals=0,
        source=phase_calls + "\n    PUSH 0\n    RET",
    )
    return Program.from_functions([main, *drivers, *leaves], entry="main")
