"""Turn a mini-VM profiling run into an OCSP instance.

This is the analogue of the paper's data-collection framework
(Section 6.1): run the program, record the call sequence, and measure
(here: derive) the compile and execution times of each function at each
level.
"""

from __future__ import annotations

from typing import Optional

from ..core.model import OCSPInstance
from .bytecode import Program
from .compiler import CompilerConfig, SimulatedCompiler
from .interpreter import Interpreter, RunTrace

__all__ = ["extract_instance", "trace_to_instance"]


def trace_to_instance(
    program: Program,
    trace: RunTrace,
    compiler: Optional[SimulatedCompiler] = None,
    name: str = "jitsim",
) -> OCSPInstance:
    """Build an :class:`OCSPInstance` from an existing profiling trace.

    Per the paper's Assumption 1, each function's execution time at a
    level is one number — the average over its invocations.
    """
    if compiler is None:
        compiler = SimulatedCompiler()
    means = trace.mean_instructions()
    profiles = {
        fname: compiler.profile(program.functions[fname], mean)
        for fname, mean in means.items()
    }
    return OCSPInstance(profiles=profiles, calls=trace.call_sequence, name=name)


def extract_instance(
    program: Program,
    *args: int,
    compiler: Optional[SimulatedCompiler] = None,
    config: Optional[CompilerConfig] = None,
    name: Optional[str] = None,
) -> OCSPInstance:
    """Run ``program`` and extract the OCSP instance in one step.

    Args:
        program: the bytecode program.
        *args: integer arguments for the entry function.
        compiler: a prebuilt simulated compiler (wins over ``config``).
        config: compiler cost model to use when ``compiler`` is None.
        name: instance label; defaults to the entry function's name.

    Raises:
        VMError: if the program misbehaves dynamically.
    """
    trace = Interpreter(program).run(*args)
    if compiler is None:
        compiler = SimulatedCompiler(config) if config else SimulatedCompiler()
    return trace_to_instance(
        program, trace, compiler=compiler, name=name or program.entry
    )
