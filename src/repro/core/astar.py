"""A*-search for optimal compilation schedules (Section 5.3, Figure 4).

The paper models scheduling as a tree search: every path from the root
is a sequence of compile tasks in which a lower-level compilation of a
function never follows a higher-level one, and a full path is a
permutation of *all* tasks (the "12!" denominator for six 2-level
functions).  Our implementation generalizes that tree in two ways that
are required for true optimality under Definition 1:

* **level skips** — a function may be compiled directly at a high level
  without its lower levels (the paper's full-permutation tree forces
  every level to appear, which wastes compile-thread time and is
  measurably suboptimal on some instances — see
  ``tests/test_astar.py``);
* **early termination** — a schedule may stop once every called
  function is compiled; an explicit *terminal* edge carries the exact
  final cost of stopping there.

The heuristic is the paper's ``f(v) = b(v) + e(v)`` where, with ``t(v)``
the time window from the start to the end of the compilations on the
path to ``v``:

* ``b(v)`` — total execution bubbles inside ``t(v)``;
* ``e(v)`` — extra execution time of invocations *starting* inside
  ``t(v)`` because they ran below their function's highest level.

Both components are already incurred by any completion of the path
(future tasks finish after ``t(v)`` and cannot unblock or accelerate
calls that started inside it), so ``f`` never overestimates and the
search is optimal.  It is *not* practical: the frontier grows
exponentially and the paper reports out-of-memory beyond six functions —
behaviour reproduced by ``benchmarks/bench_astar_search.py``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .bounds import lower_bound
from .makespan import simulate
from .model import OCSPInstance
from .schedule import CompileTask, Schedule

__all__ = ["AStarResult", "AStarMemoryExceeded", "astar_schedule"]


class AStarMemoryExceeded(RuntimeError):
    """Raised when the frontier outgrows ``max_frontier`` nodes.

    This reproduces the paper's observation that A*-search aborts for
    out-of-memory once the number of unique methods exceeds six.
    """

    def __init__(self, message: str, nodes_expanded: int, frontier_size: int):
        super().__init__(message)
        self.nodes_expanded = nodes_expanded
        self.frontier_size = frontier_size


@dataclass(frozen=True)
class AStarResult:
    """Outcome of the A* search.

    Attributes:
        schedule: an optimal schedule.
        makespan: its make-span.
        nodes_expanded: nodes removed from the priority list and expanded.
        max_frontier: largest size the priority list reached.
        paths_total: the paper's search-space denominator — the number
            of full-task permutations respecting per-function level
            order (``12!/2^6``-style).  Our generalized tree is larger
            still; the figure is reported for comparison with the
            paper's "96 out of 4 billion" observation.
    """

    schedule: Schedule
    makespan: float
    nodes_expanded: int
    max_frontier: int
    paths_total: int


def _count_paths(level_counts: List[int]) -> int:
    """Full-task permutations: multinomial over all tasks, with each
    function's forced level order dividing out its ``L!`` orderings."""
    total = sum(level_counts)
    paths = math.factorial(total)
    for count in level_counts:
        paths //= math.factorial(count)
    return paths


def _heuristic(instance: OCSPInstance, tasks: Tuple[CompileTask, ...]) -> float:
    """``f(v) = b(v) + e(v)`` for the partial schedule ``tasks``."""
    profiles = instance.profiles
    # Compile finish times (single compile thread, as in the paper's
    # search formulation).
    finish_of: Dict[str, List[Tuple[float, int]]] = {}
    t = 0.0
    for task in tasks:
        t += profiles[task.function].compile_times[task.level]
        finish_of.setdefault(task.function, []).append((t, task.level))
    t_end = t

    bubbles = 0.0
    extra_exec = 0.0
    now = 0.0
    for fname in instance.calls:
        if now >= t_end:
            break
        events = finish_of.get(fname)
        prof = profiles[fname]
        if not events:
            # Blocked until after the window ends: the remaining window
            # is pure bubble for any completion of this path.
            bubbles += t_end - now
            break
        ready = events[0][0]
        start = now if now >= ready else ready
        if start >= t_end:
            bubbles += t_end - now
            break
        bubbles += start - now
        best = max(lvl for f_time, lvl in events if f_time <= start)
        exec_time = prof.exec_times[best]
        # A call that starts inside the window has committed to its
        # level: tasks appended after t_end cannot retroactively
        # accelerate it, so its full slowdown is incurred by every
        # completion.
        extra_exec += exec_time - prof.exec_times[-1]
        now = start + exec_time
    return bubbles + extra_exec


def astar_schedule(
    instance: OCSPInstance,
    max_frontier: int = 500_000,
    max_expansions: int = 5_000_000,
) -> AStarResult:
    """Find an optimal schedule by A*-search over the schedule tree.

    Args:
        instance: the OCSP instance (keep it tiny; see module docs).
        max_frontier: memory bound — abort with
            :class:`AStarMemoryExceeded` when the priority list exceeds
            this many nodes (models the paper's 2 GB heap limit).
        max_expansions: safety bound on expanded nodes.

    Raises:
        AStarMemoryExceeded: when the frontier outgrows ``max_frontier``.
        RuntimeError: when ``max_expansions`` is hit.
        ValueError: for an instance with no calls.
    """
    functions = instance.called_functions
    if not functions:
        raise ValueError("instance has no calls; nothing to schedule")
    level_counts = [instance.profiles[f].num_levels for f in functions]
    lb = lower_bound(instance)

    # Frontier entries:
    # (f_value, tiebreak, is_terminal, tasks, last_level_per_function)
    counter = 0
    start_state = tuple(-1 for _ in functions)
    frontier: List[
        Tuple[float, int, bool, Tuple[CompileTask, ...], Tuple[int, ...]]
    ] = [(0.0, counter, False, (), start_state)]
    nodes_expanded = 0
    max_frontier_seen = 1

    while frontier:
        f_value, _tie, is_terminal, tasks, state = heapq.heappop(frontier)
        if is_terminal:
            schedule = Schedule(tasks)
            return AStarResult(
                schedule=schedule,
                makespan=f_value + lb,
                nodes_expanded=nodes_expanded,
                max_frontier=max_frontier_seen,
                paths_total=_count_paths(level_counts),
            )
        nodes_expanded += 1
        if nodes_expanded > max_expansions:
            raise RuntimeError(f"A* exceeded {max_expansions} node expansions")

        if all(last >= 0 for last in state):
            # Stopping here is a legal schedule: attach its exact cost.
            exact = simulate(instance, Schedule(tasks), validate=False).makespan - lb
            counter += 1
            heapq.heappush(frontier, (exact, counter, True, tasks, state))

        for i, fname in enumerate(functions):
            for next_level in range(state[i] + 1, level_counts[i]):
                child_tasks = tasks + (CompileTask(fname, next_level),)
                child_state = state[:i] + (next_level,) + state[i + 1 :]
                counter += 1
                heapq.heappush(
                    frontier,
                    (
                        _heuristic(instance, child_tasks),
                        counter,
                        False,
                        child_tasks,
                        child_state,
                    ),
                )
        if len(frontier) > max_frontier_seen:
            max_frontier_seen = len(frontier)
        if len(frontier) > max_frontier:
            raise AStarMemoryExceeded(
                f"A* frontier exceeded {max_frontier} nodes "
                f"after {nodes_expanded} expansions",
                nodes_expanded=nodes_expanded,
                frontier_size=len(frontier),
            )
    raise RuntimeError("A* exhausted the frontier without finding a terminal")
