"""Cross-run call-sequence prediction (Section 8, first barrier).

"The first barrier is in getting or estimating the call sequence of a
production run.  It could be tackled through some recently developed
techniques, such as cross-run learning and prediction."  The paper
cites sequence-prediction work ([34]) but builds none; this module
supplies a concrete, simple instance so the online-IAR pipeline can be
exercised end to end:

* :class:`MarkovPredictor` — an order-``k`` Markov model over function
  names fitted on one (training) run, generating the most-likely
  continuation for the next run;
* :func:`cross_run_iar` — fit on run A, predict run B's sequence, plan
  IAR on the prediction, execute on the true run B.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .bounds import lower_bound
from .iar import IARParams, iar
from .makespan import simulate
from .model import OCSPInstance
from .schedule import CompileTask, Schedule

__all__ = ["MarkovPredictor", "CrossRunResult", "cross_run_iar"]


class MarkovPredictor:
    """Order-``k`` Markov model over a call sequence.

    Generation samples the learned conditional distribution with a
    seeded RNG (greedy argmax collapses into a fixed point on skewed
    traces — the single hottest function self-loops forever — whereas
    sampling preserves the hotness mix).  Next-call *scoring* uses the
    argmax.  Unseen contexts back off to shorter ones, ultimately to
    the global frequency distribution.

    Args:
        order: context length ``k`` (>= 1).
    """

    def __init__(self, order: int = 2):
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order
        self._tables: List[Dict[Tuple[str, ...], Counter]] = [
            defaultdict(Counter) for _ in range(order + 1)
        ]
        self._fitted = False

    def fit(self, sequence: Sequence[str]) -> "MarkovPredictor":
        """Count successor frequencies for every context length up to
        ``order`` (shorter contexts serve as back-off)."""
        if not sequence:
            raise ValueError("cannot fit on an empty sequence")
        for k in range(self.order + 1):
            table = self._tables[k]
            for i in range(len(sequence)):
                if i < k:
                    continue
                context = tuple(sequence[i - k : i])
                table[context][sequence[i]] += 1
        self._fitted = True
        return self

    def _successor_counts(self, context: Tuple[str, ...]) -> Counter:
        for k in range(min(self.order, len(context)), -1, -1):
            key = context[len(context) - k :] if k else ()
            counter = self._tables[k].get(key)
            if counter:
                return counter
        raise RuntimeError("unreachable: order-0 table is never empty")

    def _next(self, context: Tuple[str, ...]) -> str:
        counter = self._successor_counts(context)
        # Most frequent; ties resolve alphabetically.
        return min(counter, key=lambda f: (-counter[f], f))

    def _sample(self, context: Tuple[str, ...], rng) -> str:
        counter = self._successor_counts(context)
        names = sorted(counter)
        total = sum(counter[f] for f in names)
        pick = rng.random() * total
        acc = 0.0
        for fname in names:
            acc += counter[fname]
            if pick < acc:
                return fname
        return names[-1]

    def predict(
        self,
        length: int,
        prefix: Optional[Sequence[str]] = None,
        seed: int = 0,
    ) -> Tuple[str, ...]:
        """Generate a sequence of ``length`` calls by seeded sampling.

        Args:
            length: number of calls to emit.
            prefix: seed context (defaults to the empty context).
            seed: RNG seed; identical seeds reproduce the sequence.

        Raises:
            RuntimeError: if :meth:`fit` has not been called.
        """
        if not self._fitted:
            raise RuntimeError("fit() the predictor before predicting")
        rng = random.Random(seed)
        out: List[str] = list(prefix or ())
        generated: List[str] = []
        for _ in range(length):
            nxt = self._sample(tuple(out[-self.order :]), rng)
            out.append(nxt)
            generated.append(nxt)
        return tuple(generated)

    def accuracy(self, sequence: Sequence[str]) -> float:
        """Fraction of next-call predictions that match ``sequence``."""
        if not self._fitted:
            raise RuntimeError("fit() the predictor before evaluating")
        if not sequence:
            return 0.0
        hits = 0
        for i in range(len(sequence)):
            context = tuple(sequence[max(0, i - self.order) : i])
            if self._next(context) == sequence[i]:
                hits += 1
        return hits / len(sequence)


@dataclass(frozen=True)
class CrossRunResult:
    """Outcome of planning on a predicted sequence.

    Attributes:
        makespan: make-span of the cross-run-planned schedule on the
            actual run.
        oracle_makespan: IAR with the actual sequence (the offline
            limit).
        lower_bound: exec-only bound of the actual run.
        prediction_accuracy: next-call accuracy of the predictor on the
            actual sequence.
    """

    makespan: float
    oracle_makespan: float
    lower_bound: float
    prediction_accuracy: float

    @property
    def degradation(self) -> float:
        return (
            self.makespan / self.oracle_makespan if self.oracle_makespan else 1.0
        )


def cross_run_iar(
    train_instance: OCSPInstance,
    actual_instance: OCSPInstance,
    order: int = 2,
    params: IARParams = IARParams(),
) -> CrossRunResult:
    """Fit on a training run, plan for the actual run, measure reality.

    Both instances must share their profile table (same program,
    different inputs/run).  Functions the prediction misses fall back
    to on-demand level-0 compiles appended at the end.

    Raises:
        ValueError: if the instances disagree on a shared function's
            profile.
    """
    for fname, prof in train_instance.profiles.items():
        other = actual_instance.profiles.get(fname)
        if other is not None and other != prof:
            raise ValueError(f"profile mismatch for {fname!r} across runs")

    predictor = MarkovPredictor(order=order).fit(train_instance.calls)
    predicted_calls = predictor.predict(actual_instance.num_calls)
    predicted = OCSPInstance(
        profiles=train_instance.profiles,
        calls=predicted_calls,
        name=f"{actual_instance.name}~predicted",
    )

    planned = iar(predicted, params).schedule
    # Drop tasks for functions the actual run does not know (they would
    # be unloadable there); compiling them would be wasted time anyway.
    planned = Schedule(
        tuple(t for t in planned if t.function in actual_instance.profiles)
    )
    compiled = set(planned.functions())
    missing = [
        f for f in actual_instance.called_functions if f not in compiled
    ]
    if missing:
        planned = planned.extend(CompileTask(f, 0) for f in missing)

    truth = simulate(actual_instance, planned, validate=False)
    oracle_sched = iar(actual_instance, params).schedule
    oracle = simulate(actual_instance, oracle_sched, validate=False)
    return CrossRunResult(
        makespan=truth.makespan,
        oracle_makespan=oracle.makespan,
        lower_bound=lower_bound(actual_instance),
        prediction_accuracy=predictor.accuracy(actual_instance.calls),
    )
