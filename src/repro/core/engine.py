"""Engine selection seam: ``engine={"reference", "fast", "vector"}``.

Every measurement in this repo funnels through one of three bitwise
identical make-span engines:

* ``"reference"`` — the pure-Python oracle,
  :func:`repro.core.makespan.simulate` (per-call dict lookups; the
  semantics every other engine is tested against);
* ``"fast"`` — :class:`repro.core.fastsim.FastSimulator` (interned ids,
  segmented replay, incremental propose/commit);
* ``"vector"`` — :class:`repro.core.vecsim.VectorSimulator` (the
  structure-of-arrays numpy kernel; falls back to the fast engine's
  pure-Python path when numpy is unavailable).

This module is the one place the mapping lives.  Callers thread an
``engine`` argument (``makespan.simulate``, ``localsearch``, ``iar``,
``faults.simulate_with_faults``, the CLI's ``--engine``); ``None``
defers to the session default, set via :func:`set_default_engine` or
the ``REPRO_ENGINE`` environment variable (which worker processes
inherit), and finally to the call site's historical fallback.

:func:`make_simulator` can also cache one engine per
``(engine, compile_threads, preinstalled)`` combination on the instance
itself, so repeated ``simulate(..., engine="vector")`` calls pay the
per-instance interning cost once — the cache is bypassed whenever a
metrics registry is attached, keeping work counters tied to the run
that asked for them.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

from .fastsim import FastSimulator
from .makespan import (
    DueDateObjectives,
    DueDateTable,
    MakespanResult,
    objectives_from_timeline,
    simulate,
    validate_for_simulation,
)
from .model import OCSPInstance
from .schedule import CompileTask, Schedule
from .vecsim import VectorSimulator

__all__ = [
    "ENGINES",
    "ReferenceSimulator",
    "get_default_engine",
    "make_simulator",
    "resolve_engine",
    "set_default_engine",
]

ENGINES = ("reference", "fast", "vector")

_default_engine: Optional[str] = None


def set_default_engine(engine: Optional[str]) -> None:
    """Set the session-wide default engine (``None`` clears it)."""
    global _default_engine
    if engine is not None and engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )
    _default_engine = engine


def get_default_engine() -> Optional[str]:
    """The session default: :func:`set_default_engine`'s value, else
    ``$REPRO_ENGINE``, else ``None`` (caller falls back per site)."""
    if _default_engine is not None:
        return _default_engine
    env = os.environ.get("REPRO_ENGINE")
    if env:
        if env not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {env!r} "
                f"(from REPRO_ENGINE)"
            )
        return env
    return None


def resolve_engine(
    engine: Optional[str] = None, fallback: str = "reference"
) -> str:
    """Resolve an ``engine`` argument to a concrete engine name.

    ``None`` defers to :func:`get_default_engine`, then to
    ``fallback`` (each call site keeps its historical default).

    Raises:
        ValueError: for a name outside :data:`ENGINES`.
    """
    name = engine if engine is not None else (get_default_engine() or fallback)
    if name not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {name!r}")
    return name


class ReferenceSimulator:
    """The pure-Python oracle behind the engine-object interface.

    Adapts :func:`repro.core.makespan.simulate` to the evaluator API the
    fast and vector engines share (``evaluate`` / ``bind`` / ``propose``
    / ``commit`` / ``preview`` / ``result`` / ``trace_stats``), so every
    engine-threaded code path can run against the oracle without a
    special case.  There is no incremental machinery: ``propose`` runs a
    full simulation (its ``cutoff`` is accepted but ignored — the true
    span is returned, which makes every caller's ``span <= incumbent``
    decision identical to the early-exit engines').

    ``trace_stats`` does not support ``preinstalled`` functions (the
    underlying :func:`~repro.core.makespan.iter_calls` stream has no
    notion of them); the fast and vector engines are the tools for that.
    """

    def __init__(
        self,
        instance: OCSPInstance,
        compile_threads: int = 1,
        preinstalled: Optional[Dict[str, int]] = None,
        metrics=None,
    ) -> None:
        if compile_threads < 1:
            raise ValueError(
                f"compile_threads must be >= 1, got {compile_threads}"
            )
        self._instance = instance
        self._compile_threads = compile_threads
        self._preinstalled = dict(preinstalled or {})
        for fname, level in self._preinstalled.items():
            prof = instance.profiles.get(fname)
            if prof is None or not 0 <= level < prof.num_levels:
                raise ValueError(
                    f"preinstalled level {level} invalid for {fname!r}"
                )
        self.metrics = metrics
        self._b_tasks: Optional[Tuple[CompileTask, ...]] = None
        self._b_makespan = 0.0
        self._cand: Optional[Tuple[Tuple[CompileTask, ...], float]] = None

    @staticmethod
    def _as_tasks(schedule) -> Tuple[CompileTask, ...]:
        return tuple(getattr(schedule, "tasks", schedule))

    def evaluate(
        self,
        schedule,
        record_timeline: bool = False,
        validate: bool = False,
        release_times: Optional[Sequence[float]] = None,
        task_compile_times: Optional[Sequence[float]] = None,
        task_installs: Optional[Sequence[bool]] = None,
        tracer=None,
    ) -> MakespanResult:
        return simulate(
            self._instance,
            Schedule(self._as_tasks(schedule)),
            compile_threads=self._compile_threads,
            record_timeline=record_timeline,
            validate=validate,
            preinstalled=self._preinstalled or None,
            release_times=release_times,
            task_compile_times=task_compile_times,
            task_installs=task_installs,
            tracer=tracer,
            metrics=self.metrics,
        )

    def due_objectives(
        self, schedule, due: DueDateTable, validate: bool = False
    ) -> DueDateObjectives:
        """Due-date objectives through the oracle (one timeline run)."""
        result = self.evaluate(
            schedule, record_timeline=True, validate=validate
        )
        return objectives_from_timeline(result, due)

    def trace_stats(
        self,
        schedule,
        before_time: Optional[float] = None,
        after_time: Optional[float] = None,
    ):
        if self._preinstalled:
            raise NotImplementedError(
                "ReferenceSimulator.trace_stats does not support "
                "preinstalled functions"
            )
        from .iar import _trace_stats

        return _trace_stats(
            self._instance,
            Schedule(self._as_tasks(schedule)),
            before_time=before_time,
            after_time=after_time,
        )

    # -- incremental interface (full re-evaluation each time) ----------
    def bind(self, schedule, validate: bool = False) -> float:
        tasks = self._as_tasks(schedule)
        if validate:
            validate_for_simulation(
                self._instance, Schedule(tasks), self._preinstalled
            )
        self._b_tasks = tasks
        self._b_makespan = self.evaluate(tasks).makespan
        self._cand = None
        return self._b_makespan

    @property
    def baseline_makespan(self) -> float:
        self._require_bound()
        return self._b_makespan

    @property
    def baseline_tasks(self) -> Tuple[CompileTask, ...]:
        self._require_bound()
        return self._b_tasks  # type: ignore[return-value]

    def _require_bound(self) -> None:
        if self._b_tasks is None:
            raise RuntimeError("no baseline bound; call bind() first")

    def propose(self, tasks, cutoff: Optional[float] = None) -> float:
        self._require_bound()
        candidate = self._as_tasks(tasks)
        span = self.evaluate(candidate).makespan
        self._cand = (candidate, span)
        return span

    def commit(self) -> float:
        self._require_bound()
        if self._cand is None:
            raise RuntimeError("no pending candidate; call propose() first")
        self._b_tasks, self._b_makespan = self._cand
        self._cand = None
        return self._b_makespan

    def preview(self, tasks, record_timeline: bool = False) -> MakespanResult:
        self._require_bound()
        self._cand = None  # previews do not arm commit()
        return self.evaluate(tasks, record_timeline=record_timeline)

    def result(self, record_timeline: bool = False) -> MakespanResult:
        self._require_bound()
        return self.evaluate(self._b_tasks, record_timeline=record_timeline)


_SIMULATORS = {
    "reference": ReferenceSimulator,
    "fast": FastSimulator,
    "vector": VectorSimulator,
}


def make_simulator(
    instance: OCSPInstance,
    engine: Optional[str] = None,
    compile_threads: int = 1,
    preinstalled: Optional[Dict[str, int]] = None,
    metrics=None,
    fallback: str = "fast",
    cached: bool = False,
):
    """Build (or fetch) the evaluator for ``engine`` on ``instance``.

    Args:
        instance: the workload.
        engine: one of :data:`ENGINES`, or ``None`` for the session
            default / ``fallback``.
        compile_threads: compiler threads (fixed per engine object).
        preinstalled: functions available from t = 0.
        metrics: optional metrics registry; a metrics-carrying request
            always builds a fresh engine (never served from the cache).
        fallback: engine used when neither ``engine`` nor a session
            default picks one.
        cached: reuse one engine per ``(engine, compile_threads,
            preinstalled)`` key, memoized on the instance — safe for
            stateless ``evaluate`` loops, which is what the cache
            serves; incremental users should build their own engine.

    Raises:
        ValueError: for an unknown engine name or invalid engine
            arguments.
    """
    name = resolve_engine(engine, fallback)
    if cached and metrics is None:
        key = (
            name,
            compile_threads,
            tuple(sorted((preinstalled or {}).items())),
        )
        cache = getattr(instance, "_engine_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(instance, "_engine_cache", cache)
        sim = cache.get(key)
        if sim is None:
            sim = _SIMULATORS[name](
                instance,
                compile_threads=compile_threads,
                preinstalled=preinstalled,
            )
            cache[key] = sim
        return sim
    return _SIMULATORS[name](
        instance,
        compile_threads=compile_threads,
        preinstalled=preinstalled,
        metrics=metrics,
    )
