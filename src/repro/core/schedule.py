"""Compilation schedules: ordered sequences of (function, level) tasks.

A *compilation schedule* (the paper's ``Cseq``) is the order in which the
JIT's compiler thread(s) process compilation tasks.  With ``K`` compiler
threads, tasks are dequeued in schedule order as threads become free
(Section 6.2.3).  The schedule, together with the call sequence and the
per-function cost tables, fully determines the make-span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .model import OCSPInstance

__all__ = ["CompileTask", "Schedule", "ScheduleError"]


class ScheduleError(ValueError):
    """Raised when a schedule is invalid for a given OCSP instance."""


@dataclass(frozen=True, order=True)
class CompileTask:
    """A single compilation event: compile ``function`` at ``level``.

    This is the paper's ``C_i(x)`` notation — the compilation of function
    ``x`` at level ``i``.
    """

    function: str
    level: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"C{self.level}({self.function})"


@dataclass(frozen=True)
class Schedule:
    """An ordered sequence of :class:`CompileTask` events.

    Schedules are immutable; the builder methods return new schedules.
    """

    tasks: Tuple[CompileTask, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tasks", tuple(self.tasks))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *tasks: Tuple[str, int]) -> "Schedule":
        """Build a schedule from ``(function, level)`` pairs."""
        return cls(tuple(CompileTask(f, lvl) for f, lvl in tasks))

    @classmethod
    def empty(cls) -> "Schedule":
        return cls(())

    def append(self, task: CompileTask) -> "Schedule":
        return Schedule(self.tasks + (task,))

    def extend(self, tasks: Iterable[CompileTask]) -> "Schedule":
        return Schedule(self.tasks + tuple(tasks))

    def replace_at(self, index: int, task: CompileTask) -> "Schedule":
        """Replace the task at ``index`` (IAR's Replace operation)."""
        if not 0 <= index < len(self.tasks):
            raise IndexError(index)
        tasks = list(self.tasks)
        tasks[index] = task
        return Schedule(tuple(tasks))

    def delete_at(self, index: int) -> "Schedule":
        if not 0 <= index < len(self.tasks):
            raise IndexError(index)
        return Schedule(self.tasks[:index] + self.tasks[index + 1 :])

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[CompileTask]:
        return iter(self.tasks)

    def __getitem__(self, index: int) -> CompileTask:
        return self.tasks[index]

    def functions(self) -> List[str]:
        """Distinct functions in first-task order."""
        seen: Dict[str, None] = {}
        for task in self.tasks:
            seen.setdefault(task.function, None)
        return list(seen)

    def tasks_for(self, fname: str) -> List[CompileTask]:
        return [t for t in self.tasks if t.function == fname]

    def index_of_first(self, fname: str) -> Optional[int]:
        """Index of the first compilation of ``fname``, or ``None``."""
        for i, task in enumerate(self.tasks):
            if task.function == fname:
                return i
        return None

    def highest_level_of(self, fname: str) -> Optional[int]:
        """Highest level at which ``fname`` is compiled, or ``None``."""
        levels = [t.level for t in self.tasks if t.function == fname]
        return max(levels) if levels else None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, instance: OCSPInstance) -> None:
        """Check that this schedule can legally drive ``instance``.

        Requirements:

        * every compiled function has a profile and the level exists;
        * every *called* function is compiled at least once (otherwise
          some invocation can never run);
        * no function is compiled twice at the same or a lower level
          later in the schedule — such a task can never help under the
          monotonicity assumptions and the "latest compilation wins"
          execution rule, and almost certainly indicates a scheduler bug.

        Raises:
            ScheduleError: on the first violation found.
        """
        last_level: Dict[str, int] = {}
        for i, task in enumerate(self.tasks):
            prof = instance.profiles.get(task.function)
            if prof is None:
                raise ScheduleError(
                    f"task #{i} compiles unknown function {task.function!r}"
                )
            if not 0 <= task.level < prof.num_levels:
                raise ScheduleError(
                    f"task #{i} compiles {task.function!r} at level "
                    f"{task.level}, but it has {prof.num_levels} levels"
                )
            prev = last_level.get(task.function)
            if prev is not None and task.level <= prev:
                raise ScheduleError(
                    f"task #{i} recompiles {task.function!r} at level "
                    f"{task.level} after level {prev}; recompilation must "
                    "strictly increase the level"
                )
            last_level[task.function] = task.level
        missing = [f for f in instance.called_functions if f not in last_level]
        if missing:
            raise ScheduleError(
                "called functions never compiled: " + ", ".join(sorted(missing))
            )

    def is_valid_for(self, instance: OCSPInstance) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(instance)
        except ScheduleError:
            return False
        return True

    def total_compile_time(self, instance: OCSPInstance) -> float:
        """Sum of the compile times of all tasks."""
        return sum(
            instance.profiles[t.function].compile_times[t.level] for t in self.tasks
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + ", ".join(str(t) for t in self.tasks) + ")"
