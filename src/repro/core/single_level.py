"""Single-level approximations (Section 5.1).

The simplest schedules limit every function to one compilation level and
never recompile.  With recompilation ruled out, the best order is simply
the order of first-time appearance in the call sequence — compiling a
function any earlier cannot help the calls before it, and any later can
only add bubbles.  The paper evaluates two variants:

* ``base-level only`` — every function at level 0 (cheapest compiles,
  slowest code);
* ``optimizing-level only`` — every function at its *suitable highest*
  level: the most cost-effective level chosen by the cost-benefit model
  (deepest worthwhile optimization; long compiles, fast code).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .model import OCSPInstance
from .schedule import CompileTask, Schedule

__all__ = [
    "single_level_schedule",
    "base_level_schedule",
    "optimizing_level_schedule",
]


def single_level_schedule(
    instance: OCSPInstance, pick_level: Callable[[str], int]
) -> Schedule:
    """One compile per called function, in first-appearance order, at the
    level chosen by ``pick_level(fname)``."""
    return Schedule(
        tuple(
            CompileTask(fname, pick_level(fname))
            for fname in instance.called_functions
        )
    )


def base_level_schedule(instance: OCSPInstance) -> Schedule:
    """Every called function compiled once at level 0."""
    return single_level_schedule(instance, lambda fname: 0)


def optimizing_level_schedule(
    instance: OCSPInstance, levels: Optional[Dict[str, int]] = None
) -> Schedule:
    """Every called function compiled once at its optimizing level.

    Args:
        instance: the OCSP instance.
        levels: per-function level choices (e.g. from a cost-benefit
            model).  Defaults to each function's most cost-effective
            level given its call count — the paper's "suitable highest
            compilation level".
    """
    if levels is None:
        levels = {
            fname: instance.profiles[fname].most_cost_effective_level(
                instance.call_count(fname)
            )
            for fname in instance.called_functions
        }
    return single_level_schedule(instance, lambda fname: levels[fname])
