"""Structure-of-arrays simulation kernel (the ``"vector"`` engine).

The paper's real call sequences span hundreds of thousands to tens of
millions of calls (Table 1); the pure-Python replay loops dominate wall
time long before that.  :class:`VectorSimulator` keeps the replay state
in flat arrays — the interned call sequence as ``int64`` ids, the
current per-function level and execution time as dense vectors — and
evaluates the bulk call segments with numpy prefix sums instead of
per-call Python bytecode.

Exactness contract (same as :class:`~repro.core.fastsim.FastSimulator`,
which this class extends): every number is **bitwise identical** to the
reference :func:`~repro.core.makespan.simulate`.  The vector kernel
earns this the same way the fast engine does — by performing the
reference's exact float operations in the exact order:

* ``numpy.cumsum`` over a 1-D float64 array is a sequential
  left-associated accumulation, exactly like ``itertools.accumulate``
  (pairwise ``numpy.sum`` would NOT be — it is never used here);
* chaining is done by seeding element 0 of the cumsum buffer with the
  running clock, so chunk boundaries cannot perturb rounding;
* ``numpy.searchsorted(..., side="left")`` locates compile-event
  crossings exactly like ``bisect.bisect_left``.

numpy is an *optional* dependency: when it is missing (or the
``REPRO_NO_NUMPY`` environment variable is set), every override falls
back to the inherited pure-Python structure-of-arrays path, so the
``"vector"`` engine degrades gracefully instead of failing to import.

Work counters are identical to the fast engine's — including
``fastsim.span_calls_replayed``, whose value depends on the galloping
chunk schedule of the cutoff replay; the vector override therefore
mirrors that schedule chunk for chunk.

``tests/test_vecsim_differential.py`` enforces all of this
differentially on hypothesis-generated instances.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Optional, Sequence, Tuple

from .fastsim import _INF, FastSimulator, TaskSeq, _Prep
from .makespan import (
    DueDateObjectives,
    DueDateTable,
    MakespanResult,
    validate_for_simulation,
)
from .model import OCSPInstance
from .schedule import Schedule, ScheduleError

__all__ = ["VectorSimulator", "numpy_available"]


def _numpy_or_none():
    """The numpy module, or ``None`` when unavailable or disabled."""
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        return None
    return numpy


def numpy_available() -> bool:
    """True when the vector engine will actually vectorize."""
    return _numpy_or_none() is not None


class VectorSimulator(FastSimulator):
    """Structure-of-arrays make-span evaluator for one instance.

    A drop-in :class:`~repro.core.fastsim.FastSimulator` whose replay
    loops run on flat numpy arrays.  The public API, the exactness
    contract, and the ``fastsim.*`` work counters are identical; only
    wall time differs.  Without numpy every method transparently uses
    the inherited pure-Python path.
    """

    def __init__(
        self,
        instance: OCSPInstance,
        compile_threads: int = 1,
        preinstalled=None,
        metrics=None,
    ) -> None:
        super().__init__(
            instance,
            compile_threads=compile_threads,
            preinstalled=preinstalled,
            metrics=metrics,
        )
        self._np = _numpy_or_none()
        if self._np is not None:
            np = self._np
            # The interned call sequence as one flat id array; replay
            # segments are O(1) views into it.
            self._calls_np = np.asarray(self._calls_fid, dtype=np.intp)
            self._max_levels = max(
                (len(row) for row in self._exec_rows), default=1
            )
            # Static SoA state for the batched evaluate kernel: cost
            # tables as dense (fid, level) matrices (rows padded with
            # their last entry — padding is never indexed because level
            # validity is checked first), first-call positions and fids,
            # per-fid call counts, and per-fid level counts.
            ml = self._max_levels
            self._exec_tab = np.array(
                [row + (row[-1],) * (ml - len(row)) for row in self._exec_rows]
            ) if self._exec_rows else np.zeros((0, ml))
            self._compile_tab = np.array(
                [
                    row + (row[-1],) * (ml - len(row))
                    for row in self._compile_rows
                ]
            ) if self._compile_rows else np.zeros((0, ml))
            self._nlvl_np = np.asarray(
                [len(row) for row in self._exec_rows], dtype=np.int64
            )
            self._first_pos_np = np.asarray(self._first_pos, dtype=np.intp)
            self._first_fids_np = (
                self._calls_np[self._first_pos_np]
                if len(self._calls_np)
                else np.empty(0, dtype=np.intp)
            )
            self._call_counts_np = np.bincount(
                self._calls_np, minlength=self._num_fids
            )
            self._called_mask_np = self._call_counts_np > 0
            self._pre_pairs = [
                (fid, ev[0][1])
                for fid, ev in enumerate(self._pre_events)
                if ev
            ]
            # Per-fid call-position groups, built lazily: only needed
            # when some function's level varies across its calls.
            self._call_groups_cache = None
            # One-slot cache of the last Schedule's interned task
            # arrays.  Schedules are immutable, so identity implies
            # equality; local search and the bench loops re-evaluate
            # the same Schedule object many times.
            self._sched_arrays = None

    def _call_groups(self):
        """``(order, bounds)``: positions of fid ``f``'s calls, ascending,
        are ``order[bounds[f]:bounds[f + 1]]``.  Cached per instance."""
        if self._call_groups_cache is None:
            np = self._np
            order = np.argsort(self._calls_np, kind="stable")
            bounds = np.concatenate(
                ([0], np.cumsum(self._call_counts_np))
            )
            self._call_groups_cache = (order, bounds)
        return self._call_groups_cache

    # ------------------------------------------------------------------
    # Full-bookkeeping replay (timelines, incremental bind/commit)
    # ------------------------------------------------------------------
    def _replay(
        self, prep: _Prep, i0: int, t0: float, exec0: float, bubble0: float
    ):
        np = self._np
        if np is None:
            return super()._replay(prep, i0, t0, exec0, bubble0)
        self._check_covered(prep)
        calls = self._calls_fid
        calls_np = self._calls_np
        n = len(calls)
        exec_rows = self._exec_rows
        gev_fins = prep.gev_fins
        gev_fids = prep.gev_fids
        gev_levels = prep.gev_levels
        num_events = len(gev_fins)
        first_fin = prep.first_fin
        first_pos = self._first_pos
        num_firsts = len(first_pos)
        bests = np.full(self._num_fids, -1, dtype=np.int64)
        cur_exec = np.zeros(self._num_fids, dtype=np.float64)
        empty = np.empty
        cumsum = np.cumsum
        searchsorted = np.searchsorted
        starts_out = []
        fins_out = []
        lvls_out = []
        cum_exec = []
        cum_bubble = []
        t = t0
        total_exec = exec0
        total_bubble = bubble0
        i = i0
        k = 0
        fb = bisect_left(first_pos, i0)
        while i < n:
            while k < num_events and gev_fins[k] <= t:
                fid = gev_fids[k]
                level = gev_levels[k]
                if level > bests[fid]:
                    bests[fid] = level
                    cur_exec[fid] = exec_rows[fid][level]
                k += 1
            if fb < num_firsts and first_pos[fb] == i:
                # A function's first call: the only place a bubble can
                # appear, and the only place the clock can jump forward.
                fid = calls[i]
                fr = first_fin[fid]
                if t < fr:
                    start = fr
                    while k < num_events and gev_fins[k] <= start:
                        g = gev_fids[k]
                        level = gev_levels[k]
                        if level > bests[g]:
                            bests[g] = level
                            cur_exec[g] = exec_rows[g][level]
                        k += 1
                else:
                    start = t
                e = float(cur_exec[fid])
                finish = start + e
                total_bubble += start - t
                total_exec += e
                starts_out.append(start)
                fins_out.append(finish)
                lvls_out.append(int(bests[fid]))
                cum_exec.append(total_exec)
                cum_bubble.append(total_bubble)
                t = finish
                i += 1
                fb += 1
                continue
            # Bulk segment: the chained cumsum performs the reference's
            # exact left-associated float additions (chunk boundaries
            # restart from the exact intermediate clock, so they cannot
            # change any value — only bound the work wasted past a
            # compile-event crossing).
            b = first_pos[fb] if fb < num_firsts else n
            step = 1024 if k < num_events else b - i
            while i < b:
                j = b if b - i <= step else i + step
                seg = calls_np[i:j]
                ex = cur_exec[seg]
                m = len(ex)
                arr = empty(m + 1)
                arr[0] = t
                arr[1:] = ex
                cumsum(arr, out=arr)
                crossed = k < num_events and gev_fins[k] <= arr[m]
                if crossed:
                    p = int(searchsorted(arr, gev_fins[k], side="left"))
                else:
                    p = m
                if p:
                    starts_out.extend(arr[:p].tolist())
                    fins_out.extend(arr[1 : p + 1].tolist())
                    lvls_out.extend(bests[seg[:p]].tolist())
                    ce = empty(p + 1)
                    ce[0] = total_exec
                    ce[1:] = ex[:p]
                    cumsum(ce, out=ce)
                    cum_exec.extend(ce[1:].tolist())
                    total_exec = float(ce[p])
                    cum_bubble.extend([total_bubble] * p)
                    t = float(arr[p])
                    i += p
                if crossed:
                    break
                step <<= 1
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("fastsim.replays").inc()
            metrics.counter("fastsim.calls_replayed").inc(n - i0)
        return starts_out, fins_out, lvls_out, cum_exec, cum_bubble

    # ------------------------------------------------------------------
    # Make-span-only replay (local search's propose path)
    # ------------------------------------------------------------------
    def _replay_span_impl(
        self, prep: _Prep, i0: int, t0: float, cutoff: float
    ) -> Tuple[float, int]:
        # Mirrors the inherited chunk schedule (base 128, doubling,
        # reset per outer iteration) *exactly*: the bail-out index —
        # and with it the ``fastsim.span_calls_replayed`` counter — is
        # chunk-boundary-dependent, and the engines must agree on it.
        np = self._np
        if np is None:
            return super()._replay_span_impl(prep, i0, t0, cutoff)
        self._check_covered(prep)
        calls = self._calls_fid
        calls_np = self._calls_np
        n = len(calls)
        exec_rows = self._exec_rows
        gev_fins = prep.gev_fins
        gev_fids = prep.gev_fids
        gev_levels = prep.gev_levels
        num_events = len(gev_fins)
        first_fin = prep.first_fin
        first_pos = self._first_pos
        num_firsts = len(first_pos)
        bests = np.full(self._num_fids, -1, dtype=np.int64)
        cur_exec = np.zeros(self._num_fids, dtype=np.float64)
        empty = np.empty
        cumsum = np.cumsum
        searchsorted = np.searchsorted
        t = t0
        i = i0
        k = 0
        fb = bisect_left(first_pos, i0)
        while i < n:
            while k < num_events and gev_fins[k] <= t:
                fid = gev_fids[k]
                level = gev_levels[k]
                if level > bests[fid]:
                    bests[fid] = level
                    cur_exec[fid] = exec_rows[fid][level]
                k += 1
            if fb < num_firsts and first_pos[fb] == i:
                fid = calls[i]
                fr = first_fin[fid]
                if t < fr:
                    start = fr
                    while k < num_events and gev_fins[k] <= start:
                        g = gev_fids[k]
                        level = gev_levels[k]
                        if level > bests[g]:
                            bests[g] = level
                            cur_exec[g] = exec_rows[g][level]
                        k += 1
                else:
                    start = t
                t = start + float(cur_exec[fid])
                i += 1
                fb += 1
                if t > cutoff:
                    return _INF, i
                continue
            b = first_pos[fb] if fb < num_firsts else n
            if k >= num_events:
                m = b - i
                if m:
                    arr = empty(m + 1)
                    arr[0] = t
                    arr[1:] = cur_exec[calls_np[i:b]]
                    cumsum(arr, out=arr)
                    t = float(arr[m])
                i = b
                if t > cutoff:
                    return _INF, i
                continue
            step = 128
            while i < b:
                j = b if b - i <= step else i + step
                seg = calls_np[i:j]
                m = len(seg)
                arr = empty(m + 1)
                arr[0] = t
                arr[1:] = cur_exec[seg]
                cumsum(arr, out=arr)
                end = arr[m]
                if gev_fins[k] <= end:
                    p = int(searchsorted(arr, gev_fins[k], side="left"))
                    t = float(arr[p])
                    i += p
                    break
                t = float(end)
                i = j
                if t > cutoff:
                    return _INF, i
                step <<= 1
            if t > cutoff:
                return _INF, i
        return t, i

    # ------------------------------------------------------------------
    # Totals-only replay (the stateless evaluate fast path)
    # ------------------------------------------------------------------
    def _replay_totals(
        self, prep: _Prep, i0: int, t0: float, exec0: float, bubble0: float
    ):
        """Totals-only twin of :meth:`_replay`: no per-call arrays.

        Returns ``(t, total_exec, total_bubble, calls_at_level)`` with
        the same floats and the same work counters the full replay
        would produce; the per-level histogram accumulates through
        ``numpy.bincount`` instead of per-call appends.
        """
        np = self._np
        self._check_covered(prep)
        calls = self._calls_fid
        calls_np = self._calls_np
        n = len(calls)
        exec_rows = self._exec_rows
        gev_fins = prep.gev_fins
        gev_fids = prep.gev_fids
        gev_levels = prep.gev_levels
        num_events = len(gev_fins)
        first_fin = prep.first_fin
        first_pos = self._first_pos
        num_firsts = len(first_pos)
        max_levels = self._max_levels
        bests = np.full(self._num_fids, -1, dtype=np.int64)
        cur_exec = np.zeros(self._num_fids, dtype=np.float64)
        hist = np.zeros(max_levels, dtype=np.int64)
        empty = np.empty
        cumsum = np.cumsum
        searchsorted = np.searchsorted
        bincount = np.bincount
        t = t0
        total_exec = exec0
        total_bubble = bubble0
        i = i0
        k = 0
        fb = bisect_left(first_pos, i0)
        while i < n:
            while k < num_events and gev_fins[k] <= t:
                fid = gev_fids[k]
                level = gev_levels[k]
                if level > bests[fid]:
                    bests[fid] = level
                    cur_exec[fid] = exec_rows[fid][level]
                k += 1
            if fb < num_firsts and first_pos[fb] == i:
                fid = calls[i]
                fr = first_fin[fid]
                if t < fr:
                    start = fr
                    while k < num_events and gev_fins[k] <= start:
                        g = gev_fids[k]
                        level = gev_levels[k]
                        if level > bests[g]:
                            bests[g] = level
                            cur_exec[g] = exec_rows[g][level]
                        k += 1
                else:
                    start = t
                e = float(cur_exec[fid])
                total_bubble += start - t
                total_exec += e
                hist[bests[fid]] += 1
                t = start + e
                i += 1
                fb += 1
                continue
            b = first_pos[fb] if fb < num_firsts else n
            step = 1024 if k < num_events else b - i
            while i < b:
                j = b if b - i <= step else i + step
                seg = calls_np[i:j]
                ex = cur_exec[seg]
                m = len(ex)
                arr = empty(m + 1)
                arr[0] = t
                arr[1:] = ex
                cumsum(arr, out=arr)
                crossed = k < num_events and gev_fins[k] <= arr[m]
                if crossed:
                    p = int(searchsorted(arr, gev_fins[k], side="left"))
                else:
                    p = m
                if p:
                    hist += bincount(bests[seg[:p]], minlength=max_levels)
                    ce = empty(p + 1)
                    ce[0] = total_exec
                    ce[1:] = ex[:p]
                    cumsum(ce, out=ce)
                    total_exec = float(ce[p])
                    t = float(arr[p])
                    i += p
                if crossed:
                    break
                step <<= 1
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("fastsim.replays").inc()
            metrics.counter("fastsim.calls_replayed").inc(n - i0)
        calls_at_level = {
            level: int(count)
            for level, count in enumerate(hist.tolist())
            if count
        }
        return t, total_exec, total_bubble, calls_at_level

    # ------------------------------------------------------------------
    # Batched evaluation (the whole trace in O(1) numpy passes)
    # ------------------------------------------------------------------
    def _segment_scan(self, seg_a, lens, seeds, e, qpos):
        """Exact chained cumsum of every segment.

        Segment ``r`` covers calls ``seg_a[r] .. seg_a[r]+lens[r]-1`` and
        restarts the clock chain at ``seeds[r]``.  Returns
        ``(ends, qvals)``: the exact end value of each segment and the
        exact start time of every queried call position in ``qpos``.
        Chains restart at *static* seed values, so the segments are
        independent: short ones evaluate together as rows of a
        zero-padded matrix (``numpy.cumsum`` along a row is the same
        sequential left-associated accumulation as over a 1-D array, and
        trailing ``+ 0.0`` padding is bitwise neutral), long ones as
        individual 1-D cumsums.
        """
        np = self._np
        num_segs = len(lens)
        ends = np.empty(num_segs)
        nq = len(qpos)
        qvals = np.empty(nq)
        if nq:
            # A position's segment is the *last* one starting at or
            # before it (zero-length segments share a start with their
            # successor but hold no positions).
            qseg = np.searchsorted(seg_a, qpos, side="right") - 1
            qcol = qpos - seg_a[qseg]
        done = np.zeros(num_segs, dtype=bool)
        # Buckets bound padded waste: rows land in the smallest matrix
        # they fit, so the padded area stays within a few times the
        # real element count.
        for cap in (32, 256, 2048):
            sel = ~done & (lens <= cap)
            rows = np.nonzero(sel)[0]
            if not rows.size:
                continue
            la = lens[rows]
            a = seg_a[rows]
            num_rows = len(rows)
            width = int(la.max())
            mat = np.zeros((num_rows, width + 1))
            mat[:, 0] = seeds[rows]
            total = int(la.sum())
            if total:
                # Ragged fill: scatter the real elements only (O(real),
                # not O(padded)); the zero padding is already in place.
                rowrep = np.repeat(np.arange(num_rows), la)
                csum = np.concatenate(([0], np.cumsum(la)))
                within = np.arange(total) - csum[rowrep]
                mat.ravel()[rowrep * (width + 1) + 1 + within] = e[
                    a[rowrep] + within
                ]
                np.cumsum(mat, axis=1, out=mat)
            ends[rows] = mat[np.arange(num_rows), la]
            done[rows] = True
            if nq:
                qin = sel[qseg]
                if qin.any():
                    rowmap = np.empty(num_segs, dtype=np.intp)
                    rowmap[rows] = np.arange(num_rows)
                    qvals[qin] = mat[rowmap[qseg[qin]], qcol[qin]]
        for r in np.nonzero(~done)[0].tolist():
            a = int(seg_a[r])
            ln = int(lens[r])
            arr = np.empty(ln + 1)
            arr[0] = seeds[r]
            arr[1:] = e[a : a + ln]
            np.cumsum(arr, out=arr)
            ends[r] = arr[ln]
            if nq:
                qin = qseg == r
                if qin.any():
                    qvals[qin] = arr[qcol[qin]]
        return ends, qvals

    _MAX_LEVEL_ROUNDS = 20

    def _evaluate_batched(self, schedule):
        """Whole-trace totals in a fixed number of numpy passes.

        The replay clock is a single float chain that *restarts* — at a
        blocking first call the reference assigns ``t = first_finish``,
        a static value.  Levels partition the trace the same way: a
        function whose best-installed level never changes after its
        first install executes every call at one known level.  So given
        two discrete decisions — *which first calls block* and *which
        level each call runs at* — the exact timeline is a set of
        independent seeded cumsums (:meth:`_segment_scan`), and the
        totals follow from single passes.

        The decisions are guessed from an approximate max-plus prefix
        (raw cumsum plus a running max of ``first_finish - prefix``
        offsets) and then **verified exactly** against the segmented
        scan: every first call's exact pre-call clock is compared with
        its first finish, and every level of a level-varying function is
        re-derived from the exact start times.  On any mismatch (ties
        resolved differently by rounding, or non-convergence) the
        method returns ``None`` — before touching any counter — and the
        caller falls back to the chunked exact path.  Results that do
        return are bitwise identical to the reference by construction.
        """
        np = self._np
        calls_np = self._calls_np
        n = len(calls_np)
        num_fids = self._num_fids
        cached = self._sched_arrays
        if (
            cached is not None
            and isinstance(schedule, Schedule)
            and cached[0] is schedule
        ):
            _, tfids, tlvls = cached
        else:
            tasks = self._as_tasks(schedule)
            fid_of = self._fid_of
            tfids = np.asarray(
                [fid_of[task.function] for task in tasks], dtype=np.intp
            )
            tlvls = np.asarray(
                [task.level for task in tasks], dtype=np.int64
            )
            if isinstance(schedule, Schedule):
                self._sched_arrays = (schedule, tfids, tlvls)
        num_tasks = len(tfids)
        if num_tasks and (
            int(tlvls.min()) < 0 or bool(np.any(tlvls >= self._nlvl_np[tfids]))
        ):
            return None  # out-of-range level: defer to the legacy path
        metrics = self.metrics

        # ---- per-task chain (single thread, no releases) -------------
        if num_tasks:
            fins = np.cumsum(self._compile_tab[tfids, tlvls])
            compile_end = float(fins[num_tasks - 1])
        else:
            fins = np.empty(0)
            compile_end = 0.0

        # ---- per-fid event shape -------------------------------------
        # Stable sort by fid: single-thread finishes ascend in schedule
        # order, so each group is already sorted by finish time.
        order = np.argsort(tfids, kind="stable")
        gfids = tfids[order]
        gfins = fins[order]
        glvls = tlvls[order]
        task_counts = np.bincount(gfids, minlength=num_fids)
        tb = np.concatenate(([0], np.cumsum(task_counts)))
        has_task = task_counts > 0
        first_idx = tb[:-1][has_task]
        last_idx = tb[1:][has_task] - 1
        first_fin = np.zeros(num_fids)
        first_fin[has_task] = gfins[first_idx]
        # Segmented running max of levels: fid groups ascend, so keying
        # by fid * K + level makes one global maximum.accumulate reset
        # at every group boundary.
        K = self._max_levels + 1
        cummax_lvl = np.maximum.accumulate(gfids * K + glvls) - gfids * K
        lvl_first = np.full(num_fids, -1, dtype=np.int64)
        lvl_final = np.full(num_fids, -1, dtype=np.int64)
        lvl_first[has_task] = cummax_lvl[first_idx]
        lvl_final[has_task] = cummax_lvl[last_idx]
        has_event = has_task.copy()
        for fid, plvl in self._pre_pairs:
            has_event[fid] = True
            first_fin[fid] = 0.0
            lvl_first[fid] = plvl
            if lvl_final[fid] < plvl:
                lvl_final[fid] = plvl
        missing = self._called_mask_np & ~has_event
        if bool(missing.any()):
            if metrics is not None:
                metrics.counter("fastsim.prepares").inc()
                metrics.counter("fastsim.tasks_prepared").inc(num_tasks)
            for fid in self._called_fids:
                if missing[fid]:
                    raise ScheduleError(
                        f"function {self._fnames[fid]!r} is never compiled"
                    )

        # ---- per-call levels and exec times --------------------------
        varying = np.nonzero(
            self._called_mask_np & (lvl_first != lvl_final)
        )[0]
        lvl_uni = lvl_final.copy()
        if varying.size:
            lvl_uni[varying] = lvl_first[varying]
        # Uncalled fids may carry level -1 here; the gather below only
        # ever reads called fids' rows (and -1 wraps, harmlessly).
        e_fid = self._exec_tab[np.arange(num_fids), lvl_uni]
        e = e_fid[calls_np]

        fp = self._first_pos_np
        ffids = self._first_fids_np
        first_F = first_fin[ffids]
        pre_lookup = dict(self._pre_pairs)
        var_state = []
        for fid in varying.tolist():
            ogroups, obounds = self._call_groups()
            pos = ogroups[obounds[fid] : obounds[fid + 1]]
            evf = gfins[tb[fid] : tb[fid + 1]]
            cum = cummax_lvl[tb[fid] : tb[fid + 1]]
            plvl = pre_lookup.get(fid)
            if plvl is not None:
                evf = np.concatenate(([0.0], evf))
                cum = np.concatenate(([plvl], np.maximum(cum, plvl)))
            cur = np.full(len(pos), lvl_first[fid], dtype=np.int64)
            var_state.append((fid, pos, evf, cum, cur))

        def _offsets(P):
            # Approximate max-plus bubble offsets at the first-call
            # positions (raw prefix + running max of F - prefix); only
            # used to *guess* decisions, never to produce a float.
            pb = P[fp] - e[fp]
            cand = first_F - pb
            off_incl = np.maximum.accumulate(np.maximum(cand, 0.0))
            return pb, cand, off_incl

        if var_state:
            P = None
            for _ in range(self._MAX_LEVEL_ROUNDS):
                P = np.cumsum(e)
                _pb, _cand, off_incl = _offsets(P)
                changed = False
                for idx_v, (fid, pos, evf, cum, cur) in enumerate(var_state):
                    off_at = off_incl[
                        np.searchsorted(fp, pos, side="right") - 1
                    ]
                    sa = P[pos] - e[pos] + off_at
                    new = cum[np.searchsorted(evf, sa, side="right") - 1]
                    if not np.array_equal(new, cur):
                        changed = True
                        var_state[idx_v] = (fid, pos, evf, cum, new)
                        e[pos] = self._exec_tab[fid][new]
                if not changed:
                    break
            else:
                return None  # level fixpoint did not converge
        else:
            P = np.cumsum(e) if n else np.empty(0)
        if n:
            _pb, cand, off_incl = _offsets(P)
            off_excl = np.concatenate(([0.0], off_incl[:-1]))
            binding = cand > off_excl
        else:
            binding = np.empty(0, dtype=bool)

        # ---- exact segmented timeline --------------------------------
        bpos = fp[binding]
        seeds = np.concatenate(([0.0], first_F[binding]))
        seg_a = np.concatenate(([0], bpos))
        seg_b = np.concatenate((bpos, [n]))
        lens = seg_b - seg_a
        # Exact start times are only needed at the non-blocking first
        # calls (to verify they really did not block) and at every call
        # of a level-varying function (to verify its guessed levels).
        nb = fp[~binding]
        qparts = [nb]
        qparts.extend(pos for _fid, pos, _evf, _cum, _cur in var_state)
        qpos = np.concatenate(qparts) if len(qparts) > 1 else nb
        ends, qvals = self._segment_scan(seg_a, lens, seeds, e, qpos)

        # ---- exact verification of the guessed decisions -------------
        # Blocking first calls: the exact pre-call clock (the previous
        # segment's end) must be strictly below the first finish.
        if not bool(np.all(ends[:-1] < seeds[1:])):
            return None
        # Non-blocking first calls: the exact clock must already have
        # reached the first finish.
        nnb = len(nb)
        if nnb and not bool(np.all(qvals[:nnb] >= first_F[~binding])):
            return None
        # Level-varying functions: re-derive every level from the exact
        # start times; any drift from the guessed levels is a mismatch.
        hist = np.zeros(self._max_levels, dtype=np.int64)
        qoff = nnb
        for _fid, pos, evf, cum, cur in var_state:
            exact = cum[
                np.searchsorted(
                    evf, qvals[qoff : qoff + len(pos)], side="right"
                )
                - 1
            ]
            qoff += len(pos)
            if not np.array_equal(exact, cur):
                return None
            hist += np.bincount(exact, minlength=self._max_levels)

        # ---- totals (all single exact passes) ------------------------
        t = float(ends[len(ends) - 1])
        total_exec = float(P[n - 1]) if n else 0.0
        nbind = int(binding.sum()) if n else 0
        if nbind:
            bubbles = seeds[1:] - ends[:-1]
            total_bubble = float(np.cumsum(bubbles)[nbind - 1])
        else:
            total_bubble = 0.0
        uni = np.nonzero(self._called_mask_np)[0]
        if varying.size:
            uni = uni[lvl_first[uni] == lvl_final[uni]]
        np.add.at(hist, lvl_final[uni], self._call_counts_np[uni])
        calls_at_level = {
            level: int(count)
            for level, count in enumerate(hist.tolist())
            if count
        }
        if metrics is not None:
            metrics.counter("fastsim.prepares").inc()
            metrics.counter("fastsim.tasks_prepared").inc(num_tasks)
            metrics.counter("fastsim.replays").inc()
            metrics.counter("fastsim.calls_replayed").inc(n)
        return MakespanResult(
            makespan=t,
            compile_end=compile_end,
            total_bubble_time=total_bubble,
            total_exec_time=total_exec,
            calls_at_level=calls_at_level,
        )

    # ------------------------------------------------------------------
    # Full (stateless) evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        schedule: TaskSeq,
        record_timeline: bool = False,
        validate: bool = False,
        release_times: Optional[Sequence[float]] = None,
        task_compile_times: Optional[Sequence[float]] = None,
        task_installs: Optional[Sequence[bool]] = None,
        tracer=None,
    ) -> MakespanResult:
        """Exact :func:`~repro.core.makespan.simulate` twin; see
        :meth:`FastSimulator.evaluate`.

        Timeline and tracer requests take the inherited path (whose
        :meth:`_replay` is already vectorized); plain evaluations use
        the totals-only kernel, which skips per-call list
        materialization entirely.
        """
        if self._np is None or record_timeline or tracer is not None:
            return super().evaluate(
                schedule,
                record_timeline=record_timeline,
                validate=validate,
                release_times=release_times,
                task_compile_times=task_compile_times,
                task_installs=task_installs,
                tracer=tracer,
            )
        if self.metrics is not None:
            self.metrics.counter("fastsim.evaluations").inc()
        if (
            not validate
            and self._compile_threads == 1
            and release_times is None
            and task_compile_times is None
            and task_installs is None
        ):
            result = self._evaluate_batched(schedule)
            if result is not None:
                return result
        prep = self._prepare(
            schedule, release_times, task_compile_times, task_installs
        )
        if validate:
            validate_for_simulation(
                self._instance, Schedule(prep.tasks), self._preinstalled
            )
        t, total_exec, total_bubble, calls_at_level = self._replay_totals(
            prep, 0, 0.0, 0.0, 0.0
        )
        return MakespanResult(
            makespan=t,
            compile_end=prep.finishes[-1] if prep.finishes else 0.0,
            total_bubble_time=total_bubble,
            total_exec_time=total_exec,
            calls_at_level=calls_at_level,
        )

    # ------------------------------------------------------------------
    # Due-date objectives (vectorized aggregation)
    # ------------------------------------------------------------------
    def due_objectives(
        self, schedule: TaskSeq, due: DueDateTable, validate: bool = False
    ) -> DueDateObjectives:
        """Vectorized twin of :meth:`FastSimulator.due_objectives`.

        The per-call timeline comes from the (already vectorized)
        inherited replay; the aggregation runs on flat arrays.  Bitwise
        safety: tardiness maxima are order-independent, and the two
        weighted sums accumulate via 1-D ``numpy.cumsum`` — a
        sequential left-associated accumulation — over functions in
        sorted-name order, exactly the reference aggregation order.
        """
        np = self._np
        if np is None:
            return super().due_objectives(schedule, due, validate=validate)
        result = self.evaluate(schedule, record_timeline=True, validate=validate)
        last_finish = {}
        for timing in result.call_timings:
            if timing.function in due:
                last_finish[timing.function] = timing.finish
        items = [
            (fname, due_time, weight, last_finish[fname])
            for fname, (due_time, weight) in due.items()
            if fname in last_finish
        ]
        if not items:
            return DueDateObjectives(
                makespan=result.makespan,
                max_tardiness=0.0,
                total_weighted_tardiness=0.0,
                weighted_completion=0.0,
                num_late=0,
                num_jobs=0,
                completions={},
            )
        dues = np.array([item[1] for item in items], dtype=np.float64)
        weights = np.array([item[2] for item in items], dtype=np.float64)
        finishes = np.array([item[3] for item in items], dtype=np.float64)
        tardiness = finishes - dues
        late = tardiness > 0.0
        clamped = np.where(late, tardiness, 0.0)
        twt = np.cumsum(weights * clamped)[-1] if len(items) else 0.0
        wc = np.cumsum(weights * finishes)[-1]
        return DueDateObjectives(
            makespan=result.makespan,
            max_tardiness=float(clamped.max()) if len(items) else 0.0,
            total_weighted_tardiness=float(twt),
            weighted_completion=float(wc),
            num_late=int(late.sum()),
            num_jobs=len(items),
            completions=last_finish,
        )
