"""Core data model for the Optimal Compilation Scheduling Problem (OCSP).

The paper (Section 3, Definition 1) defines an OCSP instance as:

* a *call sequence*: an ordered list of function invocations;
* for every function ``m_i`` and compilation level ``j``, a compilation
  time ``c[i][j]`` and a per-invocation execution time ``e[i][j]``;
* the monotonicity assumptions ``c[i][j1] <= c[i][j2]`` and
  ``e[i][j1] >= e[i][j2]`` for ``j1 < j2`` (deeper optimization costs more
  to compile and runs faster);
* a function cannot run before its first compilation finishes, and every
  invocation runs the code produced by the *latest finished* compilation.

This module provides the two interchange types used throughout the
library: :class:`FunctionProfile` (the per-function cost table) and
:class:`OCSPInstance` (profiles plus a call sequence).  Every scheduler,
simulator, and workload generator in the package produces or consumes
these types, so that all comparisons run through identical code paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "FunctionProfile",
    "OCSPInstance",
    "ModelError",
    "validate_monotone_levels",
]


class ModelError(ValueError):
    """Raised when an OCSP instance or profile violates the paper's model."""


def validate_monotone_levels(
    compile_times: Sequence[float], exec_times: Sequence[float]
) -> None:
    """Check Definition 1's monotonicity assumptions.

    For levels ``j1 < j2`` we must have ``c[j1] <= c[j2]`` (deeper
    optimization takes at least as long to compile) and ``e[j1] >= e[j2]``
    (deeper optimization runs at least as fast).

    Raises:
        ModelError: if either sequence is empty, the lengths differ, any
            value is negative or non-finite, or monotonicity is violated.
    """
    if len(compile_times) == 0:
        raise ModelError("a function needs at least one compilation level")
    if len(compile_times) != len(exec_times):
        raise ModelError(
            "compile_times and exec_times must have one entry per level "
            f"(got {len(compile_times)} vs {len(exec_times)})"
        )
    for name, values in (("compile", compile_times), ("exec", exec_times)):
        for value in values:
            if not math.isfinite(value):
                raise ModelError(f"{name} time {value!r} is not finite")
            if value < 0:
                raise ModelError(f"{name} time {value!r} is negative")
    for j in range(1, len(compile_times)):
        if compile_times[j] < compile_times[j - 1]:
            raise ModelError(
                "compile times must be non-decreasing across levels: "
                f"c[{j - 1}]={compile_times[j - 1]} > c[{j}]={compile_times[j]}"
            )
        if exec_times[j] > exec_times[j - 1]:
            raise ModelError(
                "exec times must be non-increasing across levels: "
                f"e[{j - 1}]={exec_times[j - 1]} < e[{j}]={exec_times[j]}"
            )


@dataclass(frozen=True)
class FunctionProfile:
    """Per-function cost table: compile and execution time at each level.

    Levels are indexed ``0 .. num_levels - 1`` where level 0 is the most
    responsive (cheapest to compile) and the highest index is the most
    deeply optimized.  This mirrors Jikes RVM's baseline compiler (level 0)
    plus optimizing compiler levels, and V8's low/high pair.

    Attributes:
        name: identifier of the function (unique within an instance).
        compile_times: ``c[j]`` for each level ``j``; non-decreasing.
        exec_times: per-invocation ``e[j]`` for each level ``j``;
            non-increasing.
    """

    name: str
    compile_times: Tuple[float, ...]
    exec_times: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "compile_times", tuple(self.compile_times))
        object.__setattr__(self, "exec_times", tuple(self.exec_times))
        validate_monotone_levels(self.compile_times, self.exec_times)

    @property
    def num_levels(self) -> int:
        """Number of available compilation levels."""
        return len(self.compile_times)

    @property
    def levels(self) -> range:
        """Iterable over valid level indices."""
        return range(self.num_levels)

    def compile_time(self, level: int) -> float:
        """Compilation time ``c[level]``."""
        return self.compile_times[level]

    def exec_time(self, level: int) -> float:
        """Per-invocation execution time ``e[level]``."""
        return self.exec_times[level]

    def total_cost(self, level: int, n_calls: int) -> float:
        """``c[level] + n_calls * e[level]`` — the cost-benefit objective.

        This is the quantity minimized by the paper's "most cost-effective
        level" (Section 4.1) and by the cost-benefit models of Jikes RVM.
        """
        return self.compile_times[level] + n_calls * self.exec_times[level]

    def most_cost_effective_level(self, n_calls: int, tie_break: str = "low") -> int:
        """Level minimizing ``c[l] + n_calls * e[l]``.

        Args:
            n_calls: invocation count the cost is amortized over.
            tie_break: ``"low"`` resolves equal costs to the faster
                compile (right for single-shot compilation, Theorem 1);
                ``"high"`` resolves to the deeper optimization (right
                for IAR's *high* candidate, where the compile cost can
                be hidden).
        """
        if n_calls < 0:
            raise ModelError(f"n_calls must be non-negative, got {n_calls}")
        if tie_break not in ("low", "high"):
            raise ModelError(f"tie_break must be 'low' or 'high', got {tie_break!r}")
        best_level = 0
        best_cost = self.total_cost(0, n_calls)
        for level in range(1, self.num_levels):
            cost = self.total_cost(level, n_calls)
            if cost < best_cost or (tie_break == "high" and cost == best_cost):
                best_level = level
                best_cost = cost
        return best_level

    @property
    def most_responsive_level(self) -> int:
        """The level taking the least time to compile (level 0 by
        monotonicity; kept as a named property to match the paper's
        vocabulary in Section 5.1)."""
        return 0

    def reduced_to_two_levels(self, n_calls: int) -> "FunctionProfile":
        """Project this profile onto the two levels IAR uses (Section 5.1).

        For a JIT with more than two levels, the paper's design is to take
        the *most responsive* level and the *most cost-effective* level of
        a function as the two candidate levels.  If both coincide, the
        returned profile has a single level.
        """
        low = self.most_responsive_level
        high = self.most_cost_effective_level(n_calls)
        if high == low:
            return FunctionProfile(
                name=self.name,
                compile_times=(self.compile_times[low],),
                exec_times=(self.exec_times[low],),
            )
        if high < low:  # cannot happen with low == 0, but keep the invariant
            low, high = high, low
        return FunctionProfile(
            name=self.name,
            compile_times=(self.compile_times[low], self.compile_times[high]),
            exec_times=(self.exec_times[low], self.exec_times[high]),
        )

    def with_times(
        self,
        compile_times: Optional[Sequence[float]] = None,
        exec_times: Optional[Sequence[float]] = None,
    ) -> "FunctionProfile":
        """Return a copy with some times replaced (used by estimation
        models that perturb the true costs)."""
        return FunctionProfile(
            name=self.name,
            compile_times=tuple(
                compile_times if compile_times is not None else self.compile_times
            ),
            exec_times=tuple(
                exec_times if exec_times is not None else self.exec_times
            ),
        )


@dataclass(frozen=True)
class OCSPInstance:
    """An instance of the Optimal Compilation Scheduling Problem.

    Attributes:
        profiles: mapping from function name to its
            :class:`FunctionProfile`.  Every function appearing in
            ``calls`` must have a profile; profiles for functions that are
            never called are permitted (they model loaded-but-unused
            methods) and are ignored by schedulers.
        calls: the invocation sequence, in program order.  For
            multithreaded applications the paper merges per-thread calls
            into a single sequence in profiler order (Section 6.1); we
            inherit that convention.
        name: optional label (e.g. the benchmark name).
    """

    profiles: Mapping[str, FunctionProfile]
    calls: Tuple[str, ...]
    name: str = "instance"
    _call_counts: Dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    _first_call_index: Dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "profiles", dict(self.profiles))
        object.__setattr__(self, "calls", tuple(self.calls))
        counts: Dict[str, int] = {}
        first_index: Dict[str, int] = {}
        for index, fname in enumerate(self.calls):
            if fname not in self.profiles:
                raise ModelError(
                    f"call #{index} invokes {fname!r} which has no profile"
                )
            counts[fname] = counts.get(fname, 0) + 1
            if fname not in first_index:
                first_index[fname] = index
        object.__setattr__(self, "_call_counts", counts)
        object.__setattr__(self, "_first_call_index", first_index)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def num_calls(self) -> int:
        """Length of the invocation sequence (``N`` in the paper)."""
        return len(self.calls)

    @property
    def called_functions(self) -> List[str]:
        """Functions that appear in the call sequence, in first-call order.

        This is the paper's ``getSeq1stCalls(Eseq)`` (Figure 3, step 1).
        """
        return sorted(self._first_call_index, key=self._first_call_index.__getitem__)

    @property
    def num_functions(self) -> int:
        """Number of distinct called functions (``M`` in the paper)."""
        return len(self._call_counts)

    def call_count(self, fname: str) -> int:
        """``f.n``: number of invocations of ``fname`` in the sequence."""
        return self._call_counts.get(fname, 0)

    def first_call_index(self, fname: str) -> int:
        """Position of the first invocation of ``fname``.

        Raises:
            KeyError: if the function is never called.
        """
        return self._first_call_index[fname]

    def profile(self, fname: str) -> FunctionProfile:
        """Profile for ``fname``."""
        return self.profiles[fname]

    def max_level(self, fname: str) -> int:
        """Highest compilation level available for ``fname``."""
        return self.profiles[fname].num_levels - 1

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reduced_to_two_levels(self) -> "OCSPInstance":
        """Project every called function onto IAR's two candidate levels.

        See :meth:`FunctionProfile.reduced_to_two_levels`.  Never-called
        functions are dropped (they carry no information for scheduling).
        """
        reduced = {
            fname: self.profiles[fname].reduced_to_two_levels(self.call_count(fname))
            for fname in self._call_counts
        }
        return OCSPInstance(profiles=reduced, calls=self.calls, name=self.name)

    def restricted_to_levels(self, levels: Mapping[str, Sequence[int]]) -> "OCSPInstance":
        """Keep only the given levels for each function.

        Args:
            levels: for each function name, the (sorted) level indices to
                keep.  Functions not listed keep all their levels.
        """
        new_profiles: Dict[str, FunctionProfile] = {}
        for fname, prof in self.profiles.items():
            keep = levels.get(fname)
            if keep is None:
                new_profiles[fname] = prof
                continue
            keep = sorted(keep)
            if not keep:
                raise ModelError(f"must keep at least one level for {fname!r}")
            for lvl in keep:
                if not 0 <= lvl < prof.num_levels:
                    raise ModelError(
                        f"level {lvl} out of range for {fname!r} "
                        f"(has {prof.num_levels} levels)"
                    )
            new_profiles[fname] = FunctionProfile(
                name=fname,
                compile_times=tuple(prof.compile_times[lvl] for lvl in keep),
                exec_times=tuple(prof.exec_times[lvl] for lvl in keep),
            )
        return OCSPInstance(profiles=new_profiles, calls=self.calls, name=self.name)

    def prefix(self, n_calls: int) -> "OCSPInstance":
        """Instance containing only the first ``n_calls`` invocations."""
        return OCSPInstance(
            profiles=self.profiles,
            calls=self.calls[:n_calls],
            name=f"{self.name}[:{n_calls}]",
        )

    # ------------------------------------------------------------------
    # Aggregates used by bounds and sanity checks
    # ------------------------------------------------------------------
    def total_exec_time_at_level(self, pick_level) -> float:
        """Sum of per-call execution times with ``pick_level(fname)``
        choosing the level for each function."""
        level_for: Dict[str, int] = {}
        total = 0.0
        for fname in self.calls:
            lvl = level_for.get(fname)
            if lvl is None:
                lvl = pick_level(fname)
                level_for[fname] = lvl
            total += self.profiles[fname].exec_times[lvl]
        return total

    def summary(self) -> Dict[str, object]:
        """Basic statistics, matching the columns of the paper's Table 1."""
        return {
            "name": self.name,
            "num_functions": self.num_functions,
            "call_seq_length": self.num_calls,
            "levels": max(
                (self.profiles[f].num_levels for f in self._call_counts), default=0
            ),
        }


def merge_instances(instances: Iterable[OCSPInstance], name: str = "merged") -> OCSPInstance:
    """Concatenate call sequences of several instances sharing no function
    names.  Useful for building multi-phase workloads from parts.

    Raises:
        ModelError: if two instances define the same function name with
            different profiles.
    """
    profiles: Dict[str, FunctionProfile] = {}
    calls: List[str] = []
    for inst in instances:
        for fname, prof in inst.profiles.items():
            existing = profiles.get(fname)
            if existing is not None and existing != prof:
                raise ModelError(
                    f"conflicting profiles for {fname!r} while merging instances"
                )
            profiles[fname] = prof
        calls.extend(inst.calls)
    return OCSPInstance(profiles=profiles, calls=tuple(calls), name=name)
