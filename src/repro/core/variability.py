"""Per-invocation execution-time variability (Sections 3 and 8).

Definition 1 assumes each ``e[i][j]`` is one constant, but in reality
"the execution time may differ from one call of function m_i to
another, thanks to the differences in calling parameters and contexts."
The paper argues the variation "does not affect the major conclusions"
because only per-function *totals* enter the bounds and the single-core
argument.  This module lets us test that claim instead of taking it:

* :func:`simulate_variable` — make-span simulation where each
  invocation's time is the profile's mean scaled by a seeded lognormal
  factor (unit mean), per call;
* :func:`variability_experiment` — compare scheme rankings under
  increasing variability.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

from .makespan import MakespanResult, _compile_task_finishes
from .model import OCSPInstance
from .schedule import Schedule

__all__ = ["simulate_variable", "variability_experiment"]


def _unit_mean_lognormal(rng: random.Random, sigma: float) -> float:
    """Lognormal multiplier with mean exactly 1 (so per-function
    expected totals match the deterministic model)."""
    return math.exp(rng.gauss(-0.5 * sigma * sigma, sigma))


def simulate_variable(
    instance: OCSPInstance,
    schedule: Schedule,
    rel_sigma: float,
    seed: int = 0,
    compile_threads: int = 1,
) -> MakespanResult:
    """Simulate with per-invocation execution-time noise.

    Each invocation of ``f`` at level ``j`` runs for
    ``e[f][j] * m_k`` where ``m_k`` is a unit-mean lognormal multiplier
    drawn per call position (the *same* multiplier applies whichever
    level the call ends up running at — context slowness is a property
    of the call, not of the code version).

    Args:
        instance: the workload (profile times are the means).
        schedule: compilation schedule.
        rel_sigma: lognormal sigma of the multiplier (0 = deterministic).
        seed: RNG seed; multipliers are a deterministic function of
            (seed, call position).
        compile_threads: compiler threads.

    Raises:
        ValueError: for negative ``rel_sigma`` or bad thread counts.
    """
    if rel_sigma < 0:
        raise ValueError("rel_sigma must be non-negative")
    if compile_threads < 1:
        raise ValueError("compile_threads must be >= 1")
    schedule.validate(instance)

    rng = random.Random(seed)
    _starts, finishes, _threads = _compile_task_finishes(
        instance, schedule, compile_threads
    )
    by_function: Dict[str, List[Tuple[float, int]]] = {}
    for task, finish in zip(schedule, finishes):
        by_function.setdefault(task.function, []).append((finish, task.level))
    for events in by_function.values():
        events.sort()
    cursor = {f: 0 for f in by_function}
    best_level: Dict[str, int] = {}

    profiles = instance.profiles
    t = 0.0
    total_bubble = 0.0
    total_exec = 0.0
    calls_at_level: Dict[int, int] = {}
    for fname in instance.calls:
        multiplier = (
            _unit_mean_lognormal(rng, rel_sigma) if rel_sigma > 0 else 1.0
        )
        events = by_function[fname]
        first_ready = events[0][0]
        start = t if t >= first_ready else first_ready
        total_bubble += start - t
        idx = cursor[fname]
        best = best_level.get(fname, -1)
        while idx < len(events) and events[idx][0] <= start:
            if events[idx][1] > best:
                best = events[idx][1]
            idx += 1
        cursor[fname] = idx
        best_level[fname] = best
        exec_time = profiles[fname].exec_times[best] * multiplier
        total_exec += exec_time
        calls_at_level[best] = calls_at_level.get(best, 0) + 1
        t = start + exec_time

    return MakespanResult(
        makespan=t,
        compile_end=finishes[-1] if finishes else 0.0,
        total_bubble_time=total_bubble,
        total_exec_time=total_exec,
        calls_at_level=calls_at_level,
    )


def variability_experiment(
    instance: OCSPInstance,
    schedules: Dict[str, Schedule],
    sigmas: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    trials: int = 5,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Scheme make-spans under increasing per-call variability.

    For each sigma, each schedule is simulated ``trials`` times with
    different noise seeds and the mean make-span reported.  If the
    paper's Section 8 argument holds, scheme *rankings* are stable
    across sigmas even though absolute make-spans fluctuate.

    Returns:
        One row per sigma: ``{"sigma": s, "<name>": mean_makespan}``.
    """
    rows: List[Dict[str, object]] = []
    for sigma in sigmas:
        row: Dict[str, object] = {"sigma": sigma}
        for name, schedule in schedules.items():
            total = 0.0
            for trial in range(trials):
                result = simulate_variable(
                    instance, schedule, sigma, seed=seed + trial
                )
                total += result.makespan
            row[name] = total / trials
        rows.append(row)
    return rows
