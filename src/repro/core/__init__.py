"""Core library: the OCSP model, schedulers, simulator, and theory.

This package implements the paper's primary contribution:

* :mod:`repro.core.model` — the OCSP data model (Definition 1);
* :mod:`repro.core.schedule` — compilation schedules;
* :mod:`repro.core.makespan` — the make-span simulator;
* :mod:`repro.core.singlecore` — Theorem 1 (single-core optimality);
* :mod:`repro.core.bounds` — make-span lower bounds (Section 5.2);
* :mod:`repro.core.single_level` — single-level approximations;
* :mod:`repro.core.iar` — the IAR heuristic (Section 5.1, Figure 3);
* :mod:`repro.core.astar` — A*-search for the optimum (Section 5.3);
* :mod:`repro.core.bruteforce` — exhaustive ground truth;
* :mod:`repro.core.complexity` — NP-completeness reductions (Theorem 2);
* :mod:`repro.core.online` — noisy-estimate extensions (Section 8);
* :mod:`repro.core.vecsim` — structure-of-arrays numpy kernel;
* :mod:`repro.core.engine` — engine selection seam
  (``reference`` / ``fast`` / ``vector``).
"""

from .astar import AStarMemoryExceeded, AStarResult, astar_schedule
from .baselines import (
    greedy_budget_schedule,
    hotness_first_schedule,
    ondemand_promotion_schedule,
    random_schedule,
)
from .bounds import (
    compile_aware_lower_bound,
    lower_bound,
    warmup_aware_lower_bound,
)
from .bruteforce import BruteForceResult, SearchBudgetExceeded, optimal_schedule
from .complexity import (
    PartitionReduction,
    extract_partition_subset,
    ocsp_from_3sat,
    ocsp_from_partition,
    partition_from_subset_sum,
    schedule_from_partition_subset,
    solve_partition,
    subset_sum_from_3sat,
)
from .engine import (
    ReferenceSimulator,
    get_default_engine,
    make_simulator,
    resolve_engine,
    set_default_engine,
)
from .fastsim import FastSimulator
from .iar import DEFAULT_K, IARParams, IARResult, iar, iar_schedule
from .interp_tier import interpreter_prelude, lift_schedule, with_interpreter_tier
from .localsearch import SearchStats, improve_schedule
from .makespan import (
    CallTiming,
    DueDateObjectives,
    DueDateTable,
    MakespanResult,
    TaskTiming,
    due_date_objectives,
    iter_calls,
    objectives_from_timeline,
    simulate,
    simulate_single_core,
)
from .model import FunctionProfile, ModelError, OCSPInstance, validate_monotone_levels
from .osr import simulate_osr
from .online import (
    OnlineEvaluation,
    estimate_instance,
    online_iar_makespan,
    perturb_sequence,
    perturb_times,
)
from .prediction import CrossRunResult, MarkovPredictor, cross_run_iar
from .replan import ReplanResult, replan_iar
from .schedule import CompileTask, Schedule, ScheduleError
from .variability import simulate_variable, variability_experiment
from .single_level import (
    base_level_schedule,
    optimizing_level_schedule,
    single_level_schedule,
)
from .singlecore import (
    most_cost_effective_levels,
    single_core_optimal_makespan,
    single_core_optimal_schedule,
)
from .vecsim import VectorSimulator, numpy_available

__all__ = [
    # model
    "FunctionProfile",
    "OCSPInstance",
    "ModelError",
    "validate_monotone_levels",
    # schedule
    "CompileTask",
    "Schedule",
    "ScheduleError",
    # simulation
    "simulate",
    "simulate_single_core",
    "iter_calls",
    "FastSimulator",
    "VectorSimulator",
    "ReferenceSimulator",
    "MakespanResult",
    "TaskTiming",
    "CallTiming",
    # due-date objectives
    "DueDateTable",
    "DueDateObjectives",
    "due_date_objectives",
    "objectives_from_timeline",
    # engine seam
    "make_simulator",
    "resolve_engine",
    "set_default_engine",
    "get_default_engine",
    "numpy_available",
    # bounds
    "lower_bound",
    "compile_aware_lower_bound",
    "warmup_aware_lower_bound",
    # single core
    "most_cost_effective_levels",
    "single_core_optimal_schedule",
    "single_core_optimal_makespan",
    # single level
    "single_level_schedule",
    "base_level_schedule",
    "optimizing_level_schedule",
    # IAR
    "iar",
    "iar_schedule",
    "IARParams",
    "IARResult",
    "DEFAULT_K",
    # search
    "astar_schedule",
    "AStarResult",
    "AStarMemoryExceeded",
    "optimal_schedule",
    "BruteForceResult",
    "SearchBudgetExceeded",
    # complexity
    "ocsp_from_partition",
    "ocsp_from_3sat",
    "schedule_from_partition_subset",
    "extract_partition_subset",
    "solve_partition",
    "subset_sum_from_3sat",
    "partition_from_subset_sum",
    "PartitionReduction",
    # baselines
    "ondemand_promotion_schedule",
    "hotness_first_schedule",
    "greedy_budget_schedule",
    "random_schedule",
    # interpreter tier
    "with_interpreter_tier",
    "interpreter_prelude",
    "lift_schedule",
    # local search
    "improve_schedule",
    "SearchStats",
    # variability
    "simulate_variable",
    "simulate_osr",
    "variability_experiment",
    # prediction
    "MarkovPredictor",
    "cross_run_iar",
    "CrossRunResult",
    "replan_iar",
    "ReplanResult",
    # online
    "online_iar_makespan",
    "estimate_instance",
    "perturb_sequence",
    "perturb_times",
    "OnlineEvaluation",
]
