"""On-stack replacement (OSR): switching code mid-invocation.

Section 8 notes that treating interpretation as the lowest compilation
level needs "extra care ... for the interpreters that operate at the
level of a single statement" — i.e. an executing activation can switch
to better code at a loop back-edge instead of finishing at the old
speed.  That is on-stack replacement, and it changes the simulator's
"version decided at call start" rule.

:func:`simulate_osr` implements the natural fluid model: an invocation
runs as a unit of *work*; at any moment it proceeds at the speed of the
best version compiled so far, and when a better compile finishes
mid-invocation the **remaining fraction** of the work continues at the
new speed.  (Switch cost can be charged per transition.)

Consequences, verified in tests:

* OSR never lengthens an invocation: ``simulate_osr <= simulate`` for
  the same inputs (with zero switch cost);
* OSR removes exactly the *timing* part of the level excess that the
  call-start rule charges when an upgrade lands mid-call;
* with OSR, eagerly scheduled deep compiles are less dangerous — part
  of why interpreter-based runtimes can afford V8's eager promotion.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .makespan import MakespanResult, _compile_task_finishes
from .model import OCSPInstance
from .schedule import Schedule

__all__ = ["simulate_osr"]


def simulate_osr(
    instance: OCSPInstance,
    schedule: Schedule,
    compile_threads: int = 1,
    switch_cost: float = 0.0,
    validate: bool = True,
) -> MakespanResult:
    """Make-span simulation with on-stack replacement.

    Each invocation of ``f`` carries one unit of work.  Running at
    level ``j`` consumes it at rate ``1 / e[f][j]``; whenever a better
    version of ``f`` finishes compiling, the activation switches (the
    remaining work continues at the new speed), paying ``switch_cost``
    time per switch.

    Args:
        instance: the workload.
        schedule: compilation schedule.
        compile_threads: compiler threads serving the schedule FIFO.
        switch_cost: time charged at each mid-invocation switch.
        validate: check schedule legality first.

    Returns:
        A :class:`MakespanResult`; ``calls_at_level`` counts each call
        at the level it *finished* at.

    Raises:
        ScheduleError: if ``validate`` and the schedule is illegal.
        ValueError: for bad parameters.
    """
    if compile_threads < 1:
        raise ValueError("compile_threads must be >= 1")
    if switch_cost < 0:
        raise ValueError("switch_cost must be non-negative")
    if validate:
        schedule.validate(instance)

    _starts, finishes, _threads = _compile_task_finishes(
        instance, schedule, compile_threads
    )
    by_function: Dict[str, List[Tuple[float, int]]] = {}
    for task, finish in zip(schedule, finishes):
        by_function.setdefault(task.function, []).append((finish, task.level))
    for events in by_function.values():
        events.sort()

    cursor: Dict[str, int] = {f: 0 for f in by_function}
    best_level: Dict[str, int] = {}
    profiles = instance.profiles

    t = 0.0
    total_bubble = 0.0
    total_exec = 0.0
    calls_at_level: Dict[int, int] = {}

    for fname in instance.calls:
        events = by_function[fname]
        prof = profiles[fname]
        first_ready = events[0][0]
        start = t if t >= first_ready else first_ready
        total_bubble += start - t

        # Advance to the best version available at the start.
        idx = cursor[fname]
        best = best_level.get(fname, -1)
        while idx < len(events) and events[idx][0] <= start:
            if events[idx][1] > best:
                best = events[idx][1]
            idx += 1

        # Fluid execution with mid-call switches at later finishes.
        now = start
        remaining = 1.0  # fraction of the invocation's work left
        level = best
        while True:
            rate_time = prof.exec_times[level]
            # Next potentially-better compile finish for this function.
            if idx < len(events):
                next_finish, next_level = events[idx]
            else:
                next_finish, next_level = None, None
            if next_finish is not None and next_finish <= now:
                # Finished during a switch-cost window (or exactly now):
                # consume it immediately, switching if it is better.
                if next_level > level:
                    level = next_level
                    now += switch_cost
                idx += 1
                continue
            finish_if_no_switch = now + remaining * rate_time
            if (
                next_finish is None
                or next_finish >= finish_if_no_switch
                or next_level <= level
            ):
                if next_finish is not None and next_finish < finish_if_no_switch:
                    # A compile finishes mid-call but is not better:
                    # consume the event and keep running.
                    done = (next_finish - now) / rate_time
                    remaining -= done
                    now = next_finish
                    idx += 1
                    continue
                now = finish_if_no_switch
                break
            # Better version lands mid-invocation: switch.
            done = (next_finish - now) / rate_time
            remaining -= done
            now = next_finish + switch_cost
            level = next_level
            idx += 1

        cursor[fname] = idx
        best_level[fname] = level if level > best else best
        total_exec += now - start
        calls_at_level[level] = calls_at_level.get(level, 0) + 1
        t = now

    return MakespanResult(
        makespan=t,
        compile_end=finishes[-1] if finishes else 0.0,
        total_bubble_time=total_bubble,
        total_exec_time=total_exec,
        calls_at_level=calls_at_level,
    )
