"""Local-search schedule improvement.

The paper brackets the optimum between the Section 5.2 lower bound and
IAR's make-span.  On instances too large for brute force or A*, a
third probe is useful: start from any schedule and hill-climb.  If
randomized local search cannot improve IAR's schedules meaningfully,
that is direct evidence they are near-optimal — tightening the bracket
from the feasible side.

Moves (all preserve validity by construction):

* **swap** — exchange two tasks of *different* functions;
* **shift** — move one task to another position (per-function order
  preserved by only shifting past other functions' tasks);
* **toggle-high** — add or remove a function's high-level recompile;
* **upgrade/downgrade** — change a single task's level within the
  legal range.

Simulated-annealing acceptance is optional; the default is strict
hill-climbing with random restarts of the move kind.

Move evaluation runs on the :class:`~repro.core.fastsim.FastSimulator`
incremental engine by default: each candidate replays only the call
suffix its mutation can affect, and (under strict hill-climbing) aborts
as soon as it is provably worse than the incumbent.  The engine is
bitwise-exact against the reference simulator, so ``engine="fast"`` and
``engine="reference"`` walk identical search trajectories and return
identical schedules — ``engine="reference"`` exists for benchmarking
and differential testing.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .fastsim import FastSimulator
from .makespan import simulate
from .model import OCSPInstance
from .schedule import CompileTask, Schedule
from .vecsim import VectorSimulator

__all__ = ["SearchStats", "improve_schedule"]

ENGINES = ("fast", "vector", "reference")


@dataclass(frozen=True)
class SearchStats:
    """Outcome of a local-search run.

    Attributes:
        initial_makespan: make-span of the starting schedule.
        final_makespan: make-span of the returned schedule.
        iterations: moves attempted.
        accepted: moves accepted.
    """

    initial_makespan: float
    final_makespan: float
    iterations: int
    accepted: int

    @property
    def improvement(self) -> float:
        """Relative improvement over the starting schedule."""
        if self.initial_makespan == 0:
            return 0.0
        return 1.0 - self.final_makespan / self.initial_makespan


def _legal_positions(tasks: List[CompileTask], index: int) -> Tuple[int, int]:
    """Range of positions task ``index`` may move to without reordering
    its own function's tasks."""
    task = tasks[index]
    lo = 0
    for i in range(index - 1, -1, -1):
        if tasks[i].function == task.function:
            lo = i + 1
            break
    hi = len(tasks) - 1
    for i in range(index + 1, len(tasks)):
        if tasks[i].function == task.function:
            hi = i - 1
            break
    return lo, hi


def _propose(
    instance: OCSPInstance, tasks: List[CompileTask], rng: random.Random
) -> Optional[List[CompileTask]]:
    """One random valid neighbour, or ``None`` if the move fizzles."""
    move = rng.randrange(4)
    n = len(tasks)
    if move == 0 and n >= 2:  # swap two tasks of different functions
        i, j = rng.randrange(n), rng.randrange(n)
        if i == j or tasks[i].function == tasks[j].function:
            return None
        # Each task's new position must stay between its own function's
        # neighbouring tasks, or the swap would reorder a recompile
        # chain (levels must increase in schedule order).
        lo_i, hi_i = _legal_positions(tasks, i)
        lo_j, hi_j = _legal_positions(tasks, j)
        if not (lo_i <= j <= hi_i and lo_j <= i <= hi_j):
            return None
        out = list(tasks)
        out[i], out[j] = out[j], out[i]
        return out
    if move == 1 and n >= 2:  # shift one task
        i = rng.randrange(n)
        lo, hi = _legal_positions(tasks, i)
        if lo >= hi:
            return None
        j = rng.randint(lo, hi)
        if j == i:
            return None
        out = list(tasks)
        task = out.pop(i)
        out.insert(j, task)
        return out
    if move == 2:  # toggle a recompile
        fname = rng.choice(instance.called_functions)
        prof = instance.profiles[fname]
        if prof.num_levels < 2:
            return None
        positions = [i for i, t in enumerate(tasks) if t.function == fname]
        if len(positions) == 1:
            # Add a recompile at a level above the existing task's.
            current = tasks[positions[0]].level
            if current >= prof.num_levels - 1:
                return None
            level = rng.randint(current + 1, prof.num_levels - 1)
            at = rng.randint(positions[0] + 1, len(tasks))
            out = list(tasks)
            out.insert(at, CompileTask(fname, level))
            return out
        # Remove the last recompile (keep the first compile).
        out = list(tasks)
        del out[positions[-1]]
        return out
    # move == 3: change one task's level within the legal window.
    i = rng.randrange(n)
    task = tasks[i]
    prof = instance.profiles[task.function]
    below = [t.level for t in tasks if t.function == task.function and t.level < task.level]
    above = [t.level for t in tasks if t.function == task.function and t.level > task.level]
    lo = (max(below) + 1) if below else 0
    hi = (min(above) - 1) if above else prof.num_levels - 1
    if lo >= hi:
        return None
    level = rng.randint(lo, hi)
    if level == task.level:
        return None
    out = list(tasks)
    out[i] = CompileTask(task.function, level)
    return out


def improve_schedule(
    instance: OCSPInstance,
    schedule: Schedule,
    iterations: int = 2000,
    seed: int = 0,
    temperature: float = 0.0,
    compile_threads: int = 1,
    engine: Optional[str] = None,
    metrics=None,
) -> Tuple[Schedule, SearchStats]:
    """Randomized local search from ``schedule``.

    Args:
        instance: the workload.
        schedule: starting point (must be valid).
        iterations: moves to attempt.
        seed: RNG seed (deterministic search).
        temperature: 0 for strict hill-climbing; > 0 enables simulated
            annealing with exponential cooling (the value is the
            initial acceptance scale, relative to the starting
            make-span).
        compile_threads: compiler threads for evaluation.
        engine: ``"fast"`` (incremental :class:`FastSimulator`, the
            default), ``"vector"`` (incremental
            :class:`~repro.core.vecsim.VectorSimulator`, the numpy
            structure-of-arrays kernel), or ``"reference"`` (one full
            :func:`simulate` per move).  All produce identical results;
            ``None`` defers to the session default
            (:func:`repro.core.engine.set_default_engine` /
            ``$REPRO_ENGINE``), then to ``"fast"``.
        metrics: optional
            :class:`repro.observability.MetricsRegistry`; records move
            outcomes (``localsearch.proposed`` / ``fizzled`` /
            ``invalid`` / ``evaluated`` / ``cutoff_exits`` /
            ``accepted`` / ``improved``) and a ``localsearch.gain``
            histogram of accepted make-span deltas.  Counting never
            perturbs the search trajectory.

    Returns:
        ``(best schedule found, stats)``.  The result is never worse
        than the input.

    Raises:
        ScheduleError: if the starting schedule is invalid.
        ValueError: for non-positive iteration counts or an unknown
            engine.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if engine is None:
        from .engine import get_default_engine

        engine = get_default_engine() or "fast"
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    schedule.validate(instance)
    rng = random.Random(seed)

    fast: Optional[FastSimulator] = None
    if engine in ("fast", "vector"):
        cls = FastSimulator if engine == "fast" else VectorSimulator
        fast = cls(
            instance, compile_threads=compile_threads, metrics=metrics
        )
        current_span = fast.bind(schedule)
    else:
        current_span = simulate(
            instance, schedule, compile_threads=compile_threads, validate=False
        ).makespan
    current = list(schedule.tasks)
    best = list(current)
    best_span = current_span
    initial_span = current_span
    accepted = 0

    scale = temperature * initial_span
    # Under strict hill-climbing the exact span of a rejected move is
    # never consumed, so the incremental engine may abort a candidate
    # replay the moment it exceeds the incumbent.  Annealing needs the
    # true span for its acceptance probability — no cutoff then.
    use_cutoff = scale <= 0
    for step in range(iterations):
        proposal = _propose(instance, current, rng)
        if metrics is not None:
            metrics.counter("localsearch.proposed").inc()
        if proposal is None:
            if metrics is not None:
                metrics.counter("localsearch.fizzled").inc()
            continue
        if not Schedule(tuple(proposal)).is_valid_for(instance):
            # Defensive: every move is constructed to preserve validity,
            # but an invalid neighbour must never be evaluated.
            if metrics is not None:
                metrics.counter("localsearch.invalid").inc()
            continue
        if fast is not None:
            span = fast.propose(
                proposal, cutoff=current_span if use_cutoff else None
            )
        else:
            span = simulate(
                instance,
                Schedule(tuple(proposal)),
                compile_threads=compile_threads,
                validate=False,
            ).makespan
        if metrics is not None:
            metrics.counter("localsearch.evaluated").inc()
            if span == math.inf:
                metrics.counter("localsearch.cutoff_exits").inc()
        take = span <= current_span
        if not take and scale > 0:
            cooling = scale * (1.0 - step / iterations)
            if cooling > 0:
                take = rng.random() < math.exp((current_span - span) / cooling)
        if take:
            if fast is not None:
                fast.commit()
            if metrics is not None:
                metrics.counter("localsearch.accepted").inc()
                metrics.histogram("localsearch.gain").record(
                    current_span - span
                )
                if span < best_span:
                    metrics.counter("localsearch.improved").inc()
            current = proposal
            current_span = span
            accepted += 1
            if span < best_span:
                best = list(proposal)
                best_span = span

    return Schedule(tuple(best)), SearchStats(
        initial_makespan=initial_span,
        final_makespan=best_span,
        iterations=iterations,
        accepted=accepted,
    )
