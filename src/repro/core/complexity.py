"""NP-completeness machinery: reductions onto OCSP (Section 4.2, Theorem 2).

The paper proves OCSP NP-complete by reduction from PARTITION: given
non-negative integers ``S = {s_1..s_n}`` with ``t = sum(S)/2``, build

* one *middle* function per ``s_i`` with ``c_i1 = 1``, ``c_i2 = s_i + 1``,
  ``e_i1 = s_i + 1``, ``e_i2 = 1``;
* a *first* function (compile 1, execute ``t + n`` at every level);
* a *last* function (compile ``t + n``, execute 1 at every level);

and the call sequence ``first, m_1..m_n, last`` (each function once).
Then a schedule with make-span ``2 * (1 + t + n)`` exists **iff** ``S``
admits a partition: the subset compiled at level 1 executes long
(``s_i + 1``) and compiles short (1), its complement the reverse, and
equality of the two machines' loads forces the subset sums to ``t``.

This module implements the construction, the forward direction (build
the witness schedule from a partition and check its make-span), the
converse (extract a partition from any schedule achieving the bound), a
DP PARTITION solver for cross-checks, and a 3-SAT → SUBSET-SUM →
PARTITION → OCSP chain.  The paper's *strong* NP-completeness gadget
(3-SAT directly to OCSP with polynomially bounded numbers) lives in an
unavailable technical report; the chain here demonstrates ordinary
NP-hardness only — see DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .makespan import simulate
from .model import FunctionProfile, OCSPInstance
from .schedule import CompileTask, Schedule

__all__ = [
    "PartitionReduction",
    "ocsp_from_partition",
    "schedule_from_partition_subset",
    "extract_partition_subset",
    "solve_partition",
    "subset_sum_from_3sat",
    "partition_from_subset_sum",
    "ocsp_from_3sat",
]

FIRST = "__first__"
LAST = "__last__"


def _middle_name(index: int) -> str:
    return f"m{index}"


@dataclass(frozen=True)
class PartitionReduction:
    """The OCSP instance built from a PARTITION instance.

    Attributes:
        instance: the constructed OCSP instance.
        values: the original integers ``S``.
        target: ``t = sum(S) / 2``.
        optimal_makespan: ``2 * (1 + t + n)`` — achievable iff a
            partition exists.
    """

    instance: OCSPInstance
    values: Tuple[int, ...]
    target: int
    optimal_makespan: float


def ocsp_from_partition(values: Sequence[int]) -> PartitionReduction:
    """Build the paper's OCSP instance from PARTITION input ``values``.

    Raises:
        ValueError: if any value is negative or the total is odd (an odd
            total trivially has no partition, and ``t`` would not be an
            integer as the construction requires).
    """
    if any(v < 0 for v in values):
        raise ValueError("PARTITION values must be non-negative")
    total = sum(values)
    if total % 2 != 0:
        raise ValueError(
            f"sum of values is odd ({total}); no partition can exist and "
            "the construction requires an integer target"
        )
    t = total // 2
    n = len(values)

    profiles: Dict[str, FunctionProfile] = {
        FIRST: FunctionProfile(
            name=FIRST,
            compile_times=(1.0, 1.0),
            exec_times=(float(t + n), float(t + n)),
        ),
        LAST: FunctionProfile(
            name=LAST,
            compile_times=(float(t + n), float(t + n)),
            exec_times=(1.0, 1.0),
        ),
    }
    for i, s in enumerate(values):
        profiles[_middle_name(i)] = FunctionProfile(
            name=_middle_name(i),
            compile_times=(1.0, float(s + 1)),
            exec_times=(float(s + 1), 1.0),
        )

    calls = (FIRST,) + tuple(_middle_name(i) for i in range(n)) + (LAST,)
    instance = OCSPInstance(
        profiles=profiles, calls=calls, name=f"partition(n={n}, t={t})"
    )
    return PartitionReduction(
        instance=instance,
        values=tuple(values),
        target=t,
        optimal_makespan=2.0 * (1 + t + n),
    )


def schedule_from_partition_subset(
    reduction: PartitionReduction, subset: Set[int]
) -> Schedule:
    """The witness schedule for a partition subset ``X`` (by index).

    Functions in ``X`` are compiled at level 0 (``c=1``, the fast
    compile whose code executes in ``s_i + 1``); functions outside ``X``
    at level 1 (``c = s_i + 1``, code executes in 1).  Ordering:
    ``first``, middles in call order, ``last``.

    Note the paper's levels are 1-indexed; our level 0 is its level 1.
    """
    tasks: List[CompileTask] = [CompileTask(FIRST, 0)]
    for i in range(len(reduction.values)):
        level = 0 if i in subset else 1
        tasks.append(CompileTask(_middle_name(i), level))
    tasks.append(CompileTask(LAST, 0))
    return Schedule(tuple(tasks))


def verify_partition_subset(
    reduction: PartitionReduction, subset: Set[int]
) -> bool:
    """True iff ``subset`` is a valid partition (sums to the target)."""
    return sum(reduction.values[i] for i in subset) == reduction.target


def extract_partition_subset(
    reduction: PartitionReduction, schedule: Schedule
) -> Optional[Set[int]]:
    """The converse direction of the proof.

    If ``schedule`` achieves make-span ``2 * (1 + t + n)``, the set of
    middle functions compiled at the *high* level must sum to exactly
    ``t`` (machine C must work constantly except the last time-step).
    Returns that index set, or ``None`` if the schedule does not achieve
    the bound.
    """
    result = simulate(reduction.instance, schedule, validate=False)
    if result.makespan > reduction.optimal_makespan:
        return None
    high_compiled: Set[int] = set()
    for i in range(len(reduction.values)):
        level = schedule.highest_level_of(_middle_name(i))
        if level == 1:
            high_compiled.add(i)
    if sum(reduction.values[i] for i in high_compiled) != reduction.target:
        return None
    return high_compiled


def solve_partition(values: Sequence[int]) -> Optional[Set[int]]:
    """Pseudo-polynomial DP PARTITION solver (for cross-checking).

    Returns an index subset summing to ``sum(values)/2``, or ``None``.
    """
    total = sum(values)
    if total % 2 != 0:
        return None
    target = total // 2
    # layers[i] = sums reachable using the first i values.
    layers: List[Set[int]] = [{0}]
    for v in values:
        prev = layers[-1]
        layers.append(prev | {s + v for s in prev if s + v <= target})
    if target not in layers[-1]:
        return None
    subset: Set[int] = set()
    s = target
    for i in range(len(values), 0, -1):
        if s in layers[i - 1]:
            continue  # value i-1 not needed to reach s
        subset.add(i - 1)
        s -= values[i - 1]
    assert s == 0
    return subset


# ----------------------------------------------------------------------
# 3-SAT chain
# ----------------------------------------------------------------------
Clause = Tuple[int, int, int]
"""A 3-SAT clause: three non-zero ints; ``k`` means variable ``|k|``,
negative for a negated literal (DIMACS convention)."""


def subset_sum_from_3sat(clauses: Sequence[Clause]) -> Tuple[List[int], int]:
    """Classic 3-SAT → SUBSET-SUM reduction (base-10 digit construction).

    Returns ``(values, target)`` such that a subset of ``values`` sums to
    ``target`` iff the formula is satisfiable.
    """
    if not clauses:
        raise ValueError("formula must have at least one clause")
    variables = sorted({abs(lit) for clause in clauses for lit in clause})
    if any(len({abs(l) for l in clause}) != 3 for clause in clauses):
        raise ValueError("each clause needs three distinct variables")
    var_pos = {v: i for i, v in enumerate(variables)}
    n_vars = len(variables)
    n_clauses = len(clauses)
    width = n_vars + n_clauses

    def digits_to_int(digits: List[int]) -> int:
        value = 0
        for d in digits:
            value = value * 10 + d
        return value

    values: List[int] = []
    for v in variables:
        for polarity in (1, -1):
            digits = [0] * width
            digits[var_pos[v]] = 1
            for ci, clause in enumerate(clauses):
                if (polarity * v) in clause:
                    digits[n_vars + ci] = 1
            values.append(digits_to_int(digits))
    for ci in range(n_clauses):
        for _slack in range(2):  # two slack items per clause
            digits = [0] * width
            digits[n_vars + ci] = 1
            values.append(digits_to_int(digits))

    target_digits = [1] * n_vars + [3] * n_clauses
    return values, digits_to_int(target_digits)


def partition_from_subset_sum(values: Sequence[int], target: int) -> List[int]:
    """Classic SUBSET-SUM → PARTITION reduction.

    Adds two elements so the new multiset partitions evenly iff some
    subset of ``values`` sums to ``target``.
    """
    total = sum(values)
    if not 0 <= target <= total:
        raise ValueError("target must lie in [0, sum(values)]")
    return list(values) + [total + 1 - target, target + 1]


def ocsp_from_3sat(clauses: Sequence[Clause]) -> PartitionReduction:
    """3-SAT → SUBSET-SUM → PARTITION → OCSP.

    The resulting instance's ``optimal_makespan`` is achievable iff the
    formula is satisfiable.  Values are exponential in the formula size
    (ordinary NP-hardness); the paper's strong-NPC gadget is in its
    unavailable technical report.
    """
    values, target = subset_sum_from_3sat(clauses)
    partition_values = partition_from_subset_sum(values, target)
    return ocsp_from_partition(partition_values)
