"""Fast-path make-span evaluation engine.

:func:`repro.core.makespan.simulate` is the measurement component every
experiment funnels through — the limit studies (Figures 5–8), the
local-search optimality bracket, and the ablations all call it thousands
of times on the *same* instance.  Each call re-derives everything from
scratch: name-keyed dict lookups per invocation, per-function event maps,
and a full replay of the call sequence.

:class:`FastSimulator` splits that work into three tiers:

* **per-instance** (paid once in ``__init__``): function names are
  interned to dense integer ids, the call sequence becomes an id array,
  and the cost tables become id-indexed rows;
* **per-schedule** (paid per evaluation): compile-task finish times and
  per-function compile-event lists — ``O(S)`` for ``S`` tasks, which is
  tiny next to the ``N``-call trace;
* **per-call** (the replay): a tight loop over integer arrays, with the
  same fast-tail cutover the reference simulator uses once every
  compilation has finished.

On top of the full evaluation sits an **incremental mode** for local
search: :meth:`bind` caches the per-call trajectory of a baseline
schedule, and :meth:`propose` evaluates a mutated task list by replaying
only the *suffix* of calls that can observe the change.  A mutation's
earliest observable effect is the earliest compile-event finish time at
which the old and new schedules diverge (``t_min``); every call starting
before ``t_min`` behaves identically, so the replay resumes from the
first call whose start is ``>= t_min`` (found by bisection over the
cached, monotone start times).  For single-task moves late in the
schedule this drops the per-move cost from ``O(N)`` to ``O(suffix)``.

Exactness contract: every quantity this engine produces — make-span,
bubbles, execution totals, per-level call histograms, per-call and
per-task timelines — is **bitwise identical** to the reference
:func:`~repro.core.makespan.simulate`, including after incremental
updates.  The engine performs the same floating-point operations in the
same order; ``tests/test_fast_simulator.py`` enforces the contract
differentially on hypothesis-generated instances.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left
from itertools import accumulate
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .makespan import (
    CallTiming,
    DueDateObjectives,
    DueDateTable,
    MakespanResult,
    TaskTiming,
    objectives_from_timeline,
    validate_for_simulation,
)
from .model import OCSPInstance
from .schedule import CompileTask, Schedule, ScheduleError

__all__ = ["FastSimulator"]

TaskSeq = Union[Schedule, Sequence[CompileTask]]

_INF = math.inf


class _Prep:
    """Per-schedule precomputation: task timings and compile events."""

    __slots__ = (
        "tasks",
        "starts",
        "finishes",
        "threads",
        "events",
        "gev_fins",
        "gev_fids",
        "gev_levels",
        "first_fin",
        "all_done",
        "final_level",
        "final_exec",
        "missing",
    )

    def __init__(self) -> None:
        self.tasks: Tuple[CompileTask, ...] = ()
        self.starts: List[float] = []
        self.finishes: List[float] = []
        self.threads: List[int] = []
        self.events: List[List[Tuple[float, int]]] = []
        # The same events flattened globally, sorted by finish time —
        # the replay applies them eagerly as the clock crosses them.
        self.gev_fins: List[float] = []
        self.gev_fids: List[int] = []
        self.gev_levels: List[int] = []
        self.first_fin: List[float] = []
        self.all_done = 0.0
        self.final_level: List[int] = []
        self.final_exec: List[float] = []
        self.missing: Optional[str] = None


class FastSimulator:
    """Reusable make-span evaluator for one instance.

    Args:
        instance: the OCSP instance every evaluation runs against.
        compile_threads: compiler-thread count (fixed per engine; build
            one engine per thread count, they share nothing mutable).
        preinstalled: functions whose code at the given level exists
            from t = 0 (see :func:`~repro.core.makespan.simulate`).
        metrics: optional
            :class:`repro.observability.MetricsRegistry` (also settable
            later via the public ``metrics`` attribute); records the
            deterministic work counters ``fastsim.prepares`` /
            ``tasks_prepared`` / ``evaluations`` / ``binds`` /
            ``proposals`` / ``commits`` / ``replays`` /
            ``calls_replayed`` / ``span_replays`` /
            ``span_calls_replayed``.  All increments happen at call
            boundaries (never inside the replay loops), so a detached
            registry (``None``, the default) costs one branch per
            method call and counting never changes the numbers.

    Raises:
        ValueError: if ``compile_threads < 1`` or a preinstalled level
            is out of range.
    """

    def __init__(
        self,
        instance: OCSPInstance,
        compile_threads: int = 1,
        preinstalled: Optional[Dict[str, int]] = None,
        metrics=None,
    ) -> None:
        if compile_threads < 1:
            raise ValueError(
                f"compile_threads must be >= 1, got {compile_threads}"
            )
        self._instance = instance
        self._compile_threads = compile_threads
        self._preinstalled = dict(preinstalled or {})
        self.metrics = metrics

        # ---- per-instance precomputation -----------------------------
        self._fnames: List[str] = list(instance.profiles)
        self._fid_of: Dict[str, int] = {
            name: fid for fid, name in enumerate(self._fnames)
        }
        fid_of = self._fid_of
        self._num_fids = len(self._fnames)
        self._calls_fid: List[int] = [fid_of[f] for f in instance.calls]
        self._exec_rows: List[Tuple[float, ...]] = [
            instance.profiles[name].exec_times for name in self._fnames
        ]
        self._compile_rows: List[Tuple[float, ...]] = [
            instance.profiles[name].compile_times for name in self._fnames
        ]
        # Distinct called fids in first-call order (for coverage checks).
        self._called_fids: List[int] = [
            fid_of[f] for f in instance.called_functions
        ]
        # Trace positions of each function's first call, ascending.
        # Bubbles can only occur there, and between consecutive first
        # calls (and compile-event crossings) the replay clock is a pure
        # sequential sum — the segmented replay exploits exactly this.
        first_pos: List[int] = []
        seen = [False] * self._num_fids
        for index, fid in enumerate(self._calls_fid):
            if not seen[fid]:
                seen[fid] = True
                first_pos.append(index)
        self._first_pos = first_pos
        self._pre_events: List[Tuple[Tuple[float, int], ...]] = [
            () for _ in range(self._num_fids)
        ]
        for fname, level in self._preinstalled.items():
            prof = instance.profiles.get(fname)
            if prof is None or not 0 <= level < prof.num_levels:
                raise ValueError(
                    f"preinstalled level {level} invalid for {fname!r}"
                )
            self._pre_events[fid_of[fname]] = ((0.0, level),)

        # ---- incremental baseline state ------------------------------
        self._b_prep: Optional[_Prep] = None
        self._b_start: List[float] = []
        self._b_finish: List[float] = []
        self._b_level: List[int] = []
        self._b_cum_exec: List[float] = []
        self._b_cum_bubble: List[float] = []
        self._b_makespan = 0.0
        self._cand: Optional[Tuple[_Prep, int, float]] = None

    # ------------------------------------------------------------------
    # Per-schedule precomputation
    # ------------------------------------------------------------------
    @staticmethod
    def _as_tasks(schedule: TaskSeq) -> Tuple[CompileTask, ...]:
        tasks = getattr(schedule, "tasks", schedule)
        return tuple(tasks)

    def _prepare(
        self,
        schedule: TaskSeq,
        release_times: Optional[Sequence[float]] = None,
        task_compile_times: Optional[Sequence[float]] = None,
        task_installs: Optional[Sequence[bool]] = None,
    ) -> _Prep:
        """Compute task timings and per-function event lists: ``O(S)``.

        Replicates the reference FIFO thread assignment bit-for-bit
        (ties broken by thread id) so finish times are identical.  With
        ``release_times``, task ``i`` cannot start before
        ``release_times[i]``; ``task_compile_times`` / ``task_installs``
        are the fault layer's per-task overrides (see
        :func:`~repro.core.makespan.simulate`).
        """
        tasks = self._as_tasks(schedule)
        if release_times is not None and len(release_times) != len(tasks):
            raise ValueError(
                f"release_times has {len(release_times)} entries for "
                f"{len(tasks)} tasks"
            )
        if task_compile_times is not None and len(task_compile_times) != len(
            tasks
        ):
            raise ValueError(
                f"task_compile_times has {len(task_compile_times)} entries "
                f"for {len(tasks)} tasks"
            )
        if task_installs is not None and len(task_installs) != len(tasks):
            raise ValueError(
                f"task_installs has {len(task_installs)} entries for "
                f"{len(tasks)} tasks"
            )
        prep = _Prep()
        prep.tasks = tasks
        fid_of = self._fid_of
        compile_rows = self._compile_rows
        starts = prep.starts
        finishes = prep.finishes
        threads = prep.threads
        if self._compile_threads == 1:
            t = 0.0
            for i, task in enumerate(tasks):
                c = (
                    task_compile_times[i]
                    if task_compile_times is not None
                    else compile_rows[fid_of[task.function]][task.level]
                )
                if release_times is not None:
                    rel = release_times[i]
                    if t < rel:
                        t = rel
                starts.append(t)
                t += c
                finishes.append(t)
                threads.append(0)
        else:
            free_at = [(0.0, tid) for tid in range(self._compile_threads)]
            heapq.heapify(free_at)
            for i, task in enumerate(tasks):
                c = (
                    task_compile_times[i]
                    if task_compile_times is not None
                    else compile_rows[fid_of[task.function]][task.level]
                )
                start, tid = heapq.heappop(free_at)
                if release_times is not None:
                    rel = release_times[i]
                    if start < rel:
                        start = rel
                starts.append(start)
                finishes.append(start + c)
                threads.append(tid)
                heapq.heappush(free_at, (start + c, tid))

        events: List[List[Tuple[float, int]]] = [
            list(pre) for pre in self._pre_events
        ]
        for i, (task, finish) in enumerate(zip(tasks, finishes)):
            if task_installs is not None and not task_installs[i]:
                continue  # failed attempt: thread time, no code
            events[fid_of[task.function]].append((finish, task.level))
        prep.events = events

        all_done = 0.0
        final_level = [-1] * self._num_fids
        final_exec = [0.0] * self._num_fids
        first_fin = [0.0] * self._num_fids
        exec_rows = self._exec_rows
        flat: List[Tuple[float, int, int]] = []
        for fid, ev in enumerate(events):
            if not ev:
                continue
            ev.sort()
            first_fin[fid] = ev[0][0]
            last = ev[-1][0]
            if last > all_done:
                all_done = last
            best = -1
            for finish, level in ev:
                flat.append((finish, fid, level))
                if level > best:
                    best = level
            final_level[fid] = best
            final_exec[fid] = exec_rows[fid][best]
        flat.sort()
        prep.gev_fins = [g[0] for g in flat]
        prep.gev_fids = [g[1] for g in flat]
        prep.gev_levels = [g[2] for g in flat]
        prep.first_fin = first_fin
        prep.all_done = all_done
        prep.final_level = final_level
        prep.final_exec = final_exec
        for fid in self._called_fids:
            if not events[fid]:
                prep.missing = self._fnames[fid]
                break
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("fastsim.prepares").inc()
            metrics.counter("fastsim.tasks_prepared").inc(len(tasks))
        return prep

    def _check_covered(self, prep: _Prep) -> None:
        if prep.missing is not None:
            raise ScheduleError(
                f"function {prep.missing!r} is never compiled"
            )

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _replay(
        self, prep: _Prep, i0: int, t0: float, exec0: float, bubble0: float
    ):
        """Full-bookkeeping replay of calls ``i0..N-1`` from state
        ``(t0, exec0, bubble0)``.

        Returns ``(starts, finishes, levels, cum_exec, cum_bubble)``
        suffix arrays; the final totals are the arrays' last entries.
        """
        self._check_covered(prep)
        calls = self._calls_fid
        n = len(calls)
        exec_rows = self._exec_rows
        gev_fins = prep.gev_fins
        gev_fids = prep.gev_fids
        gev_levels = prep.gev_levels
        num_events = len(gev_fins)
        first_fin = prep.first_fin
        first_pos = self._first_pos
        num_firsts = len(first_pos)
        bests = [-1] * self._num_fids
        cur_exec = [0.0] * self._num_fids
        exec_of = cur_exec.__getitem__
        level_of = bests.__getitem__
        starts_out: List[float] = []
        fins_out: List[float] = []
        lvls_out: List[int] = []
        cum_exec: List[float] = []
        cum_bubble: List[float] = []
        t = t0
        total_exec = exec0
        total_bubble = bubble0
        i = i0
        k = 0
        fb = bisect_left(first_pos, i0)
        while i < n:
            while k < num_events and gev_fins[k] <= t:
                fid = gev_fids[k]
                level = gev_levels[k]
                if level > bests[fid]:
                    bests[fid] = level
                    cur_exec[fid] = exec_rows[fid][level]
                k += 1
            if fb < num_firsts and first_pos[fb] == i:
                # A function's first call: the only place a bubble can
                # appear, and the only place the clock can jump forward.
                fid = calls[i]
                fr = first_fin[fid]
                if t < fr:
                    start = fr
                    while k < num_events and gev_fins[k] <= start:
                        g = gev_fids[k]
                        level = gev_levels[k]
                        if level > bests[g]:
                            bests[g] = level
                            cur_exec[g] = exec_rows[g][level]
                        k += 1
                else:
                    start = t
                e = cur_exec[fid]
                finish = start + e
                total_bubble += start - t
                total_exec += e
                starts_out.append(start)
                fins_out.append(finish)
                lvls_out.append(bests[fid])
                cum_exec.append(total_exec)
                cum_bubble.append(total_bubble)
                t = finish
                i += 1
                fb += 1
                continue
            # Bulk segment: every call up to the next first-call boundary
            # runs back-to-back (start == clock) at a constant level, so
            # the clock is a sequential sum — C-speed via accumulate,
            # performing the reference's exact float additions.  (The
            # reference also adds a 0.0 bubble per call; ``x + 0.0 == x``
            # bitwise for the non-negative totals here, so skipping those
            # adds preserves exactness.)  While compile events are still
            # pending, accumulate in doubling (galloping) chunks so a
            # crossing mid-segment wastes at most one chunk of work.
            b = first_pos[fb] if fb < num_firsts else n
            step = 64 if k < num_events else b - i
            while i < b:
                j = b if b - i <= step else i + step
                arr = list(
                    accumulate(map(exec_of, calls[i:j]), initial=t)
                )
                crossed = k < num_events and gev_fins[k] <= arr[-1]
                if crossed:
                    # Calls at or after the crossing may change level:
                    # process the unaffected prefix, then re-enter the
                    # outer loop to apply the event.
                    p = bisect_left(arr, gev_fins[k])
                else:
                    p = len(arr) - 1
                if p:
                    starts_out.extend(arr[:p])
                    fins_out.extend(arr[1 : p + 1])
                    lvls_out.extend(map(level_of, calls[i : i + p]))
                    ce = list(
                        accumulate(
                            map(exec_of, calls[i : i + p]),
                            initial=total_exec,
                        )
                    )
                    cum_exec.extend(ce[1:])
                    total_exec = ce[-1]
                    cum_bubble.extend([total_bubble] * p)
                    t = arr[p]
                    i += p
                if crossed:
                    break
                step <<= 1
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("fastsim.replays").inc()
            metrics.counter("fastsim.calls_replayed").inc(n - i0)
        return starts_out, fins_out, lvls_out, cum_exec, cum_bubble

    def _replay_span(
        self, prep: _Prep, i0: int, t0: float, cutoff: float
    ) -> float:
        """Make-span-only replay of calls ``i0..N-1``.

        Returns ``math.inf`` once the running clock exceeds ``cutoff``
        (checked per segment) — the clock is monotone, so the final
        make-span is then guaranteed to exceed it too.
        """
        span, reached = self._replay_span_impl(prep, i0, t0, cutoff)
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("fastsim.span_replays").inc()
            metrics.counter("fastsim.span_calls_replayed").inc(
                reached - i0
            )
        return span

    def _replay_span_impl(
        self, prep: _Prep, i0: int, t0: float, cutoff: float
    ) -> Tuple[float, int]:
        """:meth:`_replay_span` body; also returns the call index reached
        (``n``, or the cutoff bail-out position) for work accounting."""
        self._check_covered(prep)
        calls = self._calls_fid
        n = len(calls)
        exec_rows = self._exec_rows
        gev_fins = prep.gev_fins
        gev_fids = prep.gev_fids
        gev_levels = prep.gev_levels
        num_events = len(gev_fins)
        first_fin = prep.first_fin
        first_pos = self._first_pos
        num_firsts = len(first_pos)
        bests = [-1] * self._num_fids
        cur_exec = [0.0] * self._num_fids
        exec_of = cur_exec.__getitem__
        t = t0
        i = i0
        k = 0
        fb = bisect_left(first_pos, i0)
        while i < n:
            while k < num_events and gev_fins[k] <= t:
                fid = gev_fids[k]
                level = gev_levels[k]
                if level > bests[fid]:
                    bests[fid] = level
                    cur_exec[fid] = exec_rows[fid][level]
                k += 1
            if fb < num_firsts and first_pos[fb] == i:
                fid = calls[i]
                fr = first_fin[fid]
                if t < fr:
                    start = fr
                    while k < num_events and gev_fins[k] <= start:
                        g = gev_fids[k]
                        level = gev_levels[k]
                        if level > bests[g]:
                            bests[g] = level
                            cur_exec[g] = exec_rows[g][level]
                        k += 1
                else:
                    start = t
                t = start + cur_exec[fid]
                i += 1
                fb += 1
                if t > cutoff:
                    return _INF, i
                continue
            b = first_pos[fb] if fb < num_firsts else n
            if k >= num_events:
                # No pending compile events: the whole stretch to the
                # next boundary is one sequential sum.  ``sum(it, t)``
                # performs the identical left-associated float additions
                # at C speed; the clock is monotone, so checking the
                # cutoff once at the stretch end is equivalent.
                t = sum(map(exec_of, calls[i:b]), t)
                i = b
                if t > cutoff:
                    return _INF, i
                continue
            step = 128
            while i < b:
                j = b if b - i <= step else i + step
                seg = calls[i:j]
                end = sum(map(exec_of, seg), t)
                if gev_fins[k] <= end:
                    # The event lands in this chunk: rebuild the prefix
                    # sums (same additions) to locate the crossing call.
                    arr = list(accumulate(map(exec_of, seg), initial=t))
                    p = bisect_left(arr, gev_fins[k])
                    t = arr[p]
                    i += p
                    break
                t = end
                i = j
                if t > cutoff:
                    return _INF, i
                step <<= 1
            if t > cutoff:
                return _INF, i
        return t, i

    # ------------------------------------------------------------------
    # Full (stateless) evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        schedule: TaskSeq,
        record_timeline: bool = False,
        validate: bool = False,
        release_times: Optional[Sequence[float]] = None,
        task_compile_times: Optional[Sequence[float]] = None,
        task_installs: Optional[Sequence[bool]] = None,
        tracer=None,
    ) -> MakespanResult:
        """Evaluate ``schedule`` from scratch; exact :func:`simulate` twin.

        Unlike the reference, validation defaults to off — the engine is
        built for tight loops whose callers guarantee validity.
        ``release_times``, ``task_compile_times``/``task_installs``
        (the fault layer's per-task overrides), and ``tracer`` mirror
        :func:`~repro.core.makespan.simulate`; tracing never changes the
        numbers.
        """
        if self.metrics is not None:
            self.metrics.counter("fastsim.evaluations").inc()
        prep = self._prepare(
            schedule, release_times, task_compile_times, task_installs
        )
        if validate:
            validate_for_simulation(
                self._instance, Schedule(prep.tasks), self._preinstalled
            )
        arrays = self._replay(prep, 0, 0.0, 0.0, 0.0)
        if tracer is None:
            return self._assemble(prep, arrays, record_timeline)
        from repro.observability.instrument import trace_makespan_result

        result = self._assemble(prep, arrays, True)
        trace_makespan_result(tracer, result)
        if record_timeline:
            return result
        return MakespanResult(
            makespan=result.makespan,
            compile_end=result.compile_end,
            total_bubble_time=result.total_bubble_time,
            total_exec_time=result.total_exec_time,
            calls_at_level=result.calls_at_level,
        )

    def due_objectives(
        self, schedule: TaskSeq, due: DueDateTable, validate: bool = False
    ) -> DueDateObjectives:
        """Due-date objectives of one evaluation (timeline-recorded).

        Bitwise identical to the reference engine's
        :func:`~repro.core.makespan.due_date_objectives` — the timeline
        is exact and the aggregation order is canonical.
        """
        result = self.evaluate(schedule, record_timeline=True, validate=validate)
        return objectives_from_timeline(result, due)

    def _assemble(
        self, prep: _Prep, arrays, record_timeline: bool
    ) -> MakespanResult:
        starts, finishes, levels, cum_exec, cum_bubble = arrays
        makespan = finishes[-1] if finishes else 0.0
        hist: Dict[int, int] = {}
        for level in levels:
            hist[level] = hist.get(level, 0) + 1
        task_timings: Optional[Tuple[TaskTiming, ...]] = None
        call_timings: Optional[Tuple[CallTiming, ...]] = None
        if record_timeline:
            task_timings = tuple(
                TaskTiming(
                    function=task.function,
                    level=task.level,
                    start=s,
                    finish=f,
                    thread=tid,
                )
                for task, s, f, tid in zip(
                    prep.tasks, prep.starts, prep.finishes, prep.threads
                )
            )
            prev = 0.0
            calls: List[CallTiming] = []
            for fid, s, f, level in zip(
                self._calls_fid, starts, finishes, levels
            ):
                calls.append(
                    CallTiming(
                        function=self._fnames[fid],
                        level=level,
                        start=s,
                        finish=f,
                        bubble=s - prev,
                    )
                )
                prev = f
            call_timings = tuple(calls)
        return MakespanResult(
            makespan=makespan,
            compile_end=prep.finishes[-1] if prep.finishes else 0.0,
            total_bubble_time=cum_bubble[-1] if cum_bubble else 0.0,
            total_exec_time=cum_exec[-1] if cum_exec else 0.0,
            calls_at_level=hist,
            task_timings=task_timings,
            call_timings=call_timings,
        )

    # ------------------------------------------------------------------
    # Streaming statistics (IAR's trace pass)
    # ------------------------------------------------------------------
    def trace_stats(
        self,
        schedule: TaskSeq,
        before_time: Optional[float] = None,
        after_time: Optional[float] = None,
    ):
        """One pass over the execution under ``schedule``.

        Returns ``(first_call_start, calls_before, calls_after, exec_end)``
        with the exact semantics (and floats) of
        :func:`repro.core.iar._trace_stats` / :func:`iter_calls`:
        ``calls_before[f]`` counts invocations starting strictly before
        ``before_time`` and ``calls_after[f]`` those starting at or after
        ``after_time``.
        """
        prep = self._prepare(schedule)
        self._check_covered(prep)
        calls = self._calls_fid
        n = len(calls)
        exec_rows = self._exec_rows
        events = prep.events
        all_done = prep.all_done
        idx = [0] * self._num_fids
        bests = [-1] * self._num_fids
        first_start: List[Optional[float]] = [None] * self._num_fids
        before_n = [0] * self._num_fids
        after_n = [0] * self._num_fids
        count_before = before_time is not None
        count_after = after_time is not None
        t = 0.0
        i = 0
        while i < n:
            if t >= all_done:
                final_exec = prep.final_exec
                for fid in calls[i:]:
                    if first_start[fid] is None:
                        first_start[fid] = t
                    if count_before and t < before_time:
                        before_n[fid] += 1
                    if count_after and t >= after_time:
                        after_n[fid] += 1
                    t += final_exec[fid]
                break
            fid = calls[i]
            ev = events[fid]
            first_ready = ev[0][0]
            start = t if t >= first_ready else first_ready
            j = idx[fid]
            best = bests[fid]
            m = len(ev)
            while j < m and ev[j][0] <= start:
                level = ev[j][1]
                if level > best:
                    best = level
                j += 1
            idx[fid] = j
            bests[fid] = best
            if first_start[fid] is None:
                first_start[fid] = start
            if count_before and start < before_time:
                before_n[fid] += 1
            if count_after and start >= after_time:
                after_n[fid] += 1
            t = start + exec_rows[fid][best]
            i += 1
        fnames = self._fnames
        firsts = {
            fnames[fid]: s
            for fid, s in enumerate(first_start)
            if s is not None
        }
        before = {
            fnames[fid]: c for fid, c in enumerate(before_n) if c
        }
        after = {fnames[fid]: c for fid, c in enumerate(after_n) if c}
        return firsts, before, after, t

    # ------------------------------------------------------------------
    # Incremental mode
    # ------------------------------------------------------------------
    def bind(self, schedule: TaskSeq, validate: bool = False) -> float:
        """Adopt ``schedule`` as the incremental baseline.

        Runs one full evaluation, caching the per-call trajectory
        (starts, finishes, levels, running totals) that later
        :meth:`propose` calls resume from.  Returns the make-span.
        """
        if self.metrics is not None:
            self.metrics.counter("fastsim.binds").inc()
        prep = self._prepare(schedule)
        if validate:
            validate_for_simulation(
                self._instance, Schedule(prep.tasks), self._preinstalled
            )
        arrays = self._replay(prep, 0, 0.0, 0.0, 0.0)
        self._install(prep, 0, arrays)
        return self._b_makespan

    @property
    def baseline_makespan(self) -> float:
        """Make-span of the bound baseline schedule."""
        self._require_bound()
        return self._b_makespan

    @property
    def baseline_tasks(self) -> Tuple[CompileTask, ...]:
        """Tasks of the bound baseline schedule."""
        self._require_bound()
        return self._b_prep.tasks  # type: ignore[union-attr]

    def _require_bound(self) -> None:
        if self._b_prep is None:
            raise RuntimeError("no baseline bound; call bind() first")

    def _divergence_time(self, old: _Prep, new: _Prep) -> float:
        """Earliest compile-event finish at which the schedules differ.

        Per-function event lists are sorted by finish time, so the first
        position where old and new disagree bounds every differing event
        from below; the minimum over functions is ``t_min``.  Returns
        ``inf`` when the event sets are identical (the mutation cannot
        affect execution at all).
        """
        t_min = _INF
        for ev_old, ev_new in zip(old.events, new.events):
            if ev_old == ev_new:
                continue
            shorter = min(len(ev_old), len(ev_new))
            local = _INF
            for k in range(shorter):
                if ev_old[k] != ev_new[k]:
                    local = min(ev_old[k][0], ev_new[k][0])
                    break
            else:
                if len(ev_old) > shorter:
                    local = ev_old[shorter][0]
                elif len(ev_new) > shorter:
                    local = ev_new[shorter][0]
            if local < t_min:
                t_min = local
        return t_min

    def _resume_point(self, prep: _Prep) -> Tuple[int, float]:
        """``(i0, t0)``: first call that may observe ``prep``'s changes
        and the (unchanged) clock right before it."""
        t_min = self._divergence_time(self._b_prep, prep)  # type: ignore[arg-type]
        if t_min == _INF:
            n = len(self._calls_fid)
            return n, self._b_finish[n - 1] if n else 0.0
        i0 = bisect_left(self._b_start, t_min)
        t0 = self._b_finish[i0 - 1] if i0 > 0 else 0.0
        return i0, t0

    def propose(
        self, tasks: TaskSeq, cutoff: Optional[float] = None
    ) -> float:
        """Make-span of a candidate mutation of the baseline.

        Replays only the call suffix the mutation can affect.  With
        ``cutoff`` set, returns ``math.inf`` as soon as the candidate is
        provably worse than the cutoff (hill-climbing's reject path).
        The candidate is remembered; :meth:`commit` adopts it.
        """
        self._require_bound()
        if self.metrics is not None:
            self.metrics.counter("fastsim.proposals").inc()
        prep = self._prepare(tasks)
        i0, t0 = self._resume_point(prep)
        self._cand = (prep, i0, t0)
        if i0 >= len(self._calls_fid):
            return self._b_makespan
        span = self._replay_span(
            prep, i0, t0, cutoff if cutoff is not None else _INF
        )
        return span

    def commit(self) -> float:
        """Adopt the last proposed candidate as the new baseline.

        Re-runs the suffix with full bookkeeping and splices it into the
        cached trajectory — ``O(suffix)``, never ``O(N)``.  Returns the
        new baseline make-span.
        """
        self._require_bound()
        if self._cand is None:
            raise RuntimeError("no pending candidate; call propose() first")
        if self.metrics is not None:
            self.metrics.counter("fastsim.commits").inc()
        prep, i0, t0 = self._cand
        self._cand = None
        exec0 = self._b_cum_exec[i0 - 1] if i0 > 0 else 0.0
        bubble0 = self._b_cum_bubble[i0 - 1] if i0 > 0 else 0.0
        arrays = self._replay(prep, i0, t0, exec0, bubble0)
        self._install(prep, i0, arrays)
        return self._b_makespan

    def _install(self, prep: _Prep, i0: int, arrays) -> None:
        starts, finishes, levels, cum_exec, cum_bubble = arrays
        if i0 == 0:
            self._b_start = starts
            self._b_finish = finishes
            self._b_level = levels
            self._b_cum_exec = cum_exec
            self._b_cum_bubble = cum_bubble
        else:
            self._b_start[i0:] = starts
            self._b_finish[i0:] = finishes
            self._b_level[i0:] = levels
            self._b_cum_exec[i0:] = cum_exec
            self._b_cum_bubble[i0:] = cum_bubble
        self._b_prep = prep
        self._b_makespan = self._b_finish[-1] if self._b_finish else 0.0

    def preview(
        self, tasks: TaskSeq, record_timeline: bool = False
    ) -> MakespanResult:
        """Full result of a candidate mutation, without committing it.

        Incremental twin of :meth:`evaluate`: resumes from the cached
        prefix and stitches prefix + replayed suffix into a complete
        :class:`MakespanResult` (bitwise equal to a from-scratch run).
        """
        self._require_bound()
        prep = self._prepare(tasks)
        i0, t0 = self._resume_point(prep)
        self._cand = None  # previews do not arm commit()
        exec0 = self._b_cum_exec[i0 - 1] if i0 > 0 else 0.0
        bubble0 = self._b_cum_bubble[i0 - 1] if i0 > 0 else 0.0
        suffix = self._replay(prep, i0, t0, exec0, bubble0)
        starts, finishes, levels, cum_exec, cum_bubble = suffix
        full = (
            self._b_start[:i0] + starts,
            self._b_finish[:i0] + finishes,
            self._b_level[:i0] + levels,
            self._b_cum_exec[:i0] + cum_exec,
            self._b_cum_bubble[:i0] + cum_bubble,
        )
        return self._assemble(prep, full, record_timeline)

    def result(self, record_timeline: bool = False) -> MakespanResult:
        """Full :class:`MakespanResult` of the bound baseline."""
        self._require_bound()
        arrays = (
            self._b_start,
            self._b_finish,
            self._b_level,
            self._b_cum_exec,
            self._b_cum_bubble,
        )
        return self._assemble(self._b_prep, arrays, record_timeline)
