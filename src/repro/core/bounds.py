"""Lower bounds on the minimum make-span (Section 5.2).

The paper's bound: the make-span cannot be smaller than the sum of the
shortest possible execution time of each invocation, i.e. every call
running at its function's highest compilation level:

    LB = sum_{i=1..N} e[f_i][K_{f_i}]

where ``K_f`` is the highest level available for ``f``.  We additionally
provide a slightly tighter *compile-aware* refinement used for ablation:
execution cannot start before the cheapest possible compilation of the
first called function finishes, so that latency can be added to the
pure-execution bound.
"""

from __future__ import annotations

from .model import OCSPInstance

__all__ = [
    "lower_bound",
    "compile_aware_lower_bound",
    "warmup_aware_lower_bound",
]


def lower_bound(instance: OCSPInstance) -> float:
    """The paper's lower bound: every call at the highest level.

    This is what Figures 5, 6 and 8 normalize against.
    """
    profiles = instance.profiles
    total = 0.0
    for fname in instance.calls:
        total += profiles[fname].exec_times[-1]
    return total


def compile_aware_lower_bound(instance: OCSPInstance) -> float:
    """Refinement: add the unavoidable initial compile latency.

    The first invocation cannot start before its function's cheapest
    compilation (level 0) completes, and no execution overlaps that
    initial compile on the execution thread.  This dominates
    :func:`lower_bound` and stays a valid lower bound on the minimum
    make-span.
    """
    base = lower_bound(instance)
    if not instance.calls:
        return base
    first = instance.calls[0]
    return base + instance.profiles[first].compile_times[0]


def warmup_aware_lower_bound(instance: OCSPInstance) -> float:
    """A tighter bound for the single-compile-thread case (extension).

    For any position ``k``, every function whose *first* invocation is
    at or before ``k`` must have finished its first compilation before
    its own first call, hence before call ``k`` ends its wait.  With
    one compiler thread those compilations serialize, so

        start(call k) >= sum over f in F_k of c[f][0]

    where ``F_k`` is the set of functions first-called at positions
    ``<= k`` and ``c[f][0]`` is the cheapest compile.  Adding the
    fastest possible execution of the remaining calls:

        makespan >= max over k of ( sum_{f in F_k} c[f][0]
                                    + sum_{i >= k} e_top[f_i] )

    This dominates both :func:`lower_bound` (the ``k = 0`` term) and,
    when the first call opens the sequence, the compile-aware bound.
    It is valid only for ``compile_threads == 1`` — with more threads
    the warmup compiles overlap.  Computed in O(N).
    """
    calls = instance.calls
    if not calls:
        return 0.0
    profiles = instance.profiles
    # exec_tail[k] = fastest execution of calls k..N-1.
    tail = 0.0
    exec_tail = [0.0] * (len(calls) + 1)
    for i in range(len(calls) - 1, -1, -1):
        tail += profiles[calls[i]].exec_times[-1]
        exec_tail[i] = tail

    best = exec_tail[0]
    seen = set()
    compile_prefix = 0.0
    for k, fname in enumerate(calls):
        if fname not in seen:
            seen.add(fname)
            compile_prefix += profiles[fname].compile_times[0]
        candidate = compile_prefix + exec_tail[k]
        if candidate > best:
            best = candidate
    return best
