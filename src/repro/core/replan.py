"""Periodic replanning: the IAR extension Section 8 asks for.

"Some ways to extend the IAR algorithm to accommodate the variations in
execution times will help its practical usage."  This module implements
the natural such extension: split the run into segments; before each
segment, re-run IAR on the *remaining* predicted sequence with the
estimates corrected by what has been observed so far, carrying over the
code already compiled.

Mechanics:

* each segment is planned against the *remaining* calls, with functions
  scheduled by earlier segments treated as installed: their profile is
  restricted to the levels at or above the installed one and the
  installed level's compile time is zeroed — IAR then treats it like an
  interpreter-style free base tier;
* estimates: functions *invoked* in earlier segments reveal their true
  execution times; functions *compiled* reveal their true compile
  times; everything else keeps the noisy estimate;
* **rolling commit**: at each boundary, only the compile tasks that
  have already *started* are kept (a runtime cannot retract work in
  flight); everything still queued is replaced by the better-informed
  plan.  The final schedule is evaluated on one continuous timeline.

Measured behaviour (``benchmarks/bench_replan.py``): on the benchmark
suite, each replanning round recovers more of the noisy-plan-vs-oracle
loss (most of it by 8 segments); on very short traces over-frequent
replanning can thrash, because early badly-informed commits lock in
before observations accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .bounds import lower_bound
from .iar import IARParams, iar
from .makespan import iter_calls, simulate
from .model import FunctionProfile, OCSPInstance
from .online import estimate_instance
from .schedule import Schedule

__all__ = ["ReplanResult", "replan_iar"]


@dataclass(frozen=True)
class ReplanResult:
    """Outcome of a replanned run.

    Attributes:
        makespan: total make-span across all segments.
        one_shot_makespan: make-span of planning once on the same noisy
            estimates (no replanning) — the baseline this improves on.
        oracle_makespan: IAR with perfect information.
        lower_bound: exec-only bound.
        segments: number of planning segments used.
    """

    makespan: float
    one_shot_makespan: float
    oracle_makespan: float
    lower_bound: float
    segments: int

    @property
    def recovered(self) -> float:
        """Fraction of the one-shot-vs-oracle loss that replanning
        recovered (1.0 = all of it; 0 = none; can be negative)."""
        loss = self.one_shot_makespan - self.oracle_makespan
        if loss <= 0:
            return 0.0
        return (self.one_shot_makespan - self.makespan) / loss


def _restrict_for_installed(
    profiles: Dict[str, FunctionProfile], installed: Dict[str, int]
) -> Dict[str, FunctionProfile]:
    """Installed functions keep only levels >= installed, the installed
    level's compile becoming free."""
    out: Dict[str, FunctionProfile] = {}
    for fname, prof in profiles.items():
        level = installed.get(fname)
        if level is None:
            out[fname] = prof
            continue
        compile_times = (0.0,) + prof.compile_times[level + 1 :]
        exec_times = prof.exec_times[level:]
        out[fname] = FunctionProfile(
            name=fname, compile_times=compile_times, exec_times=exec_times
        )
    return out


def _blend_estimates(
    noisy: OCSPInstance,
    truth: OCSPInstance,
    seen_exec: set,
    seen_compile: set,
) -> Dict[str, FunctionProfile]:
    """Replace estimate components with observed truth."""
    blended: Dict[str, FunctionProfile] = {}
    for fname, est in noisy.profiles.items():
        true_prof = truth.profiles[fname]
        compile_times = (
            true_prof.compile_times if fname in seen_compile else est.compile_times
        )
        exec_times = (
            true_prof.exec_times if fname in seen_exec else est.exec_times
        )
        blended[fname] = FunctionProfile(
            name=fname,
            compile_times=tuple(compile_times),
            exec_times=tuple(exec_times),
        )
    return blended


def replan_iar(
    true_instance: OCSPInstance,
    time_error: float = 0.5,
    segments: int = 4,
    seed: int = 0,
    params: IARParams = IARParams(),
) -> ReplanResult:
    """Run with periodic replanning against a noisy initial estimate.

    Args:
        true_instance: the actual workload.
        time_error: relative error of the initial time estimates.
        segments: number of planning segments (1 = one-shot planning).
        seed: noise seed.
        params: IAR knobs.

    Raises:
        ValueError: for ``segments < 1``.
    """
    if segments < 1:
        raise ValueError("segments must be >= 1")
    noisy = estimate_instance(true_instance, time_error, seed=seed)
    calls = true_instance.calls
    n = len(calls)
    boundaries = [round(n * k / segments) for k in range(segments + 1)]

    seen_exec: set = set()
    committed: List[Tuple[str, int]] = []

    for k in range(segments):
        remaining = calls[boundaries[k] :]
        if not remaining:
            break
        installed: Dict[str, int] = {}
        for fname, level in committed:
            if level > installed.get(fname, -1):
                installed[fname] = level
        seen_compile = set(installed)

        # Plan for ALL remaining calls — the segment boundary is where
        # beliefs update and uncommitted work can be replaced, not
        # where the planning horizon ends.
        beliefs = _blend_estimates(noisy, true_instance, seen_exec, seen_compile)
        belief_profiles = _restrict_for_installed(beliefs, installed)
        plan_view = OCSPInstance(
            profiles=belief_profiles, calls=remaining, name="replan-view"
        )
        plan = iar(plan_view, params).schedule

        # Translate restricted levels back to true levels; drop tasks
        # that do not exceed what is already committed.
        translated: List[Tuple[str, int]] = []
        highest = dict(installed)
        for task in plan:
            if task.function in installed:
                if task.level == 0:
                    continue  # "compile" of the already-installed tier
                true_level = task.level + installed[task.function]
            else:
                true_level = task.level
            if true_level > highest.get(task.function, -1):
                translated.append((task.function, true_level))
                highest[task.function] = true_level

        candidate = committed + translated
        seen_exec.update(calls[boundaries[k] : boundaries[k + 1]])
        if k == segments - 1:
            committed = candidate
            break

        # Rolling commit: only tasks that have STARTED by the next
        # boundary are kept; the rest can be replaced by the next
        # segment's (better informed) plan.  The boundary instant is
        # the start time of the boundary call under the candidate
        # schedule; task starts are compile-time prefix sums (one
        # compiler thread).
        candidate_schedule = Schedule.of(*candidate)
        target_index = boundaries[k + 1]
        boundary_time = None
        for index, event in enumerate(
            iter_calls(true_instance, candidate_schedule)
        ):
            if index == target_index:
                boundary_time = event[2]  # start
                break
        if boundary_time is None:  # pragma: no cover - defensive
            committed = candidate
            break
        kept: List[Tuple[str, int]] = []
        elapsed = 0.0
        profiles = true_instance.profiles
        for fname, level in candidate:
            if elapsed < boundary_time:
                kept.append((fname, level))
            elapsed += profiles[fname].compile_times[level]
        committed = kept

    combined_schedule = Schedule.of(*committed)
    total = simulate(true_instance, combined_schedule, validate=False).makespan

    # Baselines.
    one_shot_plan = iar(
        OCSPInstance(profiles=noisy.profiles, calls=calls, name="oneshot"),
        params,
    ).schedule
    one_shot = simulate(true_instance, one_shot_plan, validate=False).makespan
    oracle_plan = iar(true_instance, params).schedule
    oracle = simulate(true_instance, oracle_plan, validate=False).makespan

    return ReplanResult(
        makespan=total,
        one_shot_makespan=one_shot,
        oracle_makespan=oracle,
        lower_bound=lower_bound(true_instance),
        segments=segments,
    )
