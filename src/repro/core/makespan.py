"""Deterministic make-span simulation for compilation schedules.

This is the reproduction of the paper's measurement component (Section
6.1): *"the experimental framework includes a component that, for a given
compilation schedule, computes the make-span of a call sequence based on
the compilation and execution times of the involved functions, along with
the number of cores used for compilation and execution."*

Model (Sections 3, 4.2, 6.2.3):

* One execution thread processes the call sequence in order.
* ``compile_threads`` compiler threads process the schedule's tasks in
  order — when a thread becomes free it takes the next task (a FIFO
  queue, as in Jikes RVM's compilation thread).
* Compilation starts at time 0; an invocation of ``f`` cannot start
  before the first compilation of ``f`` has finished.  Waiting time on
  the execution thread is a *bubble*.
* An invocation runs the code of the best (highest-level) compilation of
  ``f`` that has finished by the moment the invocation starts.  With a
  single compiler thread this coincides with the paper's "latest
  compilation wins" rule because valid schedules only recompile at
  strictly higher levels.
* The make-span is the time from the start of the first compilation
  event to the end of program execution.
"""

from __future__ import annotations

import heapq
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .model import ModelError, OCSPInstance
from .schedule import Schedule, ScheduleError

__all__ = [
    "TaskTiming",
    "CallTiming",
    "MakespanResult",
    "DueDateTable",
    "DueDateObjectives",
    "simulate",
    "simulate_single_core",
    "iter_calls",
    "validate_for_simulation",
    "objectives_from_timeline",
    "due_date_objectives",
]


@dataclass(frozen=True)
class TaskTiming:
    """Start/finish of one compile task, and the thread that ran it."""

    function: str
    level: int
    start: float
    finish: float
    thread: int


@dataclass(frozen=True)
class CallTiming:
    """Start/finish of one invocation, the level it ran at, and the
    bubble (waiting time) that preceded it."""

    function: str
    level: int
    start: float
    finish: float
    bubble: float


@dataclass(frozen=True)
class MakespanResult:
    """Outcome of a make-span simulation.

    Attributes:
        makespan: time from the first compilation's start (t=0) to the
            end of the last invocation.
        exec_end: same as ``makespan`` (kept for clarity in formulas).
        compile_end: finish time of the last compile task; may exceed
            ``makespan`` when the tail of the schedule is useless.
        total_bubble_time: total time the execution thread spent waiting
            for compilations (the paper's "bubbles").
        total_exec_time: sum of the invocation running times.
        calls_at_level: histogram ``{level: number of invocations}``.
        task_timings: per-task timeline (only when ``record_timeline``).
        call_timings: per-call timeline (only when ``record_timeline``).
    """

    makespan: float
    compile_end: float
    total_bubble_time: float
    total_exec_time: float
    calls_at_level: Dict[int, int]
    task_timings: Optional[Tuple[TaskTiming, ...]] = None
    call_timings: Optional[Tuple[CallTiming, ...]] = None

    @property
    def exec_end(self) -> float:
        return self.makespan


@dataclass(frozen=True)
class DueDateTable:
    """Per-function due dates and weights (the SCC-instances extension).

    The paper's objective is the make-span alone; external workloads —
    notably the MSOLab SCC due-date instances — ship a *due date* per
    job.  The OCSP mapping is per **function**: a function's job is
    considered complete when its **last invocation finishes**, and the
    due-date objectives (:func:`due_date_objectives`) measure lateness
    of that completion against ``due``, scaled by ``weight``.

    Attributes:
        entries: ``{function name: (due, weight)}``.  Due dates must be
            finite and non-negative; weights finite and non-negative.
    """

    entries: Mapping[str, Tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        checked: Dict[str, Tuple[float, float]] = {}
        for fname, entry in dict(self.entries).items():
            if not isinstance(fname, str) or not fname:
                raise ModelError(
                    f"due dates: function name must be a non-empty string, "
                    f"got {fname!r}"
                )
            try:
                due, weight = entry
            except (TypeError, ValueError):
                raise ModelError(
                    f"due dates: entry for {fname!r} must be a "
                    f"(due, weight) pair, got {entry!r}"
                ) from None
            for label, value in (("due date", due), ("weight", weight)):
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ModelError(
                        f"due dates: {label} for {fname!r} must be a "
                        f"number, got {value!r}"
                    )
                if not math.isfinite(value) or value < 0:
                    raise ModelError(
                        f"due dates: {label} for {fname!r} must be finite "
                        f"and non-negative, got {value!r}"
                    )
            checked[fname] = (float(due), float(weight))
        object.__setattr__(self, "entries", checked)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, fname: str) -> bool:
        return fname in self.entries

    def items(self):
        """``(function, (due, weight))`` pairs in sorted-name order (the
        canonical aggregation order every engine uses)."""
        return sorted(self.entries.items())

    def validate_against(self, instance: OCSPInstance) -> None:
        """Check that every entry names a function of ``instance``.

        Raises:
            ModelError: for an entry whose function has no profile.
        """
        unknown = sorted(f for f in self.entries if f not in instance.profiles)
        if unknown:
            raise ModelError(
                "due dates name functions absent from the instance: "
                + ", ".join(unknown[:10])
            )


@dataclass(frozen=True)
class DueDateObjectives:
    """Due-date-aware objectives of one simulated run.

    All completions are *last-invocation finish times*, measured on the
    same clock as :attr:`MakespanResult.makespan` (t = 0 is the start of
    the first compilation).  Functions with a due date that are never
    called contribute nothing (their job never ran in this trace).

    Attributes:
        makespan: the run's make-span (for context).
        max_tardiness: ``max_f max(0, C_f - d_f)`` — the worst lateness.
        total_weighted_tardiness: ``sum_f w_f * max(0, C_f - d_f)``.
        weighted_completion: ``sum_f w_f * C_f`` (the classic
            ``sum w_j C_j`` objective).
        num_late: how many dued functions finished after their due date.
        num_jobs: how many dued functions were actually called.
        completions: ``{function: C_f}`` for every dued, called function.
    """

    makespan: float
    max_tardiness: float
    total_weighted_tardiness: float
    weighted_completion: float
    num_late: int
    num_jobs: int
    completions: Dict[str, float]

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view (stable keys, JSON-ready)."""
        return {
            "makespan": self.makespan,
            "max_tardiness": self.max_tardiness,
            "total_weighted_tardiness": self.total_weighted_tardiness,
            "weighted_completion": self.weighted_completion,
            "num_late": self.num_late,
            "num_jobs": self.num_jobs,
            "completions": dict(sorted(self.completions.items())),
        }


def objectives_from_timeline(
    result: MakespanResult, due: DueDateTable
) -> DueDateObjectives:
    """Aggregate due-date objectives from a recorded call timeline.

    The aggregation is deterministic and engine-independent: functions
    are visited in sorted-name order and the weighted sums accumulate
    left-associated, so every engine that produces a bitwise-identical
    timeline produces bitwise-identical objectives.

    Raises:
        ValueError: if ``result`` carries no call timeline (simulate
            with ``record_timeline=True``).
    """
    if result.call_timings is None:
        raise ValueError(
            "objectives_from_timeline needs call timings; simulate with "
            "record_timeline=True"
        )
    last_finish: Dict[str, float] = {}
    for timing in result.call_timings:
        if timing.function in due:
            last_finish[timing.function] = timing.finish
    max_tardiness = 0.0
    total_weighted_tardiness = 0.0
    weighted_completion = 0.0
    num_late = 0
    for fname, (due_time, weight) in due.items():
        finish = last_finish.get(fname)
        if finish is None:
            continue
        tardiness = finish - due_time
        if tardiness > 0.0:
            num_late += 1
            if tardiness > max_tardiness:
                max_tardiness = tardiness
            total_weighted_tardiness += weight * tardiness
        weighted_completion += weight * finish
    return DueDateObjectives(
        makespan=result.makespan,
        max_tardiness=max_tardiness,
        total_weighted_tardiness=total_weighted_tardiness,
        weighted_completion=weighted_completion,
        num_late=num_late,
        num_jobs=len(last_finish),
        completions=last_finish,
    )


def due_date_objectives(
    instance: OCSPInstance,
    schedule: Schedule,
    due: DueDateTable,
    compile_threads: int = 1,
    validate: bool = True,
    engine: Optional[str] = None,
) -> DueDateObjectives:
    """Simulate ``schedule`` and measure the due-date objectives.

    Runs one timeline-recording simulation through the engine seam
    (``engine`` as in :func:`simulate`: ``None`` defers to the session
    default) and aggregates with :func:`objectives_from_timeline`; all
    engines yield bitwise-identical objectives.
    """
    result = simulate(
        instance,
        schedule,
        compile_threads=compile_threads,
        record_timeline=True,
        validate=validate,
        engine=engine,
    )
    return objectives_from_timeline(result, due)


def validate_for_simulation(
    instance: OCSPInstance,
    schedule: Schedule,
    preinstalled: Optional[Dict[str, int]] = None,
) -> None:
    """Validate ``schedule`` for simulation, honouring ``preinstalled``.

    Without preinstalled code this is :meth:`Schedule.validate`.  With
    it, the coverage requirement relaxes: a preinstalled function needs
    no compile task (its code exists from t = 0), while the per-task
    level/monotonicity checks still apply to every task.

    Raises:
        ScheduleError: if the schedule cannot legally drive the instance.
    """
    if not preinstalled:
        schedule.validate(instance)
        return
    covered = set(preinstalled)
    missing = [f for f in instance.called_functions if f not in covered]
    # Delegate per-task checks to the standard validator on a reduced
    # requirement: every *non-preinstalled* called function must still
    # be compiled.
    reduced = OCSPInstance(
        profiles=instance.profiles,
        calls=tuple(f for f in instance.calls if f in missing),
        name=instance.name,
    )
    schedule.validate(reduced)


def _compile_task_finishes(
    instance: OCSPInstance,
    schedule: Schedule,
    compile_threads: int,
    release_times: Optional[Sequence[float]] = None,
    task_compile_times: Optional[Sequence[float]] = None,
) -> Tuple[List[float], List[float], List[int]]:
    """Compute start/finish times of every task and the thread used.

    Tasks are assigned FIFO: each task goes to the compiler thread that
    becomes free earliest (ties broken by thread id for determinism).
    With ``release_times``, task ``i`` additionally cannot start before
    ``release_times[i]`` — this replays the enqueue times of a reactive
    run (``vm.runtime``), whose greedy dispatch is exactly
    ``start = max(thread_free, enqueue_time)``.  With
    ``task_compile_times``, task ``i`` charges ``task_compile_times[i]``
    instead of the profile's compile time — the fault layer's stalled
    (slowed-down) attempts.
    """
    starts: List[float] = []
    finishes: List[float] = []
    threads_used: List[int] = []
    if compile_threads == 1:
        # Fast path: back-to-back on one thread.
        t = 0.0
        for i, task in enumerate(schedule):
            c = (
                task_compile_times[i]
                if task_compile_times is not None
                else instance.profiles[task.function].compile_times[task.level]
            )
            if release_times is not None:
                rel = release_times[i]
                if t < rel:
                    t = rel
            starts.append(t)
            t += c
            finishes.append(t)
            threads_used.append(0)
        return starts, finishes, threads_used
    free_at = [(0.0, tid) for tid in range(compile_threads)]
    heapq.heapify(free_at)
    for i, task in enumerate(schedule):
        c = (
            task_compile_times[i]
            if task_compile_times is not None
            else instance.profiles[task.function].compile_times[task.level]
        )
        start, tid = heapq.heappop(free_at)
        if release_times is not None:
            rel = release_times[i]
            if start < rel:
                start = rel
        starts.append(start)
        finishes.append(start + c)
        threads_used.append(tid)
        heapq.heappush(free_at, (start + c, tid))
    return starts, finishes, threads_used


def _simulate(
    instance: OCSPInstance,
    schedule: Schedule,
    compile_threads: int = 1,
    record_timeline: bool = False,
    validate: bool = True,
    preinstalled: Optional[Dict[str, int]] = None,
    release_times: Optional[Sequence[float]] = None,
    task_compile_times: Optional[Sequence[float]] = None,
    task_installs: Optional[Sequence[bool]] = None,
) -> MakespanResult:
    """Untraced simulation body; see :func:`simulate` for the contract."""
    if compile_threads < 1:
        raise ValueError(f"compile_threads must be >= 1, got {compile_threads}")
    if release_times is not None and len(release_times) != len(schedule):
        raise ValueError(
            f"release_times has {len(release_times)} entries for "
            f"{len(schedule)} tasks"
        )
    if task_compile_times is not None and len(task_compile_times) != len(schedule):
        raise ValueError(
            f"task_compile_times has {len(task_compile_times)} entries for "
            f"{len(schedule)} tasks"
        )
    if task_installs is not None and len(task_installs) != len(schedule):
        raise ValueError(
            f"task_installs has {len(task_installs)} entries for "
            f"{len(schedule)} tasks"
        )
    preinstalled = dict(preinstalled or {})
    for fname, level in preinstalled.items():
        prof = instance.profiles.get(fname)
        if prof is None or not 0 <= level < prof.num_levels:
            raise ValueError(
                f"preinstalled level {level} invalid for {fname!r}"
            )
    if validate:
        validate_for_simulation(instance, schedule, preinstalled)

    starts, finishes, threads_used = _compile_task_finishes(
        instance, schedule, compile_threads, release_times, task_compile_times
    )

    # Per-function list of (finish_time, level), sorted by finish time.
    # Non-installing tasks (failed compile attempts) occupy their thread
    # but never publish code, so they contribute no event.
    by_function: Dict[str, List[Tuple[float, int]]] = {}
    for fname, level in preinstalled.items():
        by_function.setdefault(fname, []).append((0.0, level))
    for i, (task, finish) in enumerate(zip(schedule, finishes)):
        if task_installs is not None and not task_installs[i]:
            continue
        by_function.setdefault(task.function, []).append((finish, task.level))
    for events in by_function.values():
        events.sort()

    # Monotone per-function cursor: index of the next not-yet-finished
    # compile event, and the best level among finished ones.
    cursor: Dict[str, int] = {f: 0 for f in by_function}
    best_level: Dict[str, int] = {}

    profiles = instance.profiles
    t = 0.0
    total_bubble = 0.0
    total_exec = 0.0
    calls_at_level: Dict[int, int] = {}
    call_timings: List[CallTiming] = [] if record_timeline else []

    # Once the execution clock passes the last compile finish, no call
    # can ever wait or change level again: the remainder of the trace is
    # a plain sum at each function's final level (fast tail).
    all_compiled_at = max(
        (events[-1][0] for events in by_function.values()), default=0.0
    )

    calls = instance.calls
    for index, fname in enumerate(calls):
        if not record_timeline and t >= all_compiled_at:
            final_level = {
                f: max(lvl for _ft, lvl in events)
                for f, events in by_function.items()
            }
            for rest in calls[index:]:
                lvl = final_level.get(rest)
                if lvl is None:  # unreachable when validated
                    raise ScheduleError(f"function {rest!r} is never compiled")
                e = profiles[rest].exec_times[lvl]
                total_exec += e
                t += e
                calls_at_level[lvl] = calls_at_level.get(lvl, 0) + 1
            break
        events = by_function.get(fname)
        if not events:  # unreachable when validated
            raise ScheduleError(f"function {fname!r} is never compiled")
        first_ready = events[0][0]
        start = t if t >= first_ready else first_ready
        bubble = start - t
        # Advance the cursor past every compile event finished by `start`.
        idx = cursor[fname]
        best = best_level.get(fname, -1)
        while idx < len(events) and events[idx][0] <= start:
            if events[idx][1] > best:
                best = events[idx][1]
            idx += 1
        cursor[fname] = idx
        best_level[fname] = best
        e = profiles[fname].exec_times[best]
        finish = start + e
        total_bubble += bubble
        total_exec += e
        calls_at_level[best] = calls_at_level.get(best, 0) + 1
        if record_timeline:
            call_timings.append(
                CallTiming(
                    function=fname, level=best, start=start, finish=finish,
                    bubble=bubble,
                )
            )
        t = finish

    task_timings: Optional[Tuple[TaskTiming, ...]] = None
    if record_timeline:
        task_timings = tuple(
            TaskTiming(
                function=task.function,
                level=task.level,
                start=s,
                finish=f,
                thread=tid,
            )
            for task, s, f, tid in zip(schedule, starts, finishes, threads_used)
        )

    return MakespanResult(
        makespan=t,
        compile_end=finishes[-1] if finishes else 0.0,
        total_bubble_time=total_bubble,
        total_exec_time=total_exec,
        calls_at_level=calls_at_level,
        task_timings=task_timings,
        call_timings=tuple(call_timings) if record_timeline else None,
    )


def _active_default_engine() -> Optional[str]:
    """The session default engine, without importing the seam eagerly.

    The engine module is consulted only when it is already loaded or
    when ``$REPRO_ENGINE`` asks for it — a bare ``simulate()`` call in a
    process that never touched the seam pays nothing.
    """
    import sys

    mod = sys.modules.get("repro.core.engine")
    if mod is not None:
        return mod.get_default_engine()
    if os.environ.get("REPRO_ENGINE"):
        from . import engine as mod

        return mod.get_default_engine()
    return None


def simulate(
    instance: OCSPInstance,
    schedule: Schedule,
    compile_threads: int = 1,
    record_timeline: bool = False,
    validate: bool = True,
    preinstalled: Optional[Dict[str, int]] = None,
    release_times: Optional[Sequence[float]] = None,
    task_compile_times: Optional[Sequence[float]] = None,
    task_installs: Optional[Sequence[bool]] = None,
    tracer=None,
    metrics=None,
    engine: Optional[str] = None,
) -> MakespanResult:
    """Simulate ``schedule`` driving ``instance`` and return timings.

    Args:
        instance: the OCSP instance (call sequence + cost tables).
        schedule: compilation schedule to evaluate.
        compile_threads: number of concurrent compiler threads (the
            paper's Figure 7 varies this from 1 to 16).
        record_timeline: keep per-task and per-call timings (O(N) memory;
            off by default for long traces).
        validate: check schedule legality first (disable only in tight
            loops where the caller guarantees validity).  With
            ``preinstalled``, the coverage requirement relaxes: a
            preinstalled function needs no compile task.
        preinstalled: functions whose code at the given level is
            available from t = 0 without compilation — a persistent
            code cache (the paper's Section 9 related work) or the
            carried-over state of a replanning segment.
        release_times: optional per-task earliest start times (one per
            schedule task); used to replay a reactive run's enqueue
            times so its emergent schedule reproduces the same timing.
        task_compile_times: optional per-task compile-time override
            (one per schedule task), replacing the profile lookup —
            how :mod:`repro.faults` charges stalled (slowed) compile
            attempts without touching the validated cost tables.
        task_installs: optional per-task booleans; a ``False`` task
            occupies its compiler thread for its compile time but
            installs no code (a *failed* compile attempt).  Callers
            must ensure every called function still gets at least one
            installing task (``validate`` does not model installs).
        tracer: optional :class:`repro.observability.Tracer` (or scope);
            when given, the full timeline is traced as compile / call /
            bubble spans.  The numbers are bitwise identical to an
            untraced run — tracing only records, it never reschedules.
        metrics: optional
            :class:`repro.observability.MetricsRegistry`; records the
            deterministic work counters ``makespan.runs``,
            ``makespan.calls``, and ``makespan.tasks``.  Counting
            happens once per run outside the replay loop, so the hot
            body is untouched and ``metrics=None`` (the default) costs
            a single branch.
        engine: ``"reference"`` (this module's pure-Python loop, the
            default), ``"fast"``
            (:class:`~repro.core.fastsim.FastSimulator`), or
            ``"vector"`` (:class:`~repro.core.vecsim.VectorSimulator`,
            the numpy structure-of-arrays kernel).  All three are
            bitwise identical; ``None`` defers to the session default
            (:func:`repro.core.engine.set_default_engine` /
            ``$REPRO_ENGINE``), then to ``"reference"``.  Non-reference
            engines are cached per instance, so tight loops pay the
            per-instance interning once.

    Returns:
        A :class:`MakespanResult`.

    Raises:
        ScheduleError: if ``validate`` and the schedule is illegal.
        ValueError: if ``compile_threads < 1``, a preinstalled level is
            out of range, ``release_times`` has the wrong length, or
            ``engine`` is unknown.
    """
    if engine is None:
        engine = _active_default_engine()
    if engine is not None and engine != "reference":
        from .engine import make_simulator

        sim = make_simulator(
            instance,
            engine,
            compile_threads=compile_threads,
            preinstalled=preinstalled,
            fallback="reference",
            cached=True,
        )
        result = sim.evaluate(
            schedule,
            record_timeline=record_timeline,
            validate=validate,
            release_times=release_times,
            task_compile_times=task_compile_times,
            task_installs=task_installs,
            tracer=tracer,
        )
        if metrics is not None:
            _count_run(metrics, instance, schedule)
        return result
    if tracer is None:
        result = _simulate(
            instance, schedule, compile_threads, record_timeline,
            validate, preinstalled, release_times,
            task_compile_times, task_installs,
        )
        if metrics is not None:
            _count_run(metrics, instance, schedule)
        return result
    from repro.observability.instrument import trace_makespan_result

    result = _simulate(
        instance, schedule, compile_threads, True,
        validate, preinstalled, release_times,
        task_compile_times, task_installs,
    )
    trace_makespan_result(tracer, result)
    if metrics is not None:
        _count_run(metrics, instance, schedule)
    if record_timeline:
        return result
    return MakespanResult(
        makespan=result.makespan,
        compile_end=result.compile_end,
        total_bubble_time=result.total_bubble_time,
        total_exec_time=result.total_exec_time,
        calls_at_level=result.calls_at_level,
    )


def _count_run(metrics, instance: OCSPInstance, schedule: Schedule) -> None:
    """Work accounting for one simulation (post-run, O(1))."""
    metrics.counter("makespan.runs").inc()
    metrics.counter("makespan.calls").inc(len(instance.calls))
    metrics.counter("makespan.tasks").inc(len(schedule))


def iter_calls(
    instance: OCSPInstance,
    schedule: Schedule,
    compile_threads: int = 1,
):
    """Lazily yield ``(function, level, start, finish, bubble)`` per call.

    A streaming variant of :func:`simulate` used by schedulers (e.g. IAR)
    that need call start times on long traces without materializing a
    timeline.  The schedule is not validated; callers must pass a valid
    one.
    """
    _, finishes, _ = _compile_task_finishes(instance, schedule, compile_threads)
    by_function: Dict[str, List[Tuple[float, int]]] = {}
    for task, finish in zip(schedule, finishes):
        by_function.setdefault(task.function, []).append((finish, task.level))
    for events in by_function.values():
        events.sort()
    cursor: Dict[str, int] = {f: 0 for f in by_function}
    best_level: Dict[str, int] = {}
    profiles = instance.profiles
    t = 0.0
    for fname in instance.calls:
        events = by_function.get(fname)
        if not events:
            raise ScheduleError(f"function {fname!r} is never compiled")
        first_ready = events[0][0]
        start = t if t >= first_ready else first_ready
        idx = cursor[fname]
        best = best_level.get(fname, -1)
        while idx < len(events) and events[idx][0] <= start:
            if events[idx][1] > best:
                best = events[idx][1]
            idx += 1
        cursor[fname] = idx
        best_level[fname] = best
        finish = start + profiles[fname].exec_times[best]
        yield fname, best, start, finish, start - t
        t = finish


def simulate_single_core(
    instance: OCSPInstance, schedule: Schedule, validate: bool = True
) -> MakespanResult:
    """Make-span when compilation and execution share a single core.

    Section 4.1: with one core the machine is always busy doing either
    compilation or execution work, so the make-span is the sum of all
    compile times in the schedule plus all invocation times.  On a single
    core, delaying a compile never hides its cost (there are no bubbles
    to avoid), so the best interleaving of a given task set runs every
    compile of ``f`` before ``f``'s first invocation; every call then
    executes at the highest level its function is ever compiled at.  We
    return the make-span under that optimal interleaving, which is the
    quantity Theorem 1 reasons about.
    """
    if validate:
        schedule.validate(instance)
    profiles = instance.profiles
    level_of: Dict[str, int] = {}
    for task in schedule:
        prev = level_of.get(task.function, -1)
        if task.level > prev:
            level_of[task.function] = task.level
    compile_total = schedule.total_compile_time(instance)
    exec_total = 0.0
    calls_at_level: Dict[int, int] = {}
    for fname in instance.calls:
        lvl = level_of[fname]
        exec_total += profiles[fname].exec_times[lvl]
        calls_at_level[lvl] = calls_at_level.get(lvl, 0) + 1
    return MakespanResult(
        makespan=compile_total + exec_total,
        compile_end=compile_total + exec_total,
        total_bubble_time=0.0,
        total_exec_time=exec_total,
        calls_at_level=calls_at_level,
    )
