"""Additional baseline scheduling policies.

The paper evaluates two single-level approximations plus the Jikes RVM
and V8 schemes.  This module contributes further static baselines that
bracket the design space — useful both as comparison points and as
sanity rails in tests:

* :func:`ondemand_promotion_schedule` — a static generalization of the
  V8 scheme: low compiles in first-appearance order, each function's
  high compile ordered by the position of its ``k``-th invocation;
* :func:`hotness_first_schedule` — low compiles first, then high
  compiles of every profitable function, hottest first;
* :func:`greedy_budget_schedule` — spend a compile-time budget on the
  recompilations with the best benefit/cost ratio (a knapsack-flavored
  policy);
* :func:`random_schedule` — a uniformly random *valid* schedule (the
  chance baseline).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .model import OCSPInstance
from .schedule import CompileTask, Schedule

__all__ = [
    "ondemand_promotion_schedule",
    "hotness_first_schedule",
    "greedy_budget_schedule",
    "random_schedule",
]


def _two_levels(instance: OCSPInstance, fname: str) -> Tuple[int, Optional[int]]:
    """(low, high) candidate levels: most responsive + best above it."""
    prof = instance.profiles[fname]
    if prof.num_levels == 1:
        return 0, None
    n = instance.call_count(fname)
    high = min(range(1, prof.num_levels), key=lambda j: (prof.total_cost(j, n), -j))
    return 0, high


def _is_profitable(instance: OCSPInstance, fname: str, high: Optional[int]) -> bool:
    """Formula 1: is compiling ``high`` better than staying low?"""
    if high is None:
        return False
    prof = instance.profiles[fname]
    n = instance.call_count(fname)
    return prof.total_cost(high, n) <= prof.total_cost(0, n)


def ondemand_promotion_schedule(
    instance: OCSPInstance, promote_after: int = 2
) -> Schedule:
    """Static image of a count-based promotion policy.

    Low-level compiles appear in first-appearance order; the high
    compile of every function invoked at least ``promote_after`` times
    follows, ordered by the position of that function's
    ``promote_after``-th invocation — the order in which a V8-style
    runtime would enqueue the promotions.

    Args:
        instance: the workload.
        promote_after: invocation count that triggers promotion
            (V8 uses 2).
    """
    if promote_after < 1:
        raise ValueError("promote_after must be >= 1")
    tasks: List[CompileTask] = [
        CompileTask(fname, 0) for fname in instance.called_functions
    ]
    seen: Dict[str, int] = {}
    promotions: List[Tuple[int, str]] = []
    for index, fname in enumerate(instance.calls):
        seen[fname] = seen.get(fname, 0) + 1
        if seen[fname] == promote_after:
            _low, high = _two_levels(instance, fname)
            if high is not None:
                promotions.append((index, fname))
    promotions.sort()
    for _index, fname in promotions:
        _low, high = _two_levels(instance, fname)
        tasks.append(CompileTask(fname, high))
    return Schedule(tuple(tasks))


def hotness_first_schedule(instance: OCSPInstance) -> Schedule:
    """Low compiles in first-appearance order, then the profitable high
    compiles sorted by descending invocation count (hottest first)."""
    tasks: List[CompileTask] = [
        CompileTask(fname, 0) for fname in instance.called_functions
    ]
    candidates = []
    for fname in instance.called_functions:
        _low, high = _two_levels(instance, fname)
        if _is_profitable(instance, fname, high):
            candidates.append((-instance.call_count(fname), fname, high))
    candidates.sort()
    tasks.extend(CompileTask(fname, high) for _neg, fname, high in candidates)
    return Schedule(tuple(tasks))


def greedy_budget_schedule(
    instance: OCSPInstance, budget_fraction: float = 0.5
) -> Schedule:
    """Spend a recompilation budget greedily by benefit/cost ratio.

    The budget is ``budget_fraction`` times the total level-0 execution
    time — a proxy for "compile time we can hide behind execution".
    Recompiles with the largest per-microsecond benefit go first until
    the budget is exhausted.

    Args:
        instance: the workload.
        budget_fraction: recompile budget as a fraction of total
            level-0 execution time.
    """
    if budget_fraction < 0:
        raise ValueError("budget_fraction must be non-negative")
    tasks: List[CompileTask] = [
        CompileTask(fname, 0) for fname in instance.called_functions
    ]
    total_exec0 = sum(
        instance.profiles[f].exec_times[0] for f in instance.calls
    )
    budget = budget_fraction * total_exec0

    ranked: List[Tuple[float, str, int, float]] = []
    for fname in instance.called_functions:
        prof = instance.profiles[fname]
        _low, high = _two_levels(instance, fname)
        if high is None:
            continue
        n = instance.call_count(fname)
        benefit = n * (prof.exec_times[0] - prof.exec_times[high])
        cost = prof.compile_times[high]
        if benefit <= 0 or cost <= 0:
            continue
        ranked.append((-(benefit / cost), fname, high, cost))
    ranked.sort()
    spent = 0.0
    for _ratio, fname, high, cost in ranked:
        if spent + cost > budget:
            continue
        spent += cost
        tasks.append(CompileTask(fname, high))
    return Schedule(tuple(tasks))


def random_schedule(instance: OCSPInstance, seed: int = 0) -> Schedule:
    """A uniformly random valid schedule.

    Each called function receives a random non-empty increasing level
    chain; chains are interleaved uniformly at random.  Useful as a
    chance baseline and in randomized tests.
    """
    rng = random.Random(seed)
    chains: Dict[str, List[int]] = {}
    for fname in instance.called_functions:
        levels = list(range(instance.profiles[fname].num_levels))
        size = rng.randint(1, len(levels))
        chains[fname] = sorted(rng.sample(levels, size))
    # Per-function cursors instead of pop(0): same tasks in the same
    # order, without the O(chain) front-removal per task.
    cursor = {f: 0 for f in chains}
    tasks: List[CompileTask] = []
    pool = [f for f, chain in chains.items() for _ in chain]
    rng.shuffle(pool)
    for fname in pool:
        i = cursor[fname]
        cursor[fname] = i + 1
        tasks.append(CompileTask(fname, chains[fname][i]))
    return Schedule(tuple(tasks))
