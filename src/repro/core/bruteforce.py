"""Exhaustive optimal scheduling for tiny OCSP instances.

Because OCSP is NP-complete (Theorem 2), the only way to obtain ground
truth is enumeration.  This module enumerates every valid compilation
schedule of a tiny instance and returns the best one.  It exists to
validate the IAR heuristic and the A*-search against the true optimum in
tests, and to reproduce the example figures.

A valid schedule assigns each called function a non-empty strictly
increasing subsequence of its levels and interleaves these per-function
chains arbitrarily.  Appending extra (useless) tasks at the end never
changes the make-span — the make-span ends with the last execution — so
enumerating all "chain choices x interleavings" covers the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Tuple

from .makespan import simulate
from .model import OCSPInstance
from .schedule import CompileTask, Schedule

__all__ = ["BruteForceResult", "optimal_schedule", "SearchBudgetExceeded"]


class SearchBudgetExceeded(RuntimeError):
    """Raised when enumeration would exceed the configured node budget."""


@dataclass(frozen=True)
class BruteForceResult:
    """Optimal schedule found by enumeration.

    Attributes:
        schedule: a make-span-minimizing schedule.
        makespan: its make-span.
        schedules_evaluated: number of complete schedules simulated.
    """

    schedule: Schedule
    makespan: float
    schedules_evaluated: int


def _level_chains(num_levels: int) -> List[Tuple[int, ...]]:
    """All non-empty strictly increasing level subsequences."""
    chains: List[Tuple[int, ...]] = []
    levels = list(range(num_levels))
    for size in range(1, num_levels + 1):
        chains.extend(combinations(levels, size))
    return chains


def optimal_schedule(
    instance: OCSPInstance,
    compile_threads: int = 1,
    max_schedules: int = 2_000_000,
) -> BruteForceResult:
    """Enumerate all valid schedules and return a best one.

    Args:
        instance: the (tiny!) OCSP instance.
        compile_threads: compiler-thread count for the simulation.
        max_schedules: abort (raising :class:`SearchBudgetExceeded`)
            before evaluating more complete schedules than this.

    Raises:
        SearchBudgetExceeded: when the instance is too large to
            enumerate within ``max_schedules``.
        ValueError: if the instance has no calls.
    """
    functions = instance.called_functions
    if not functions:
        raise ValueError("instance has no calls; nothing to schedule")

    chain_options: Dict[str, List[Tuple[int, ...]]] = {
        fname: _level_chains(instance.profiles[fname].num_levels)
        for fname in functions
    }

    best_schedule: Optional[Schedule] = None
    best_makespan = float("inf")
    evaluated = 0

    # Enumerate chain assignments, then all interleavings of the chains.
    def assign(idx: int, chosen: Dict[str, Tuple[int, ...]]) -> None:
        nonlocal best_schedule, best_makespan, evaluated
        if idx == len(functions):
            for sched in _interleavings(functions, chosen):
                evaluated += 1
                if evaluated > max_schedules:
                    raise SearchBudgetExceeded(
                        f"more than {max_schedules} schedules to evaluate"
                    )
                result = simulate(
                    instance, sched, compile_threads=compile_threads, validate=False
                )
                if result.makespan < best_makespan:
                    best_makespan = result.makespan
                    best_schedule = sched
            return
        fname = functions[idx]
        for chain in chain_options[fname]:
            chosen[fname] = chain
            assign(idx + 1, chosen)
        del chosen[fname]

    assign(0, {})
    assert best_schedule is not None
    return BruteForceResult(
        schedule=best_schedule,
        makespan=best_makespan,
        schedules_evaluated=evaluated,
    )


def _interleavings(
    functions: List[str], chains: Dict[str, Tuple[int, ...]]
):
    """Yield every interleaving of the per-function level chains."""
    progress = {fname: 0 for fname in functions}
    total = sum(len(chains[f]) for f in functions)
    prefix: List[CompileTask] = []

    def rec():
        if len(prefix) == total:
            yield Schedule(tuple(prefix))
            return
        for fname in functions:
            i = progress[fname]
            if i >= len(chains[fname]):
                continue
            progress[fname] = i + 1
            prefix.append(CompileTask(fname, chains[fname][i]))
            yield from rec()
            prefix.pop()
            progress[fname] = i

    yield from rec()
