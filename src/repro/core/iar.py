"""The IAR (Init–Append–Replace) scheduling algorithm (Section 5.1, Figure 3).

IAR approximates optimal compilation schedules in ``O(N + M log M)`` time
(``N`` = call-sequence length, ``M`` = distinct functions).  The four steps:

1. **Init** — schedule the *low*-level compilation of every function in
   order of first appearance.  This minimizes bubbles: cheap compiles make
   code available as early as possible.
2. **Append & Replace** — classify each function by two formulas:

   * Formula 1: if ``ch + n*eh > cl + n*el`` the high level is not
     beneficial at all → category **O** (no recompilation).
   * Formula 2: otherwise, with ``n1`` = calls during the initial
     compilation phase, if ``ch - cl > K * n1 * (el - eh)`` the high
     compile is too expensive to pay early → category **A**: append its
     high-level compile after the initial phase (A sorted by ascending
     ``ch`` so costly recompiles don't delay cheap ones).  Else →
     category **R**: replace the low compile with the high compile in
     the initial phase.
3. **Fill slack through replacement** — where the gap between a
   function's first compile finishing and its first invocation (its
   *slack*) can absorb the extra compile time, upgrade the initial
   low-level compile to the high level without adding bubbles; a later
   appended high compile of that function is deleted.
4. **Append more to fill the ending gap** — if compilation finishes
   before execution does, append high-level compiles of still-low
   functions (most future calls first) into the gap.

For JITs with more than two levels, each function's two candidate levels
are its *most responsive* level (0) and its *most cost-effective* level
(Section 5.1); callers may override the latter with a cost-benefit
model's choices via ``high_levels``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .fastsim import FastSimulator
from .makespan import iter_calls
from .model import OCSPInstance
from .schedule import CompileTask, Schedule

__all__ = ["IARParams", "IARResult", "iar", "iar_schedule", "DEFAULT_K"]

DEFAULT_K = 5.0
"""The paper's Formula 2 constant; any value in [3, 10] behaves similarly
(Section 5.1), which ``benchmarks/bench_ablation_K.py`` verifies."""


APPEND_ORDERS = ("compile_time", "benefit", "hotness", "first_call")
GAP_PRIORITIES = ("remaining_calls", "benefit_rate", "compile_time")


@dataclass(frozen=True)
class IARParams:
    """Tunable knobs of the IAR algorithm.

    The paper reports trying several prioritizations for the append and
    gap-fill steps and finding the simple ones sufficient ("they do not
    outperform the simple heuristics Figure 3 shows");
    ``benchmarks/bench_ablation_iar_variants.py`` re-runs that search.

    Attributes:
        k: Formula 2's ``K`` constant.
        refine_slack: run step 3 (slack-filling replacements).
        fill_gap: run step 4 (ending-gap appends).
        keep_better_after_slack: verify step 3 with one simulation and
            revert it wholesale if it hurt (the conservative slack test
            ignores the execution-side speed-up shifting calls earlier).
        append_order: ordering of step 2's appended high compiles —
            ``"compile_time"`` (the paper's ascending ``ch``),
            ``"benefit"`` (descending total saving), ``"hotness"``
            (descending call count), or ``"first_call"`` (program
            order).
        gap_priority: ordering of step 4's gap candidates —
            ``"remaining_calls"`` (the paper's choice),
            ``"benefit_rate"`` (saving per compile microsecond), or
            ``"compile_time"`` (cheapest first).
        exact_slack: replace step 3's conservative slack test with
            batch candidate scoring: every eligible upgrade is evaluated
            individually on the incremental
            :class:`~repro.core.fastsim.FastSimulator` engine and kept
            only when it does not lengthen the make-span.  Costs one
            suffix replay per candidate instead of one closed-form test,
            but also captures the execution-side speed-up the
            conservative test ignores.  Off by default (the paper's
            algorithm).
    """

    k: float = DEFAULT_K
    refine_slack: bool = True
    fill_gap: bool = True
    keep_better_after_slack: bool = True
    append_order: str = "compile_time"
    gap_priority: str = "remaining_calls"
    exact_slack: bool = False

    def __post_init__(self) -> None:
        if self.append_order not in APPEND_ORDERS:
            raise ValueError(
                f"append_order must be one of {APPEND_ORDERS}, "
                f"got {self.append_order!r}"
            )
        if self.gap_priority not in GAP_PRIORITIES:
            raise ValueError(
                f"gap_priority must be one of {GAP_PRIORITIES}, "
                f"got {self.gap_priority!r}"
            )


@dataclass(frozen=True)
class _FunctionInfo:
    """Per-function data IAR works with (two-level projection)."""

    name: str
    low: int
    high: Optional[int]  # None when no distinct beneficial high level exists
    cl: float
    ch: float
    el: float
    eh: float
    n: int


@dataclass(frozen=True)
class IARResult:
    """Schedule plus diagnostics about how IAR built it.

    Attributes:
        schedule: the final compilation schedule.
        categories: function → ``"A"``, ``"R"`` or ``"O"``.
        slack_upgrades: functions upgraded in place by step 3.
        gap_appends: functions whose high compile step 4 appended.
        high_level: the high candidate level chosen per function.
    """

    schedule: Schedule
    categories: Dict[str, str]
    slack_upgrades: Tuple[str, ...]
    gap_appends: Tuple[str, ...]
    high_level: Dict[str, int]


def _function_infos(
    instance: OCSPInstance, high_levels: Optional[Mapping[str, int]]
) -> Dict[str, _FunctionInfo]:
    infos: Dict[str, _FunctionInfo] = {}
    for fname in instance.called_functions:
        prof = instance.profiles[fname]
        n = instance.call_count(fname)
        low = prof.most_responsive_level
        if high_levels is not None and fname in high_levels:
            high: Optional[int] = high_levels[fname]
            if high is not None and not 0 <= high < prof.num_levels:
                raise ValueError(
                    f"high level {high} out of range for {fname!r}"
                )
        elif prof.num_levels == 1:
            high = None
        else:
            # The high candidate is the best level *above* the most
            # responsive one (for a 2-level JIT, simply "the high
            # level").  Formula 1 then decides whether scheduling it is
            # worthwhile at all; even when it is not, step 4 may still
            # compile it with free capacity in the ending gap.
            high = min(
                range(1, prof.num_levels),
                key=lambda j: (prof.total_cost(j, n), -j),
            )
        if high is not None and high <= low:
            high = None
        infos[fname] = _FunctionInfo(
            name=fname,
            low=low,
            high=high,
            cl=prof.compile_times[low],
            ch=prof.compile_times[high] if high is not None else prof.compile_times[low],
            el=prof.exec_times[low],
            eh=prof.exec_times[high] if high is not None else prof.exec_times[low],
            n=n,
        )
    return infos


def _trace_stats(
    instance: OCSPInstance,
    schedule: Schedule,
    before_time: Optional[float] = None,
    after_time: Optional[float] = None,
) -> Tuple[Dict[str, float], Dict[str, int], Dict[str, int], float]:
    """One streaming pass over the execution under ``schedule``.

    Returns ``(first_call_start, calls_before, calls_after, exec_end)``
    where ``calls_before[f]`` counts invocations of ``f`` starting
    strictly before ``before_time`` and ``calls_after[f]`` counts those
    starting at or after ``after_time``.
    """
    first_start: Dict[str, float] = {}
    before: Dict[str, int] = {}
    after: Dict[str, int] = {}
    end = 0.0
    for fname, _level, start, finish, _bubble in iter_calls(instance, schedule):
        if fname not in first_start:
            first_start[fname] = start
        if before_time is not None and start < before_time:
            before[fname] = before.get(fname, 0) + 1
        if after_time is not None and start >= after_time:
            after[fname] = after.get(fname, 0) + 1
        end = finish
    return first_start, before, after, end


def iar(
    instance: OCSPInstance,
    params: IARParams = IARParams(),
    high_levels: Optional[Mapping[str, int]] = None,
    metrics=None,
    engine: Optional[str] = None,
) -> IARResult:
    """Run the IAR algorithm and return the schedule with diagnostics.

    Args:
        instance: the OCSP instance to schedule.
        params: algorithm knobs (see :class:`IARParams`).
        high_levels: optional per-function override of the high candidate
            level (e.g. the choice of a runtime's cost-benefit model, as
            the paper does with Jikes RVM's model in Section 6.2.1).
        metrics: optional
            :class:`repro.observability.MetricsRegistry`; when given,
            per-step counters (``iar.category.*``, ``iar.slack_upgrades``,
            ``iar.gap_appends``, ``iar.step3_reverted``, and with
            ``exact_slack`` the ``iar.exact_slack.*`` family) record how
            the schedule was built.
        engine: make-span engine for the trace passes and verification
            simulations — ``"fast"`` (the default), ``"vector"``, or
            ``"reference"``; all walk identical schedules (the engines
            are bitwise-exact twins).  ``None`` defers to the session
            default (:func:`repro.core.engine.set_default_engine` /
            ``$REPRO_ENGINE``), then to ``"fast"``.
    """
    from .engine import make_simulator

    infos = _function_infos(instance, high_levels)
    order = instance.called_functions  # first-appearance order
    # One engine serves every trace pass and verification simulation in
    # this run; its per-instance arrays (interned call sequence, cost
    # rows) are built once instead of once per pass.
    fs = make_simulator(instance, engine, fallback="fast")

    # ------------------------------------------------------------ step 1
    init_tasks: List[CompileTask] = [
        CompileTask(fname, infos[fname].low) for fname in order
    ]
    init_schedule = Schedule(tuple(init_tasks))
    t_init = sum(infos[fname].cl for fname in order)
    _first, calls_during_init, _after, _end = fs.trace_stats(
        init_schedule, before_time=t_init
    )

    # ------------------------------------------------------------ step 2
    categories: Dict[str, str] = {}
    append_set: List[str] = []
    replace_set: List[str] = []
    for fname in order:
        info = infos[fname]
        if info.high is None or info.ch + info.n * info.eh > info.cl + info.n * info.el:
            categories[fname] = "O"
            continue
        n1 = calls_during_init.get(fname, 0)
        if info.ch - info.cl > params.k * n1 * (info.el - info.eh):
            categories[fname] = "A"
            append_set.append(fname)
        else:
            categories[fname] = "R"
            replace_set.append(fname)

    position = {fname: i for i, fname in enumerate(order)}
    tasks = list(init_tasks)
    for fname in replace_set:
        info = infos[fname]
        tasks[position[fname]] = CompileTask(fname, info.high)
    append_set.sort(key=_append_key(instance, infos, position, params.append_order))
    tasks.extend(CompileTask(f, infos[f].high) for f in append_set)
    schedule = Schedule(tuple(tasks))

    # ------------------------------------------------------------ step 3
    refined: Optional[Tuple[Schedule, List[str]]] = None
    if params.refine_slack:
        if params.exact_slack:
            refined = _fill_slack_exact(
                instance, infos, order, schedule, fs, metrics
            )
        else:
            refined = _fill_slack(
                instance, infos, order, categories, schedule, params, fs
            )

    # ------------------------------------------------------------ step 4
    def _finish(sched: Schedule) -> Tuple[Schedule, List[str]]:
        if params.fill_gap:
            return _fill_ending_gap(
                instance, infos, sched, params.gap_priority, fs
            )
        return sched, []

    schedule, gap_appends = _finish(schedule)
    slack_upgrades: List[str] = []
    if refined is not None:
        cand_schedule, cand_appends = _finish(refined[0])
        if params.keep_better_after_slack:
            # The conservative slack test ignores the execution-side
            # speed-up shifting calls earlier and its interaction with
            # step 4's gap capacity, so compare *finished* schedules.
            base_span = fs.evaluate(schedule).makespan
            cand_span = fs.evaluate(cand_schedule).makespan
            take_refined = cand_span <= base_span
        else:
            take_refined = True
        if take_refined:
            schedule, gap_appends = cand_schedule, cand_appends
            slack_upgrades = refined[1]
        elif metrics is not None:
            metrics.counter("iar.step3_reverted").inc()

    if metrics is not None:
        for cat in categories.values():
            metrics.counter(f"iar.category.{cat}").inc()
        metrics.counter("iar.slack_upgrades").inc(len(slack_upgrades))
        metrics.counter("iar.gap_appends").inc(len(gap_appends))

    return IARResult(
        schedule=schedule,
        categories=categories,
        slack_upgrades=tuple(slack_upgrades),
        gap_appends=tuple(gap_appends),
        high_level={f: i.high for f, i in infos.items() if i.high is not None},
    )


def _append_key(
    instance: OCSPInstance,
    infos: Dict[str, _FunctionInfo],
    position: Dict[str, int],
    append_order: str,
):
    """Sort key for step 2's appended high compiles."""
    if append_order == "compile_time":
        return lambda f: (infos[f].ch, f)
    if append_order == "benefit":
        return lambda f: (-infos[f].n * (infos[f].el - infos[f].eh), f)
    if append_order == "hotness":
        return lambda f: (-infos[f].n, f)
    # "first_call": program order of first appearance.
    return lambda f: (position[f], f)


def _gap_key(infos: Dict[str, _FunctionInfo], calls_after, gap_priority: str):
    """Sort key for step 4's gap candidates."""
    if gap_priority == "remaining_calls":
        return lambda f: (-calls_after.get(f, 0), infos[f].ch, f)
    if gap_priority == "benefit_rate":
        return lambda f: (
            -calls_after.get(f, 0) * (infos[f].el - infos[f].eh) / infos[f].ch
            if infos[f].ch > 0
            else float("-inf"),
            f,
        )
    # "compile_time": cheapest compiles first.
    return lambda f: (infos[f].ch, f)


def _fill_slack(
    instance: OCSPInstance,
    infos: Dict[str, _FunctionInfo],
    order: List[str],
    categories: Dict[str, str],
    schedule: Schedule,
    params: IARParams,
    fs: Optional[FastSimulator] = None,
) -> Optional[Tuple[Schedule, List[str]]]:
    """Step 3: upgrade initial low compiles where slack absorbs the cost.

    A *slack* is the time between the finish of a function's first
    compilation and its first invocation.  Upgrading the compile at
    position ``p`` from ``cl`` to ``ch`` delays every later compile by
    ``ch - cl``; the upgrade is safe (adds no bubble) when the minimum
    remaining slack from ``p`` onwards still covers the accumulated
    delay.  The conservative test ignores that faster execution can
    shift calls earlier, so the caller verifies the finished schedule
    against the unrefined one and keeps the better.
    """
    m = len(order)
    if fs is None:
        fs = FastSimulator(instance)
    first_start, _b, _a, _end = fs.trace_stats(schedule)

    # Finish time of each initial compile (single compile thread).
    finish = 0.0
    init_finish: List[float] = []
    for i, fname in enumerate(order):
        finish += instance.profiles[fname].compile_times[schedule[i].level]
        init_finish.append(finish)

    slack = [first_start[order[i]] - init_finish[i] for i in range(m)]
    # suffix_min[i] = min(slack[i:]) over the *initial* segment.
    suffix_min = [0.0] * m
    running = float("inf")
    for i in range(m - 1, -1, -1):
        running = min(running, slack[i])
        suffix_min[i] = running

    tasks = list(schedule.tasks)
    upgraded: List[str] = []
    delay = 0.0
    for i, fname in enumerate(order):
        info = infos[fname]
        if info.high is None or tasks[i].level != info.low:
            continue  # already high (R member) or nothing to upgrade to
        if info.eh >= info.el:
            continue
        extra = info.ch - info.cl
        if extra <= 0:
            continue
        if suffix_min[i] - delay >= extra:
            tasks[i] = CompileTask(fname, info.high)
            delay += extra
            upgraded.append(fname)

    if not upgraded:
        return None

    # Delete the appended high compile of upgraded functions, if any.
    upgraded_set = set(upgraded)
    new_tasks = tasks[:m] + [
        t
        for t in tasks[m:]
        if not (t.function in upgraded_set and t.level == infos[t.function].high)
    ]
    return Schedule(tuple(new_tasks)), upgraded


def _fill_slack_exact(
    instance: OCSPInstance,
    infos: Dict[str, _FunctionInfo],
    order: List[str],
    schedule: Schedule,
    fs: FastSimulator,
    metrics=None,
) -> Optional[Tuple[Schedule, List[str]]]:
    """Step 3 variant: score every slack-upgrade candidate exactly.

    Instead of the closed-form suffix-min slack test, each eligible
    initial compile is upgraded in turn and the resulting schedule is
    scored on the incremental engine (one suffix replay per candidate —
    the batch is evaluated against a shared, continually committed
    baseline).  An upgrade is kept only when the make-span does not
    grow, so the refined schedule is never worse than the input.
    """
    m = len(order)
    current_span = fs.bind(schedule)
    tasks = list(schedule.tasks)
    upgraded: List[str] = []
    for i, fname in enumerate(order):
        info = infos[fname]
        if info.high is None or tasks[i].level != info.low:
            continue  # already high (R member) or nothing to upgrade to
        if info.eh >= info.el:
            continue
        # Upgrade in place; drop any appended high recompile of the same
        # function (it would now recompile at a non-increasing level).
        candidate = [
            t
            for j, t in enumerate(tasks)
            if j < m or t.function != fname
        ]
        candidate[i] = CompileTask(fname, info.high)
        span = fs.propose(candidate, cutoff=current_span)
        if metrics is not None:
            metrics.counter("iar.exact_slack.proposed").inc()
            if span == float("inf"):
                metrics.counter("iar.exact_slack.cutoff_exits").inc()
        if span <= current_span:
            current_span = fs.commit()
            tasks = candidate
            upgraded.append(fname)
            if metrics is not None:
                metrics.counter("iar.exact_slack.accepted").inc()
    if not upgraded:
        return None
    return Schedule(tuple(tasks)), upgraded


def _fill_ending_gap(
    instance: OCSPInstance,
    infos: Dict[str, _FunctionInfo],
    schedule: Schedule,
    gap_priority: str = "remaining_calls",
    fs: Optional[FastSimulator] = None,
) -> Tuple[Schedule, List[str]]:
    """Step 4: append high compiles into the compile/exec ending gap.

    ``Tgap`` is the time between the end of all compilations and the end
    of all executions.  Functions still compiled at the low level only
    are appended (those with the most remaining calls first) while their
    compile times fit in the gap.  Appended tasks run strictly after the
    existing ones, so they can only accelerate remaining calls — never
    add bubbles.
    """
    compile_end = schedule.total_compile_time(instance)
    if fs is None:
        fs = FastSimulator(instance)
    _first, _before, calls_after, exec_end = fs.trace_stats(
        schedule, after_time=compile_end
    )
    tgap = exec_end - compile_end
    if tgap <= 0:
        return schedule, []

    highest: Dict[str, int] = {}
    for task in schedule:
        prev = highest.get(task.function, -1)
        if task.level > prev:
            highest[task.function] = task.level

    candidates = [
        fname
        for fname, info in infos.items()
        if info.high is not None
        and highest.get(fname, -1) == info.low
        and info.eh < info.el
        and calls_after.get(fname, 0) > 0
    ]
    candidates.sort(key=_gap_key(infos, calls_after, gap_priority))

    appended: List[str] = []
    used = 0.0
    tasks = list(schedule.tasks)
    for fname in candidates:
        ch = infos[fname].ch
        if used + ch > tgap:
            continue
        used += ch
        tasks.append(CompileTask(fname, infos[fname].high))
        appended.append(fname)
    if not appended:
        return schedule, []
    return Schedule(tuple(tasks)), appended


def iar_schedule(
    instance: OCSPInstance,
    k: float = DEFAULT_K,
    high_levels: Optional[Mapping[str, int]] = None,
    engine: Optional[str] = None,
) -> Schedule:
    """Convenience wrapper returning only the IAR schedule."""
    return iar(
        instance, IARParams(k=k), high_levels=high_levels, engine=engine
    ).schedule
