"""Interpreter-tier support (Section 8).

Some runtimes (V8 at the time, HotSpot, every bytecode VM) begin by
*interpreting* code: execution can start immediately, with no compile
latency at all, at the cost of slow execution.  The paper observes that
"if we treat interpretation as the lowest level compilation in the
optimal compilation schedule problem, the analysis and algorithms
discussed in this paper can still be applied."

This module makes that treatment concrete:

* :func:`with_interpreter_tier` prepends a level with **zero compile
  time** and a configurable slowdown to every profile;
* :func:`interpreter_prelude` is the zero-cost "compile everything at
  the interpreter tier" prefix — after it, every function is runnable
  at t=0, so *no schedule can ever have bubbles*;
* :func:`lift_schedule` translates a schedule for the original
  instance onto the tiered instance (levels shift by one, the prelude
  goes first).

The key property, verified in tests: on a tiered instance with the
prelude, ``makespan == total execution time`` for every schedule —
scheduling still matters, but only through *which level each call
runs at*, never through waiting.
"""

from __future__ import annotations

from typing import Dict

from .model import FunctionProfile, OCSPInstance
from .schedule import CompileTask, Schedule

__all__ = ["with_interpreter_tier", "interpreter_prelude", "lift_schedule"]


def with_interpreter_tier(
    instance: OCSPInstance, slowdown: float = 4.0
) -> OCSPInstance:
    """Add an interpretation tier below every function's level 0.

    The new level 0 has compile time 0 and execution time
    ``slowdown * e[old level 0]``; previous levels shift up by one.

    Args:
        instance: the original (compile-only) instance.
        slowdown: how much slower interpretation is than the baseline
            compiler's code (>= 1).

    Raises:
        ValueError: if ``slowdown < 1`` (the tier must not be faster
            than compiled code, or monotonicity breaks).
    """
    if slowdown < 1.0:
        raise ValueError("interpreter slowdown must be >= 1")
    profiles: Dict[str, FunctionProfile] = {}
    for fname, prof in instance.profiles.items():
        profiles[fname] = FunctionProfile(
            name=fname,
            compile_times=(0.0,) + prof.compile_times,
            exec_times=(prof.exec_times[0] * slowdown,) + prof.exec_times,
        )
    return OCSPInstance(
        profiles=profiles, calls=instance.calls, name=f"{instance.name}+interp"
    )


def interpreter_prelude(instance: OCSPInstance) -> Schedule:
    """The zero-cost prefix making every called function interpretable.

    Must be used on an instance produced by
    :func:`with_interpreter_tier` (level 0 compile times all zero).

    Raises:
        ValueError: if any called function's level 0 is not free.
    """
    for fname in instance.called_functions:
        if instance.profiles[fname].compile_times[0] != 0.0:
            raise ValueError(
                f"{fname!r} has a non-zero level-0 compile time; did you "
                "forget with_interpreter_tier()?"
            )
    return Schedule(
        tuple(CompileTask(fname, 0) for fname in instance.called_functions)
    )


def lift_schedule(
    tiered_instance: OCSPInstance, schedule: Schedule
) -> Schedule:
    """Translate an original-instance schedule onto the tiered instance.

    Level ``j`` becomes ``j + 1`` and the interpreter prelude is
    prepended, so the lifted schedule is valid for the tiered instance
    and preserves the original compilation decisions.
    """
    prelude = interpreter_prelude(tiered_instance)
    shifted = tuple(
        CompileTask(task.function, task.level + 1) for task in schedule
    )
    return Schedule(prelude.tasks + shifted)
