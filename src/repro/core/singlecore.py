"""Single-core optimal scheduling (Theorem 1, Section 4.1).

When compilation and execution share one core, the machine never idles:
it is always doing either compilation or execution work.  The make-span
is therefore the sum of all compile and execution times, and is
minimized by compiling each function exactly once, at its *most
cost-effective level* — the level ``l`` minimizing
``n_i * e[i][l] + c[i][l]`` where ``n_i`` is the number of invocations.
Any order of those compilations (e.g. on-demand, at first invocation)
achieves the optimum.
"""

from __future__ import annotations

from typing import Dict

from .model import OCSPInstance
from .schedule import CompileTask, Schedule

__all__ = [
    "most_cost_effective_levels",
    "single_core_optimal_schedule",
    "single_core_optimal_makespan",
]


def most_cost_effective_levels(instance: OCSPInstance) -> Dict[str, int]:
    """The level ``l_i`` per function minimizing
    ``n_i * e[i][l] + c[i][l]`` (ties to the lower level)."""
    return {
        fname: instance.profiles[fname].most_cost_effective_level(
            instance.call_count(fname)
        )
        for fname in instance.called_functions
    }


def single_core_optimal_schedule(instance: OCSPInstance) -> Schedule:
    """An optimal single-core schedule (Theorem 1).

    Compiles every called function once, at its most cost-effective
    level, in order of first appearance (the on-demand order used by
    most runtime systems — any order is equally optimal on one core).
    """
    levels = most_cost_effective_levels(instance)
    return Schedule(
        tuple(CompileTask(fname, levels[fname]) for fname in instance.called_functions)
    )


def single_core_optimal_makespan(instance: OCSPInstance) -> float:
    """Minimum single-core make-span:
    ``sum_i (c[i][l_i] + n_i * e[i][l_i])`` over called functions."""
    total = 0.0
    for fname in instance.called_functions:
        prof = instance.profiles[fname]
        n = instance.call_count(fname)
        total += prof.total_cost(prof.most_cost_effective_level(n), n)
    return total
