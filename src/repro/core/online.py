"""Toward online use of IAR (Section 8).

The paper notes that deploying IAR in a real runtime requires (a) a
predicted call sequence (e.g. from cross-run learning) and (b) estimated
compile/execution times, both of which are noisy — and asks how much
estimation error an advanced scheduling algorithm can tolerate.  This
module provides that machinery:

* :func:`perturb_times` — multiplicative lognormal-style noise on a
  profile's cost tables, with monotonicity re-imposed;
* :func:`estimate_instance` — the same, instance-wide;
* :func:`perturb_sequence` — call-sequence prediction errors (swapped,
  dropped, duplicated calls) at a configurable rate;
* :func:`online_iar_makespan` — plan on the noisy view, execute on the
  truth, report the resulting make-span.

``benchmarks/bench_ablation_noise.py`` sweeps the error magnitude and
shows how the IAR advantage degrades.
"""

from __future__ import annotations

import math
import random
import sys
from dataclasses import dataclass
from typing import List, Tuple

from .bounds import lower_bound
from .iar import IARParams, iar
from .makespan import simulate
from .model import FunctionProfile, OCSPInstance
from .schedule import CompileTask

__all__ = [
    "perturb_times",
    "estimate_instance",
    "perturb_sequence",
    "OnlineEvaluation",
    "online_iar_makespan",
]


def _monotone_fix(
    compile_times: List[float], exec_times: List[float]
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Re-impose Definition 1's monotonicity after perturbation.

    The forward clamp keeps equal adjacent entries ordered no matter
    which way the noise pushed them: compile times become the running
    maximum and exec times the running minimum of the perturbed values,
    so a tie can widen but never reorder.
    """
    for j in range(1, len(compile_times)):
        if compile_times[j] < compile_times[j - 1]:
            compile_times[j] = compile_times[j - 1]
        if exec_times[j] > exec_times[j - 1]:
            exec_times[j] = exec_times[j - 1]
    return tuple(compile_times), tuple(exec_times)


def _noise_factor(rng: random.Random, sigma: float) -> float:
    """One multiplicative noise draw, clamped to the finite range.

    ``rng.lognormvariate`` raises :class:`OverflowError` once the
    underlying normal draw exceeds ~709 (``exp`` overflows); at the
    extreme sigmas the noise-tolerance sweeps probe, that is a real
    code path.  The draw is made first so the rng stream position is
    identical whether or not the clamp engages: every non-overflowing
    seed keeps its exact historical output.
    """
    try:
        return rng.lognormvariate(0.0, sigma)
    except OverflowError:
        return sys.float_info.max


def _finite(value: float) -> float:
    """Clamp an overflowed product back to the largest finite float.

    A finite time times a finite factor can still overflow to ``inf``
    (e.g. ``1e300 * 1e10``); :class:`FunctionProfile` rejects
    non-finite entries, so the product is saturated instead.  Inputs
    are non-negative and factors finite, so ``nan`` cannot arise.
    """
    return value if math.isfinite(value) else sys.float_info.max


def perturb_times(
    profile: FunctionProfile,
    rel_error: float,
    rng: random.Random,
    correlated: bool = False,
) -> FunctionProfile:
    """Perturb every time by a factor ``exp(N(0, sigma))``.

    ``sigma`` is chosen so the expected relative deviation is about
    ``rel_error`` (for small errors ``sigma ~= rel_error``).  Compile
    times of real JITs are "largely stable" (Section 3), so they get
    half the execution-time noise.

    Args:
        profile: the true cost table.
        rel_error: target relative error, e.g. ``0.3`` for ±30%.
        rng: seeded random source (determinism is on the caller).
        correlated: if True, one scale factor per table is shared by
            all levels (plus a small per-level jitter), the way a
            size-based linear estimator errs — wrong in magnitude but
            mostly right about level *ranking*.  If False, every level
            errs independently.
    """
    if rel_error < 0:
        raise ValueError("rel_error must be non-negative")
    if rel_error == 0:
        return profile
    compile_sigma = rel_error / 2.0
    exec_sigma = rel_error
    if correlated:
        compile_scale = _noise_factor(rng, compile_sigma)
        exec_scale = _noise_factor(rng, exec_sigma)
        jitter = rel_error / 4.0
        compile_times = [
            _finite(c * _finite(compile_scale * _noise_factor(rng, jitter)))
            for c in profile.compile_times
        ]
        exec_times = [
            _finite(e * _finite(exec_scale * _noise_factor(rng, jitter)))
            for e in profile.exec_times
        ]
    else:
        compile_times = [
            _finite(c * _noise_factor(rng, compile_sigma))
            for c in profile.compile_times
        ]
        exec_times = [
            _finite(e * _noise_factor(rng, exec_sigma))
            for e in profile.exec_times
        ]
    c_fixed, e_fixed = _monotone_fix(compile_times, exec_times)
    return FunctionProfile(
        name=profile.name, compile_times=c_fixed, exec_times=e_fixed
    )


def estimate_instance(
    instance: OCSPInstance, rel_error: float, seed: int = 0
) -> OCSPInstance:
    """A noisy *estimated* view of ``instance`` (same call sequence)."""
    rng = random.Random(seed)
    profiles = {
        fname: perturb_times(prof, rel_error, rng)
        for fname, prof in sorted(instance.profiles.items())
    }
    return OCSPInstance(
        profiles=profiles, calls=instance.calls, name=f"{instance.name}~{rel_error:g}"
    )


def perturb_sequence(
    instance: OCSPInstance, error_rate: float, seed: int = 0
) -> OCSPInstance:
    """A noisy *predicted* call sequence (same profiles).

    Each position is, with probability ``error_rate``, subjected to one
    of: swap with the next call, drop, or duplicate.  The first call of
    every function is never dropped, so the prediction still mentions
    every function the run will touch (a requirement the paper puts on
    cross-run prediction).
    """
    if not 0 <= error_rate <= 1:
        raise ValueError("error_rate must be in [0, 1]")
    rng = random.Random(seed)
    calls = list(instance.calls)
    first_index = {f: instance.first_call_index(f) for f in instance.called_functions}
    protected = set(first_index.values())
    predicted: List[str] = []
    i = 0
    while i < len(calls):
        if rng.random() >= error_rate or i in protected:
            predicted.append(calls[i])
            i += 1
            continue
        action = rng.choice(("swap", "drop", "dup"))
        if action == "swap" and i + 1 < len(calls):
            predicted.append(calls[i + 1])
            predicted.append(calls[i])
            i += 2
        elif action == "dup":
            predicted.append(calls[i])
            predicted.append(calls[i])
            i += 1
        else:  # drop
            i += 1
    return OCSPInstance(
        profiles=instance.profiles,
        calls=tuple(predicted),
        name=f"{instance.name}~seq{error_rate:g}",
    )


@dataclass(frozen=True)
class OnlineEvaluation:
    """Result of planning on a noisy view and executing on the truth.

    Attributes:
        makespan: make-span of the noisy-planned schedule on the truth.
        oracle_makespan: make-span of the schedule IAR builds with
            perfect information (same parameters).
        lower_bound: the paper's execution-only lower bound.
        degradation: ``makespan / oracle_makespan`` (1.0 = no loss).
    """

    makespan: float
    oracle_makespan: float
    lower_bound: float
    degradation: float


def online_iar_makespan(
    true_instance: OCSPInstance,
    time_error: float = 0.0,
    sequence_error: float = 0.0,
    seed: int = 0,
    params: IARParams = IARParams(),
    compile_threads: int = 1,
) -> OnlineEvaluation:
    """Plan IAR on a noisy view of ``true_instance``; execute on the truth.

    The schedule is computed from perturbed times and/or a perturbed
    predicted call sequence, then simulated against the *actual* times
    and sequence.  Functions present in the truth but missing from the
    prediction are appended to the schedule at level 0 (the runtime's
    on-demand fallback), keeping the schedule legal.
    """
    noisy = true_instance
    if time_error > 0:
        noisy = estimate_instance(noisy, time_error, seed=seed)
    if sequence_error > 0:
        noisy = perturb_sequence(noisy, sequence_error, seed=seed + 1)

    planned = iar(noisy, params).schedule
    compiled = set(planned.functions())
    missing = [
        fname for fname in true_instance.called_functions if fname not in compiled
    ]
    if missing:
        planned = planned.extend(CompileTask(fname, 0) for fname in missing)

    truth = simulate(
        true_instance, planned, compile_threads=compile_threads, validate=False
    )
    oracle_sched = iar(true_instance, params).schedule
    oracle = simulate(
        true_instance, oracle_sched, compile_threads=compile_threads, validate=False
    )
    return OnlineEvaluation(
        makespan=truth.makespan,
        oracle_makespan=oracle.makespan,
        lower_bound=lower_bound(true_instance),
        degradation=truth.makespan / oracle.makespan if oracle.makespan else 1.0,
    )
