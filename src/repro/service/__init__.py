"""Scheduler-as-a-service: the multi-tenant online decision server.

The batch engines answer "what is the best schedule" after the fact;
this package answers "compile or not, and at which level" *online*,
per tenant, with bounded latency — the ROADMAP's heavy-traffic story.

* :mod:`repro.service.state` — the deterministic decision core:
  sharded per-tenant hotness state with LRU eviction, the Jikes-style
  promotion test, fault-injected graceful degradation (mirroring the
  reactive runtime's chain bit for bit), and the shared cross-tenant
  decision cache keyed by content fingerprints;
* :mod:`repro.service.protocol` — canonical JSONL over asyncio
  streams;
* :mod:`repro.service.server` — the asyncio server: batched decision
  rounds, bounded-queue backpressure, admission control, graceful
  shutdown;
* :mod:`repro.service.driver` — the load driver and deterministic
  replay behind ``repro serve replay`` (interleaved DaCapo traces,
  decisions/sec + latency percentiles through :mod:`repro.perf`,
  journal-based kill-and-restart resume).

Determinism contract: a fixed seed + event file yields a bitwise
identical decision log across runs, transports (in-process vs socket),
batch sizes, restarts, and telemetry on/off — including under a
non-null fault spec.  The wall-clock observability plane lives in
:mod:`repro.telemetry` (attached via ``DecisionEngine(telemetry=...)``)
and is write-only from the engine's point of view.  See
``docs/SERVICE.md``.
"""

from .driver import (
    ReplayReport,
    generate_events,
    load_events,
    replay_inproc,
    replay_socket,
    run_replay,
    write_events,
)
from .protocol import PROTOCOL_VERSION, ProtocolError, decode, encode
from .server import DecisionServer, ServerConfig
from .state import (
    DecisionCache,
    DecisionEngine,
    ServicePolicy,
    TenantState,
    promotion_level,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode",
    "encode",
    "DecisionCache",
    "DecisionEngine",
    "ServicePolicy",
    "TenantState",
    "promotion_level",
    "DecisionServer",
    "ServerConfig",
    "ReplayReport",
    "generate_events",
    "load_events",
    "replay_inproc",
    "replay_socket",
    "run_replay",
    "write_events",
]
