"""JSONL wire protocol of the decision service.

One UTF-8 JSON object per line, in both directions.  Client requests
carry an ``op``; server responses always carry ``ok`` (and echo enough
of the request — tenant, seq — to correlate without connection state).
Encoding is canonical (sorted keys, compact separators), so any two
servers answering the same request produce byte-identical lines — the
property the deterministic-replay contract rests on.

Requests:

* ``{"op": "profile", "tenant", "function", "compile_times",
  "exec_times"}`` — register/replace a function's cost table;
* ``{"op": "call", "tenant", "function", "seq"}`` — one invocation;
  the response is the compile decision.  An optional ``corr``
  (string or int) is a client correlation id: it is stamped verbatim
  into the decision record and journal; when absent the engine derives
  the deterministic default ``"<tenant>.<seq>"``, so the journal bytes
  never depend on whether telemetry is watching;
* ``{"op": "stats"}`` — engine summary;
* ``{"op": "ping"}`` — liveness;
* ``{"op": "shutdown"}`` — graceful drain + stop.

Error responses are ``{"ok": false, "error": "..."}``; an overloaded
server (admission control) adds ``"retry": true``.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode",
    "decode",
    "validate_event",
]

PROTOCOL_VERSION = 1

_OPS = frozenset({"profile", "call", "stats", "ping", "shutdown"})

# Fields every event-carrying op must provide (beyond "op").
_REQUIRED = {
    "profile": ("tenant", "function", "compile_times", "exec_times"),
    "call": ("tenant", "function"),
    "stats": (),
    "ping": (),
    "shutdown": (),
}


class ProtocolError(ValueError):
    """A malformed protocol line (bad JSON, unknown op, missing field)."""


def encode(message: Dict[str, object]) -> bytes:
    """One canonical JSONL line: sorted keys, compact, ``\\n``-terminated."""
    return (
        json.dumps(
            message, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        + b"\n"
    )


def decode(line: bytes) -> Dict[str, object]:
    """Parse and validate one request line.

    Raises:
        ProtocolError: non-JSON, non-object, unknown ``op``, or a
            missing required field — always with a one-line message
            safe to echo back to the client.
    """
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(doc).__name__}"
        )
    op = doc.get("op")
    if op not in _OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {sorted(_OPS)}"
        )
    validate_event(doc)
    return doc


def validate_event(doc: Dict[str, object]) -> None:
    """Field-level validation shared by the wire and the event file."""
    op = doc["op"]
    for field in _REQUIRED[op]:
        if field not in doc:
            raise ProtocolError(f"op {op!r} missing field {field!r}")
    if op == "profile":
        for field in ("compile_times", "exec_times"):
            value = doc[field]
            if not isinstance(value, (list, tuple)) or not value:
                raise ProtocolError(
                    f"op 'profile' field {field!r} must be a non-empty list"
                )
    if "corr" in doc and not isinstance(doc["corr"], (str, int)):
        raise ProtocolError(
            f"field 'corr' must be a string or int, "
            f"got {type(doc['corr']).__name__}"
        )


def error_response(
    message: str, retry: bool = False, seq: Optional[int] = None
) -> Dict[str, object]:
    """The standard failure response body."""
    doc: Dict[str, object] = {"ok": False, "error": message}
    if retry:
        doc["retry"] = True
    if seq is not None:
        doc["seq"] = seq
    return doc
