"""Load driver and deterministic replay (``repro serve replay``).

The driver turns DaCapo call sequences into a multi-tenant event
stream, replays it against a :class:`DecisionEngine` — in process or
through a real socket server — and reports decisions/sec and latency
percentiles through :mod:`repro.perf`.

Determinism contract:

* :func:`generate_events` is a pure function of ``(tenants, events,
  scale, seed)`` — same arguments, same stream, down to the interleave
  (one seeded rng draws which tenant speaks next, weighted by how many
  events each still holds);
* every decision depends only on the owning tenant's event order plus
  the fault seed, so the *decision log* — the replay's canonical
  JSONL output, sorted by global sequence number — is bitwise
  identical across runs, transports, and batch sizes.  Latency lives
  in the report, never in the log.

Kill-and-restart: the decision log doubles as a journal.  A resumed
replay reads it, replays every event through the engine (rebuilding
hotness state deterministically), but emits only the records whose
sequence numbers are not already journaled — no duplicate decisions,
and the completed file is bitwise equal to an uninterrupted run's.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import random

from ..perf.harness import TimingStats, robust_stats
from ..workloads import dacapo
from .protocol import ProtocolError, encode, validate_event
from .server import DecisionServer, ServerConfig
from .state import DecisionEngine

__all__ = [
    "generate_events",
    "write_events",
    "load_events",
    "decision_line",
    "ReplayReport",
    "replay_inproc",
    "replay_socket",
    "run_replay",
]


# ----------------------------------------------------------------------
# Event-stream generation
# ----------------------------------------------------------------------
def generate_events(
    tenants: int = 8,
    events: int = 1000,
    scale: float = 0.02,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """A deterministic multi-tenant event stream from DaCapo traces.

    Tenant ``i`` replays the Table 1 benchmark ``TABLE1[i % 9]`` (its
    own copy, seeded ``seed + i``, so two tenants on the same benchmark
    still differ).  Each tenant contributes ``ceil(events / tenants)``
    call events — profiles are sent lazily before a function's first
    call and do not count against the quota — and one rng interleaves
    the per-tenant streams weighted by remaining length.  Global
    ``seq`` numbers stamp the final order.
    """
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    if events < 1:
        raise ValueError("events must be >= 1")
    names = [info.name for info in dacapo.TABLE1]
    per_tenant = (events + tenants - 1) // tenants
    streams: List[List[Dict[str, object]]] = []
    for i in range(tenants):
        bench = names[i % len(names)]
        instance = dacapo.load(bench, scale=scale, seed=seed + i)
        tenant = f"t{i:03d}-{bench}"
        stream: List[Dict[str, object]] = []
        introduced: Set[str] = set()
        calls = instance.calls
        for k in range(per_tenant):
            fname = calls[k % len(calls)]
            if fname not in introduced:
                introduced.add(fname)
                profile = instance.profiles[fname]
                stream.append(
                    {
                        "op": "profile",
                        "tenant": tenant,
                        "function": fname,
                        "compile_times": list(profile.compile_times),
                        "exec_times": list(profile.exec_times),
                    }
                )
            stream.append(
                {"op": "call", "tenant": tenant, "function": fname}
            )
        streams.append(stream)

    rng = random.Random(seed)
    cursors = [0] * tenants
    remaining = [len(s) for s in streams]
    total = sum(remaining)
    interleaved: List[Dict[str, object]] = []
    for seq in range(total):
        pick = rng.randrange(sum(remaining))
        for i in range(tenants):
            if pick < remaining[i]:
                break
            pick -= remaining[i]
        event = dict(streams[i][cursors[i]])
        event["seq"] = seq
        interleaved.append(event)
        cursors[i] += 1
        remaining[i] -= 1
    return interleaved


def write_events(
    events: Sequence[Dict[str, object]], path: Union[str, Path]
) -> None:
    """Canonical JSONL event file (one event per line, sorted keys)."""
    with open(path, "wb") as fh:
        for event in events:
            fh.write(encode(event))


def load_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse and validate an event file.

    Raises:
        ProtocolError: malformed line (reported with its line number).
    """
    events: List[Dict[str, object]] = []
    with open(path, "rb") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line.decode("utf-8"))
                if not isinstance(doc, dict) or "op" not in doc:
                    raise ProtocolError("not an event object")
                validate_event(doc)
            except (ValueError, KeyError) as exc:
                raise ProtocolError(
                    f"{path}: line {lineno}: {exc}"
                ) from None
            events.append(doc)
    return events


def decision_line(record: Dict[str, object]) -> bytes:
    """One canonical decision-log line (what both runs must agree on)."""
    return encode(record)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayReport:
    """What a replay measured (the log itself stays timing-free).

    ``latency`` is the robust :class:`repro.perf.harness.TimingStats`
    over per-decision latencies (seconds); ``p50_ms``/``p99_ms`` come
    from the deterministic-reservoir ``service.latency_ms`` histogram
    when a metrics registry is attached, else from the raw samples.
    """

    tenants: int
    events: int
    decisions: int
    skipped: int
    wall_s: float
    decisions_per_sec: float
    latency: TimingStats
    p50_ms: float
    p99_ms: float
    summary: Dict[str, object]
    slo: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenants": self.tenants,
            "events": self.events,
            "decisions": self.decisions,
            "skipped": self.skipped,
            "wall_s": self.wall_s,
            "decisions_per_sec": self.decisions_per_sec,
            "latency": self.latency.as_dict(),
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "summary": self.summary,
            "slo": self.slo,
        }


def _percentile(samples: List[float], engine: DecisionEngine, q: float) -> float:
    if engine.metrics is not None:
        value = engine.metrics.histogram("service.latency_ms").percentile(q)
        if value is not None:
            return value
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index] * 1e3


def _build_report(
    engine: DecisionEngine,
    tenants: int,
    events: int,
    decisions: int,
    skipped: int,
    wall_s: float,
    latencies_s: List[float],
) -> ReplayReport:
    stats = robust_stats(latencies_s or [0.0])
    slo: Dict[str, object] = {}
    if engine.telemetry is not None:
        slo = engine.telemetry.slo.snapshot()
    return ReplayReport(
        tenants=tenants,
        events=events,
        decisions=decisions,
        skipped=skipped,
        wall_s=wall_s,
        decisions_per_sec=decisions / wall_s if wall_s > 0 else 0.0,
        latency=stats,
        p50_ms=_percentile(latencies_s, engine, 50.0),
        p99_ms=_percentile(latencies_s, engine, 99.0),
        summary=engine.summary(),
        slo=slo,
    )


def replay_inproc(
    events: Sequence[Dict[str, object]],
    engine: DecisionEngine,
    decided: Optional[Set[int]] = None,
) -> Tuple[List[Dict[str, object]], ReplayReport]:
    """Replay directly through the engine (no transport).

    ``decided`` is the resume set: events whose ``seq`` is in it are
    still replayed (the hotness state they built must be rebuilt) but
    their records are *not* re-emitted — the journal already has them.
    """
    decided = decided or set()
    records: List[Dict[str, object]] = []
    latencies: List[float] = []
    skipped = 0
    tenants = {str(e.get("tenant", "")) for e in events}
    started = time.perf_counter()
    for event in events:
        t0 = time.perf_counter()
        record = engine.observe(event)
        elapsed = time.perf_counter() - t0
        if record is None:
            continue
        latencies.append(elapsed)
        if engine.metrics is not None:
            engine.metrics.histogram("service.latency_ms").record(
                elapsed * 1e3
            )
        if engine.telemetry is not None:
            engine.telemetry.note_latency(
                str(record["tenant"]), elapsed * 1e3
            )
        if int(record["seq"]) in decided:
            skipped += 1
            continue
        records.append(record)
    wall = time.perf_counter() - started
    report = _build_report(
        engine, len(tenants), len(events), len(records), skipped, wall,
        latencies,
    )
    return records, report


async def _replay_one_tenant(
    host: str,
    port: int,
    events: Sequence[Dict[str, object]],
    window: int,
    telemetry=None,
) -> Tuple[List[Dict[str, object]], List[float]]:
    """One tenant's connection: pipelined sends, in-order receives.

    The server's single decision worker answers a connection's requests
    in arrival order, so a sliding window of ``window`` outstanding
    requests keeps the pipe full without reordering.
    """
    reader, writer = await asyncio.open_connection(host, port)
    records: List[Dict[str, object]] = []
    latencies: List[float] = []
    sent_at: List[Tuple[float, Dict[str, object]]] = []
    try:
        cursor = 0
        outstanding = 0
        while cursor < len(events) or outstanding:
            while cursor < len(events) and outstanding < window:
                event = events[cursor]
                writer.write(encode(event))
                sent_at.append((time.perf_counter(), event))
                cursor += 1
                outstanding += 1
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed mid-replay")
            response = json.loads(line.decode("utf-8"))
            t0, event = sent_at.pop(0)
            outstanding -= 1
            if not response.get("ok"):
                raise RuntimeError(
                    f"server refused {event.get('op')} seq="
                    f"{event.get('seq')}: {response.get('error')}"
                )
            if response.get("op") == "decision":
                latencies.append(time.perf_counter() - t0)
                record = {
                    key: response[key]
                    for key in (
                        "tenant", "seq", "function", "call", "action",
                        "level", "attempts", "corr",
                    )
                }
                records.append(record)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError) as exc:
            if telemetry is not None:
                telemetry.note_error(exc, "replay.close")
    return records, latencies


async def _replay_socket_async(
    events: Sequence[Dict[str, object]],
    engine: DecisionEngine,
    config: ServerConfig,
    window: int,
) -> Tuple[List[Dict[str, object]], List[float], DecisionServer]:
    server = DecisionServer(engine, config)
    await server.start()
    port = server.port
    by_tenant: Dict[str, List[Dict[str, object]]] = {}
    for event in events:
        by_tenant.setdefault(str(event["tenant"]), []).append(event)
    try:
        results = await asyncio.gather(
            *(
                _replay_one_tenant(
                    config.host, port, stream, window,
                    telemetry=engine.telemetry,
                )
                for _, stream in sorted(by_tenant.items())
            )
        )
    except Exception as exc:
        # Surface driver failures as structured error records too, so a
        # soak that dies mid-flight leaves evidence in the telemetry
        # plane (and its flight dump), not just a traceback.
        if engine.telemetry is not None:
            engine.telemetry.note_error(exc, "replay_socket")
        raise
    finally:
        server.stop()
        await server.serve_until_stopped()
    records: List[Dict[str, object]] = []
    latencies: List[float] = []
    for tenant_records, tenant_latencies in results:
        records.extend(tenant_records)
        latencies.extend(tenant_latencies)
    return records, latencies, server


def replay_socket(
    events: Sequence[Dict[str, object]],
    engine: DecisionEngine,
    config: Optional[ServerConfig] = None,
    window: int = 32,
    decided: Optional[Set[int]] = None,
) -> Tuple[List[Dict[str, object]], ReplayReport]:
    """Replay through a real asyncio server on a loopback socket.

    One connection per tenant, each pipelining up to ``window``
    requests; the batched decision worker serves them all.  Records
    come back per tenant and are merged by ``seq`` — which makes the
    output independent of socket scheduling, and bitwise equal to
    :func:`replay_inproc` on the same events.
    """
    decided = decided or set()
    config = config or ServerConfig()
    started = time.perf_counter()
    records, latencies, _server = asyncio.run(
        _replay_socket_async(events, engine, config, window)
    )
    wall = time.perf_counter() - started
    records.sort(key=lambda r: int(r["seq"]))
    skipped = sum(1 for r in records if int(r["seq"]) in decided)
    records = [r for r in records if int(r["seq"]) not in decided]
    tenants = {str(e.get("tenant", "")) for e in events}
    report = _build_report(
        engine, len(tenants), len(events), len(records), skipped, wall,
        latencies,
    )
    return records, report


# ----------------------------------------------------------------------
# Journaled replay (the CLI entry point's engine room)
# ----------------------------------------------------------------------
def load_decision_log(path: Union[str, Path]) -> Dict[int, bytes]:
    """Journaled decisions: ``seq`` → canonical line.  Missing file →
    empty (a fresh run)."""
    decided: Dict[int, bytes] = {}
    try:
        fh = open(path, "rb")
    except FileNotFoundError:
        return decided
    with fh:
        for line in fh:
            if not line.strip():
                continue
            doc = json.loads(line.decode("utf-8"))
            decided[int(doc["seq"])] = line
    return decided


def run_replay(
    events: Sequence[Dict[str, object]],
    engine: DecisionEngine,
    decisions_out: Optional[Union[str, Path]] = None,
    mode: str = "inproc",
    resume: bool = False,
    window: int = 32,
    config: Optional[ServerConfig] = None,
) -> ReplayReport:
    """Replay ``events``, journal the decision log, report the rates.

    With ``resume``, previously journaled records (by ``seq``) are kept
    verbatim and not re-emitted; the finished log is bitwise identical
    to an uninterrupted run's because the engine is deterministic.
    """
    if mode not in ("inproc", "socket"):
        raise ValueError(f"unknown replay mode {mode!r}")
    journaled: Dict[int, bytes] = {}
    if resume and decisions_out is not None:
        journaled = load_decision_log(decisions_out)
    decided = set(journaled)
    if mode == "socket":
        records, report = replay_socket(
            events, engine, config=config, window=window, decided=decided
        )
    else:
        records, report = replay_inproc(events, engine, decided=decided)
    if decisions_out is not None:
        merged: List[Tuple[int, bytes]] = [
            (seq, line) for seq, line in journaled.items()
        ]
        merged.extend(
            (int(record["seq"]), decision_line(record))
            for record in records
        )
        merged.sort(key=lambda pair: pair[0])
        with open(decisions_out, "wb") as fh:
            for _, line in merged:
                fh.write(line)
    return report
