"""The asyncio decision server (``repro serve run``).

Transport and flow control only — every decision is made by the
synchronous :class:`repro.service.DecisionEngine`, so nothing here can
change a decision.  The moving parts:

* **Backpressure** — requests land on one bounded :class:`asyncio.Queue`
  shared by all connections.  When it is full, ``await put`` blocks the
  connection's reader coroutine, which stops reading its socket, which
  fills the kernel buffers, which stalls the client's writes: TCP does
  the rest.  No request is dropped once read.
* **Admission control** — above ``admission_limit`` queued requests the
  server answers ``{"ok": false, "error": "overloaded", "retry": true}``
  instead of queueing: a bounded-latency refusal beats an unbounded
  queue (tallied as ``service.rejected``).
* **Batched decision rounds** — one worker drains up to ``batch_max``
  queued requests per round and runs them through the engine back to
  back, amortizing scheduling overhead; responses are written per
  connection, batch size and per-request latency go to ``service.*``
  histograms.
* **Graceful shutdown** — a ``shutdown`` op (or :meth:`stop`) stops
  intake, drains the queue, answers everything in flight, then closes
  connections and the listener.
* **Admin plane** — an HTTP request line on the same port (``GET
  /statusz HTTP/1.1``) is detected before JSONL decoding and routed to
  :class:`repro.telemetry.AdminPlane` (``/healthz``, ``/statusz``,
  ``/metricsz``, ``/flightz``), answered, and the connection closed.

When the engine carries a :class:`repro.telemetry.ServiceTelemetry`
plane, the server additionally records wall-clock request spans
(enqueue→admit→decide→respond), per-tenant SLO latency/rejections, the
live queue depth, structured ``service.errors{type=...}`` records for
every exception it would otherwise swallow, and each decision into the
flight recorder — none of which is ever read on the decision path, so
the journal stays bitwise identical with telemetry on or off.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..telemetry.admin import AdminPlane, parse_http_request_line
from .protocol import ProtocolError, decode, encode, error_response
from .state import DecisionEngine

__all__ = ["ServerConfig", "DecisionServer"]


@dataclass
class ServerConfig:
    """Tunables of one server process (transport-side only)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = kernel-assigned (reported by sockets())
    batch_max: int = 64
    queue_limit: int = 1024
    admission_limit: int = 4096
    extra: Dict[str, object] = field(default_factory=dict)


class DecisionServer:
    """One listening decision service around a :class:`DecisionEngine`."""

    def __init__(self, engine: DecisionEngine, config: ServerConfig) -> None:
        if config.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if config.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.engine = engine
        self.config = config
        self.telemetry = engine.telemetry
        self.admin = AdminPlane(self)
        # Created in start(): on Python 3.9 asyncio primitives bind to
        # the running loop at construction time.
        self._queue: Optional["asyncio.Queue"] = None
        self._stopping: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker: Optional[asyncio.Task] = None
        self.rejected = 0
        self.max_batch_seen = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._worker = asyncio.ensure_future(self._decision_worker())

    def sockets(self):
        """The bound sockets (for discovering a kernel-assigned port)."""
        assert self._server is not None, "start() first"
        return self._server.sockets

    @property
    def port(self) -> int:
        return self.sockets()[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`stop`) completes."""
        await self._stopping.wait()
        await self._drain_and_close()

    def stop(self) -> None:
        """Request a graceful stop (drain, answer, close)."""
        assert self._stopping is not None, "start() first"
        if self.telemetry is not None:
            self.telemetry.draining = True
        self._stopping.set()

    async def _drain_and_close(self) -> None:
        # Stop accepting new connections, then let the worker finish
        # everything already queued.
        assert self._server is not None
        if self.telemetry is not None:
            self.telemetry.draining = True
        self._server.close()
        await self._queue.join()
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
        await self._server.wait_closed()
        if self.telemetry is not None:
            self.telemetry.dump_flight("drain")

    # ------------------------------------------------------------------
    # Per-connection reader
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stopping.is_set():
                line = await reader.readline()
                if not line:
                    break
                http = parse_http_request_line(line)
                if http is not None:
                    await self._handle_admin(reader, writer, *http)
                    break
                try:
                    request = decode(line)
                except ProtocolError as exc:
                    writer.write(encode(error_response(str(exc))))
                    await writer.drain()
                    continue
                op = request["op"]
                if op == "ping":
                    writer.write(encode({"ok": True, "op": "pong"}))
                    await writer.drain()
                    continue
                if op == "stats":
                    writer.write(
                        encode(
                            {
                                "ok": True,
                                "op": "stats",
                                "summary": self.engine.summary(),
                                "rejected": self.rejected,
                            }
                        )
                    )
                    await writer.drain()
                    continue
                if op == "shutdown":
                    writer.write(encode({"ok": True, "op": "shutdown"}))
                    await writer.drain()
                    self.stop()
                    break
                # profile/call: admission control, then backpressure.
                if self._queue.qsize() >= self.config.admission_limit:
                    self.rejected += 1
                    self._count("service.rejected")
                    if self.telemetry is not None:
                        self.telemetry.note_rejection(
                            str(request.get("tenant", ""))
                        )
                    writer.write(
                        encode(
                            error_response(
                                "overloaded",
                                retry=True,
                                seq=request.get("seq"),
                            )
                        )
                    )
                    await writer.drain()
                    continue
                span = None
                if self.telemetry is not None:
                    span = self.telemetry.metrics.begin_span(
                        self._corr_of(request), str(request.get("tenant", ""))
                    )
                await self._queue.put(
                    (request, writer, time.perf_counter(), span)
                )
                if span is not None:
                    self.telemetry.metrics.mark_admitted(span)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError) as exc:
                # The peer vanished mid-close: harmless, but visible.
                self._note_error(exc, "connection.close")

    @staticmethod
    def _corr_of(request: Dict[str, object]) -> str:
        corr = request.get("corr")
        if corr is not None:
            return str(corr)
        return f"{request.get('tenant', '')}.{request.get('seq', '')}"

    async def _handle_admin(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
    ) -> None:
        """Answer one admin-plane HTTP request, then close the stream."""
        # Consume the (ignored) request headers up to the blank line.
        while True:
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        writer.write(self.admin.handle(method, path))
        await writer.drain()

    # ------------------------------------------------------------------
    # Batched decision rounds
    # ------------------------------------------------------------------
    async def _decision_worker(self) -> None:
        queue = self._queue
        batch_max = self.config.batch_max
        telemetry = self.telemetry
        while True:
            batch = [await queue.get()]
            while len(batch) < batch_max:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if len(batch) > self.max_batch_seen:
                self.max_batch_seen = len(batch)
            self._record("service.batch_size", len(batch))
            if telemetry is not None:
                telemetry.note_queue_depth(queue.qsize())
            pending_writers = []
            for request, writer, enqueued_at, span in batch:
                try:
                    response = self._answer(request)
                except Exception as exc:
                    # A worker death would silently hang every client;
                    # answer with a structured error instead.
                    record = self._note_error(exc, "decision-worker")
                    detail = "internal error"
                    if record is not None:
                        detail = f"internal error: {record['type']}"
                    response = error_response(detail, seq=request.get("seq"))
                latency_ms = (time.perf_counter() - enqueued_at) * 1e3
                self._record("service.latency_ms", latency_ms)
                if telemetry is not None:
                    if span is not None:
                        telemetry.metrics.mark_decided(span)
                    if response.get("op") == "decision":
                        telemetry.note_latency(
                            str(response["tenant"]), latency_ms
                        )
                if not writer.is_closing():
                    writer.write(encode(response))
                    pending_writers.append(writer)
                if span is not None:
                    telemetry.metrics.finish_span(span)
                queue.task_done()
            for writer in pending_writers:
                try:
                    await writer.drain()
                except (ConnectionError, OSError) as exc:
                    self._note_error(exc, "writer.drain")

    def _answer(self, request: Dict[str, object]) -> Dict[str, object]:
        try:
            record = self.engine.observe(request)
        except ValueError as exc:
            self._note_error(exc, "engine.observe")
            return error_response(str(exc), seq=request.get("seq"))
        if record is None:  # profile registration
            return {
                "ok": True,
                "op": "profile",
                "tenant": request.get("tenant"),
                "function": request.get("function"),
            }
        response = {"ok": True, "op": "decision"}
        response.update(record)
        return response

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def _count(self, name: str) -> None:
        if self.engine.metrics is not None:
            self.engine.metrics.counter(name).inc()

    def _note_error(self, exc: BaseException, where: str):
        """Structured error record + ``service.errors{type=...}`` count
        (``None`` when no telemetry plane is attached)."""
        if self.telemetry is None:
            return None
        return self.telemetry.note_error(exc, where)

    def _record(self, name: str, value: float) -> None:
        if self.engine.metrics is not None:
            self.engine.metrics.histogram(name).record(value)
