"""The deterministic decision core behind ``repro serve``.

Everything that decides lives here, synchronously, with no clock and no
I/O: the asyncio server (:mod:`repro.service.server`) and the replay
driver (:mod:`repro.service.driver`) are thin transports around
:class:`DecisionEngine`.  That split is what makes the service
bit-reproducible — a decision depends only on the owning tenant's event
order (fixed by the event file), the policy knobs, and the fault spec's
seed, never on batch boundaries, socket interleaving, or wall time.

The pieces:

* :func:`promotion_level` — the count-based promotion test, the same
  Jikes RVM cost/benefit inequality as
  :meth:`repro.vm.costbenefit.CostBenefitModel.recompilation_level`
  (``recompile at m iff e_m*k + c_m < e_l*k``), applied to the calls a
  function has already received as the predictor of its future;
* :class:`TenantState` — one tenant's hotness shard: per-function call
  counts and installed levels with LRU eviction of cold functions;
* :class:`DecisionEngine` — sharded tenant map, the shared cross-tenant
  decision cache, fault-injected degradation, and ``service.*``
  metrics/trace instrumentation;
* :class:`DecisionCache` — memoized decision outcomes keyed by a
  content fingerprint of *everything* a decision depends on.  A hit
  replays the chain's fault tallies into the injector, so summaries are
  bitwise identical whether or not the cache served.

The degradation chain deliberately mirrors
:meth:`repro.vm.runtime.RuntimeSimulator._enqueue_faulty` — same
``(function, level, attempt)`` decision keys, same retry-one-level-
lower policy, same guaranteed level-0 fail-safe on a first encounter,
same ``note_*`` tallies — so a fault verdict is identical no matter
which path asks, and a null spec is normalized to "no injector at all"
exactly like the runtime does (zero-rate runs are bitwise equal to
fault-free runs).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..core.model import FunctionProfile
from ..faults.injector import FaultInjector
from ..faults.spec import FaultSpec
from ..store.fingerprint import canonical_encode

__all__ = [
    "ServicePolicy",
    "promotion_level",
    "FunctionState",
    "TenantState",
    "DecisionCache",
    "DecisionEngine",
]


@dataclass(frozen=True)
class ServicePolicy:
    """Knobs of the online decision policy.

    Attributes:
        optimism: future-calls multiplier — a function seen ``k`` times
            is predicted to run ``k * optimism`` more (the "past
            predicts future" estimator Jikes RVM uses, Section 6.2.1).
        max_functions: per-tenant hotness-state budget; the coldest
            (least recently called) functions are evicted beyond it.
        max_tenants: per-shard tenant budget; least recently active
            tenants are evicted beyond it.
    """

    optimism: float = 1.0
    max_functions: int = 4096
    max_tenants: int = 1024

    def knobs(self) -> Tuple[float, int, int]:
        return (self.optimism, self.max_functions, self.max_tenants)


def promotion_level(
    profile: FunctionProfile, current_level: int, future_calls: float
) -> Optional[int]:
    """Jikes RVM's recompilation test against a raw profile.

    The same inequality as
    :meth:`repro.vm.costbenefit.CostBenefitModel.recompilation_level`
    (recompile at the minimal-cost level ``m`` above ``l`` iff
    ``e_m * k + c_m < e_l * k``); reimplemented over a bare
    :class:`FunctionProfile` because service tenants stream profiles
    one at a time and never hold a whole :class:`OCSPInstance`.
    """
    levels = profile.num_levels
    if current_level >= levels - 1:
        return None
    best_level: Optional[int] = None
    best_cost = float("inf")
    for j in range(current_level + 1, levels):
        cost = profile.exec_times[j] * future_calls + profile.compile_times[j]
        if cost < best_cost:
            best_cost = cost
            best_level = j
    stay_cost = profile.exec_times[current_level] * future_calls
    if best_level is not None and best_cost < stay_cost:
        return best_level
    return None


class FunctionState:
    """One function's hotness state inside one tenant."""

    __slots__ = ("profile", "calls", "installed")

    def __init__(self, profile: FunctionProfile) -> None:
        self.profile = profile
        self.calls = 0
        self.installed = -1  # nothing compiled yet


class TenantState:
    """One tenant's shard: profiles, call counts, installed levels.

    Functions are kept in LRU order (most recently called last); when
    the tenant exceeds its ``max_functions`` budget the coldest entries
    are dropped — their hotness is forgotten, and a re-encountered
    function restarts from scratch (deterministically: eviction depends
    only on the tenant's own event order).
    """

    __slots__ = ("tenant", "shard", "functions", "decisions", "last_seq")

    def __init__(self, tenant: str, shard: int = 0) -> None:
        self.tenant = tenant
        self.shard = shard
        self.functions: "OrderedDict[str, FunctionState]" = OrderedDict()
        self.decisions = 0
        self.last_seq = -1

    def register(self, fname: str, profile: FunctionProfile) -> None:
        state = self.functions.get(fname)
        if state is None:
            self.functions[fname] = FunctionState(profile)
        else:
            state.profile = profile
        self.functions.move_to_end(fname)

    def evict_cold(self, max_functions: int) -> int:
        evicted = 0
        while len(self.functions) > max_functions:
            self.functions.popitem(last=False)
            evicted += 1
        return evicted


class DecisionCache:
    """Shared cross-tenant memo of decision outcomes.

    The key fingerprints everything a decision depends on — profile
    content, function name (fault draws are keyed by it), call count,
    installed level, policy knobs, and the canonical fault spec — so a
    hit is exact, not heuristic.  The value carries the decision record
    *and* the chain's fault-tally delta; serving from cache replays the
    delta into the injector, keeping fault summaries bitwise identical
    with and without the cache.
    """

    __slots__ = ("max_entries", "entries", "hits", "misses")

    def __init__(self, max_entries: int = 65536) -> None:
        self.max_entries = max_entries
        self.entries: "OrderedDict[str, Tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str):
        value = self.entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self.entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, value) -> None:
        self.entries[key] = value
        self.entries.move_to_end(key)
        while len(self.entries) > self.max_entries:
            self.entries.popitem(last=False)


FaultsLike = Union[FaultInjector, FaultSpec, str, None]


class DecisionEngine:
    """Sharded, fault-injectable, cache-backed decision state.

    Args:
        policy: the :class:`ServicePolicy` knobs.
        shards: tenant-map shard count (a deterministic hash of the
            tenant id picks the shard; sharding is a scaling structure
            and never changes a decision).
        faults: optional injector/spec.  Normalized exactly like
            :class:`repro.vm.runtime.RuntimeSimulator`: a null spec
            becomes ``None`` so zero-rate runs take the untouched clean
            path and stay bitwise equal to fault-free runs.
        cache: optional shared :class:`DecisionCache`.
        metrics: optional :class:`repro.observability.MetricsRegistry`;
            receives ``service.*`` counters and, through the injector,
            the ``faults.*`` tallies.
        tracer: optional :class:`repro.observability.Tracer`; decisions
            and fault events become instants on the virtual timeline
            (the global event sequence number is the clock).
        telemetry: optional
            :class:`repro.telemetry.ServiceTelemetry` — the *wall-clock*
            plane.  Strictly write-only from the engine's point of view:
            decisions are reported to it, nothing is ever read back, so
            attaching it cannot change a decision or a journal byte.
    """

    def __init__(
        self,
        policy: Optional[ServicePolicy] = None,
        shards: int = 8,
        faults: FaultsLike = None,
        cache: Optional[DecisionCache] = None,
        metrics=None,
        tracer=None,
        telemetry=None,
    ) -> None:
        self.policy = policy or ServicePolicy()
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards: List[Dict[str, TenantState]] = [
            {} for _ in range(shards)
        ]
        self._lru: List["OrderedDict[str, None]"] = [
            OrderedDict() for _ in range(shards)
        ]
        injector = None
        if faults is not None:
            injector = (
                faults
                if isinstance(faults, FaultInjector)
                else FaultInjector(faults, metrics=metrics)
            )
        # The runtime's normalization (vm/runtime.py): a null spec takes
        # the clean path so zero-rate output is bitwise fault-free.
        self.faults = (
            None if injector is None or injector.null else injector
        )
        self._spec_key = (
            self.faults.spec.canonical() if self.faults is not None else ""
        )
        self.cache = cache
        self.metrics = metrics
        self.tracer = tracer
        self.telemetry = telemetry
        self.decisions = 0
        self.events = 0

    # ------------------------------------------------------------------
    # Tenant lookup / eviction
    # ------------------------------------------------------------------
    def _shard_of(self, tenant: str) -> int:
        digest = hashlib.sha256(tenant.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % len(self.shards)

    def tenant_state(self, tenant: str) -> TenantState:
        index = self._shard_of(tenant)
        shard = self.shards[index]
        state = shard.get(tenant)
        if state is None:
            state = shard[tenant] = TenantState(tenant, index)
            self._count("service.tenants.created")
        lru = self._lru[index]
        lru[tenant] = None
        lru.move_to_end(tenant)
        while len(shard) > self.policy.max_tenants:
            coldest, _ = lru.popitem(last=False)
            del shard[coldest]
            self._count("service.evictions.tenants")
        return state

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _instant(self, name: str, seq: int, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                name, "service", float(seq), category="service", args=args
            )

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def observe(self, event: Dict[str, object]) -> Optional[Dict[str, object]]:
        """Apply one event; returns the decision record for a call.

        ``profile`` events register/replace a function's cost table and
        return ``None``; ``call`` events bump the hotness state and
        always return a decision record (``action`` of ``none``,
        ``compile``, or ``fallback``).
        """
        op = event.get("op")
        tenant = str(event.get("tenant", ""))
        if not tenant:
            raise ValueError("event missing tenant")
        self.events += 1
        self._count("service.events")
        state = self.tenant_state(tenant)
        if op == "profile":
            profile = FunctionProfile(
                name=str(event["function"]),
                compile_times=tuple(
                    float(x) for x in event["compile_times"]
                ),
                exec_times=tuple(float(x) for x in event["exec_times"]),
            )
            state.register(profile.name, profile)
            dropped = state.evict_cold(self.policy.max_functions)
            if dropped:
                self._count("service.evictions.functions", dropped)
            self._count("service.profiles")
            return None
        if op == "call":
            return self._decide(state, event)
        raise ValueError(f"unknown event op {op!r}")

    # ------------------------------------------------------------------
    # The decision itself
    # ------------------------------------------------------------------
    def _decide(
        self, state: TenantState, event: Dict[str, object]
    ) -> Dict[str, object]:
        fname = str(event["function"])
        seq = int(event.get("seq", self.events))
        fstate = state.functions.get(fname)
        if fstate is None:
            raise ValueError(
                f"call for unregistered function {fname!r} "
                f"(tenant {state.tenant!r} must send a profile first)"
            )
        state.functions.move_to_end(fname)
        fstate.calls += 1
        state.last_seq = seq

        action, level, attempts = self._resolve(state, fname, fstate)

        state.decisions += 1
        self.decisions += 1
        self._count("service.decisions")
        self._count(f"service.tenant.{state.tenant}.decisions")
        if action == "compile":
            self._count("service.compiles")
            fstate.installed = level
        # The correlation id is deterministic whether supplied by the
        # client or derived here, so the journal bytes are identical
        # with telemetry on or off.
        corr = event.get("corr")
        record = {
            "tenant": state.tenant,
            "seq": seq,
            "function": fname,
            "call": fstate.calls,
            "action": action,
            "level": level,
            "attempts": attempts,
            "corr": str(corr) if corr is not None else f"{state.tenant}.{seq}",
        }
        self._instant(
            f"decision {fname} {action}",
            seq,
            tenant=state.tenant,
            function=fname,
            action=action,
            level=level,
        )
        if self.telemetry is not None:
            tally = dict(self.faults.tally) if self.faults is not None else None
            self.telemetry.note_decision(event, record, state.shard, tally)
        return record

    def _resolve(
        self, state: TenantState, fname: str, fstate: FunctionState
    ) -> Tuple[str, int, int]:
        """(action, level, attempts) for one call, cache- and
        fault-aware.  Pure in everything but tallies."""
        profile = fstate.profile
        must_install = fstate.installed < 0
        if must_install:
            target: Optional[int] = 0
        else:
            future = fstate.calls * self.policy.optimism
            target = promotion_level(profile, fstate.installed, future)
        if target is None:
            return "none", fstate.installed, 0

        if self.cache is not None:
            key = self._cache_key(fname, fstate, target)
            hit = self.cache.get(key)
            self._count(
                "service.cache.hits" if hit is not None else
                "service.cache.misses"
            )
            if self.telemetry is not None:
                self.telemetry.note_cache(
                    state.tenant, state.shard, hit is not None
                )
            if hit is not None:
                action, level, attempts, delta, wasted = hit
                if self.faults is not None:
                    self.faults.replay_tally(delta, wasted)
                return action, level, attempts
        outcome = self._degrade(fname, profile, target, must_install,
                                fstate.installed)
        if self.cache is not None:
            self.cache.put(key, outcome)
        action, level, attempts, _, _ = outcome
        return action, level, attempts

    def _cache_key(
        self, fname: str, fstate: FunctionState, target: int
    ) -> str:
        profile = fstate.profile
        payload = canonical_encode(
            {
                "kind": "service-decision",
                "function": fname,
                "compile_times": list(profile.compile_times),
                "exec_times": list(profile.exec_times),
                "calls": fstate.calls,
                "installed": fstate.installed,
                "target": target,
                "policy": list(self.policy.knobs()),
                "faults": self._spec_key,
            }
        )
        return hashlib.sha256(payload).hexdigest()

    def _degrade(
        self,
        fname: str,
        profile: FunctionProfile,
        level: int,
        must_install: bool,
        achieved: int,
    ) -> Tuple[str, int, int, Dict[str, int], float]:
        """The degradation chain of one compile decision.

        Mirrors :meth:`RuntimeSimulator._enqueue_faulty` minus the
        clock: same ``(function, level, attempt)`` fault keys, same
        retry-one-level-lower policy, same guaranteed level-0 fail-safe
        on a first encounter, same tallies.  Returns the resolved
        ``(action, level, attempts, tally-delta, wasted-delta)``; the
        deltas are a before/after diff of the injector's tally so a
        cache hit can replay *exactly* what the chain counted —
        including the failures and stalls the injector tallies
        internally.
        """
        faults = self.faults
        if faults is None:
            return "compile", level, 1, {}, 0.0
        spec = faults.spec
        before = dict(faults.tally)
        wasted_before = faults.wasted_compile_time

        def close(action: str, out_level: int, attempts: int):
            delta = {
                key: faults.tally[key] - before[key]
                for key in faults.tally
                if faults.tally[key] != before[key]
            }
            wasted = faults.wasted_compile_time - wasted_before
            return action, out_level, attempts, delta, wasted

        lvl = level
        attempt = 1
        while True:
            if not must_install and lvl <= achieved:
                # Degraded below what is already installed: keep
                # running at the current tier.
                faults.note_fallback()
                self._instant(
                    f"fallback {fname}", self.events,
                    function=fname, kept_level=achieved,
                )
                return close("fallback", achieved, attempt - 1)
            c = profile.compile_times[lvl]
            factor = faults.compile_time_factor(fname, lvl, attempt)
            if factor != 1.0:
                c *= factor
            guaranteed = (
                must_install and attempt > spec.retries and lvl == 0
            )
            failed = not guaranteed and faults.compile_fails(
                fname, lvl, attempt
            )
            if not failed:
                if must_install and attempt > spec.retries:
                    faults.note_forced_install()
                return close("compile", lvl, attempt)
            faults.note_wasted(c)
            self._instant(
                f"compile-fail {fname} L{lvl}", self.events,
                function=fname, level=lvl, attempt=attempt,
            )
            if attempt > spec.retries and not must_install:
                faults.note_fallback()
                return close("fallback", achieved, attempt)
            if attempt <= spec.retries:
                faults.note_retry()
                lvl = max(0, lvl - 1)
            else:
                lvl = 0  # next round is the guaranteed fail-safe
            attempt += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Counts for stats responses and reports (deterministic)."""
        tenants = sum(len(shard) for shard in self.shards)
        doc: Dict[str, object] = {
            "tenants": tenants,
            "events": self.events,
            "decisions": self.decisions,
            "shards": len(self.shards),
        }
        if self.cache is not None:
            doc["cache_hits"] = self.cache.hits
            doc["cache_misses"] = self.cache.misses
        if self.faults is not None:
            doc["faults"] = self.faults.summary()
        return doc
