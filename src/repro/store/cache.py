"""The on-disk, content-addressed result store.

Layout (all JSON, human-inspectable)::

    <root>/
      objects/
        ab/
          ab3f...e2.json     # one entry per unit fingerprint

Each entry holds the rows a driver produced plus enough metadata to
audit and garbage-collect it::

    {
      "version": 1,
      "fingerprint": "ab3f...e2",
      "driver": "figure5",
      "benchmark": "antlr",
      "code_version": "...",
      "created_at": 1764979200.0,
      "rows": [...]
    }

Writes are atomic: the entry is serialized to a ``*.tmp`` file in the
final directory and ``os.replace``d into place, so readers never see a
torn file and a crash mid-write leaves only a stray ``*.tmp`` (removed
by :meth:`ResultStore.gc`).  Corrupt or truncated entries read as
misses by default, never as errors — the cache must only ever be able
to save work, not break a run.  Callers that would rather surface the
damage than silently recompute (the experiment runner, whose journal
must stay trustworthy) pass ``strict=True`` and get a
:class:`StoreCorruptionError` naming the entry instead.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["ResultStore", "StoreStats", "StoreCorruptionError"]

_ENTRY_VERSION = 1


class StoreCorruptionError(ValueError):
    """A store entry exists but cannot be trusted (strict reads only).

    Subclasses :class:`ValueError` so the CLI's error taxonomy turns it
    into a one-line ``repro: error: ...`` diagnostic with exit code 2.
    """


class StoreStats:
    """Plain-data summary of a store's contents (see ``repro cache stats``)."""

    __slots__ = ("root", "entries", "total_bytes", "by_driver", "oldest", "newest")

    def __init__(self, root, entries, total_bytes, by_driver, oldest, newest):
        self.root = root
        self.entries = entries
        self.total_bytes = total_bytes
        self.by_driver = by_driver
        self.oldest = oldest
        self.newest = newest

    def as_dict(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "by_driver": dict(sorted(self.by_driver.items())),
            "oldest": self.oldest,
            "newest": self.newest,
        }


class ResultStore:
    """Content-addressed store of experiment rows, keyed by fingerprint.

    ``hits``/``misses``/``puts`` count this instance's traffic; the
    runner mirrors them into its metrics registry.  All operations are
    safe under concurrent writers on one filesystem (atomic rename;
    last writer wins, and both writers wrote identical content by
    construction — the key is a content hash of the inputs).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def path_for(self, fingerprint: str) -> Path:
        """Entry path for a fingerprint (two-level fan-out, git-style)."""
        if len(fingerprint) < 3:
            raise ValueError(f"implausible fingerprint: {fingerprint!r}")
        return self.objects_dir / fingerprint[:2] / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(
        self, fingerprint: str, strict: bool = False
    ) -> Optional[List[Dict[str, object]]]:
        """The cached rows for ``fingerprint``, or ``None`` on a miss.

        Torn, corrupt, or version-mismatched entries count as misses —
        unless ``strict`` is set, in which case an *existing* but
        damaged entry raises :class:`StoreCorruptionError` (a missing
        or merely version-skewed entry is still a plain miss; only
        structural damage is escalated).
        """
        path = self.path_for(fingerprint)
        try:
            doc = json.loads(path.read_text())
            if doc.get("version") != _ENTRY_VERSION:
                # A version skew is a legitimate miss even in strict
                # mode: old entries are stale, not damaged.
                self.misses += 1
                return None
            if doc.get("fingerprint") != fingerprint:
                raise ValueError("fingerprint mismatch inside entry")
            rows = doc["rows"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, OSError) as exc:
            if strict:
                raise StoreCorruptionError(
                    f"corrupt store entry {path}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            # A damaged entry is dead weight: drop it so gc/stats stay
            # truthful and the next put rewrites it cleanly.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return rows

    def put(
        self,
        fingerprint: str,
        rows: List[Dict[str, object]],
        driver: str = "",
        benchmark: str = "",
        code_version: str = "",
    ) -> Path:
        """Atomically write an entry; returns its path."""
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "version": _ENTRY_VERSION,
            "fingerprint": fingerprint,
            "driver": driver,
            "benchmark": benchmark,
            "code_version": code_version,
            "created_at": time.time(),
            "rows": rows,
        }
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(doc, separators=(",", ":")))
        os.replace(tmp, path)
        self.puts += 1
        return path

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).is_file()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _entries(self):
        if not self.objects_dir.is_dir():
            return
        for sub in sorted(self.objects_dir.iterdir()):
            if sub.is_dir():
                for path in sorted(sub.glob("*.json")):
                    yield path

    def stats(self) -> StoreStats:
        """Entry count, size on disk, and per-driver breakdown."""
        entries = 0
        total_bytes = 0
        by_driver: Dict[str, int] = {}
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for path in self._entries():
            try:
                doc = json.loads(path.read_text())
            except (ValueError, OSError):
                continue
            entries += 1
            total_bytes += path.stat().st_size
            driver = doc.get("driver") or "?"
            by_driver[driver] = by_driver.get(driver, 0) + 1
            created = doc.get("created_at")
            if isinstance(created, (int, float)):
                oldest = created if oldest is None else min(oldest, created)
                newest = created if newest is None else max(newest, created)
        return StoreStats(self.root, entries, total_bytes, by_driver, oldest, newest)

    def gc(
        self,
        max_age_days: Optional[float] = None,
        code_version: Optional[str] = None,
    ) -> int:
        """Remove stale entries; returns the number of files removed.

        Always removes stray ``*.tmp`` files (crashed writers) and
        unreadable entries.  With ``max_age_days``, also removes entries
        older than that; with ``code_version``, entries written under
        any *other* code version (i.e. invalidated by a salt bump).
        """
        removed = 0
        now = time.time()
        if self.objects_dir.is_dir():
            for tmp in self.objects_dir.glob("*/*.tmp"):
                try:
                    tmp.unlink()
                    removed += 1
                except OSError:
                    pass
        for path in list(self._entries()):
            drop = False
            try:
                doc = json.loads(path.read_text())
                if doc.get("version") != _ENTRY_VERSION:
                    drop = True
                created = doc.get("created_at", now)
                if max_age_days is not None and (
                    not isinstance(created, (int, float))
                    or now - created > max_age_days * 86400.0
                ):
                    drop = True
                if (
                    code_version is not None
                    and doc.get("code_version") != code_version
                ):
                    drop = True
            except (ValueError, OSError):
                drop = True
            if drop:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def clear(self) -> int:
        """Remove every entry (and stray tmp file); returns the count."""
        removed = 0
        if self.objects_dir.is_dir():
            for sub in list(self.objects_dir.iterdir()):
                if not sub.is_dir():
                    continue
                for path in list(sub.iterdir()):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed
