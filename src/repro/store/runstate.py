"""Suite-run checkpointing: resume a killed study where it stopped.

A :class:`RunState` is an append-only JSONL journal.  The first record
describes the planned unit grid (unit key → fingerprint); every
completed unit then appends one record carrying its status, rows, and
error.  Appends are flushed and fsynced per unit, so after a crash the
journal holds every unit that finished — at worst the final line is
torn, and :func:`load_runstate` silently drops a trailing partial line
(it can only be the interrupted append).

On resume the runner replays the journal and skips any unit whose
recorded fingerprint still matches the unit it is about to run —
a changed instance, driver argument, or code-version salt changes the
fingerprint and forces recomputation, exactly like a cache miss.
Journal rows are stored inline so resume works with or without a
:class:`~repro.store.cache.ResultStore` behind it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["UnitRecord", "RunState", "load_runstate"]

_STATE_VERSION = 1

# Statuses that carry reusable rows.  "failed"/"timed_out" records are
# journaled too (for reporting), but a resume retries those units.
_RESUMABLE = frozenset({"cached", "computed", "retried"})


class UnitRecord:
    """One journaled unit outcome.

    ``error`` is the one-line human summary; ``failure`` (when the unit
    failed) is the structured record behind it — exception type, unit
    key, message, and a short traceback tail — so a journal can be
    mined for failure patterns without parsing strings.
    """

    __slots__ = (
        "key", "fingerprint", "status", "rows", "error", "attempts",
        "failure",
    )

    def __init__(
        self,
        key: str,
        fingerprint: str,
        status: str,
        rows: Optional[List[Dict[str, object]]] = None,
        error: Optional[str] = None,
        attempts: int = 1,
        failure: Optional[Dict[str, object]] = None,
    ) -> None:
        self.key = key
        self.fingerprint = fingerprint
        self.status = status
        self.rows = rows
        self.error = error
        self.attempts = attempts
        self.failure = failure

    @property
    def resumable(self) -> bool:
        return self.status in _RESUMABLE and self.rows is not None

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": "unit",
            "key": self.key,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "rows": self.rows,
            "error": self.error,
            "attempts": self.attempts,
            "failure": self.failure,
        }


class RunState:
    """Writer for a suite-run journal (see module docs)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = None

    def begin(self, plan: Dict[str, str]) -> None:
        """Start a fresh journal for ``plan`` (unit key → fingerprint).

        Truncates any previous journal at this path: the caller decides
        whether to :func:`load_runstate` it first (``--resume``).
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._append({"kind": "header", "version": _STATE_VERSION, "plan": plan})

    def record(self, record: UnitRecord) -> None:
        """Append one completed unit, durably (flush + fsync)."""
        if self._fh is None:
            raise RuntimeError("RunState.begin() must be called before record()")
        self._append(record.as_dict())

    def _append(self, doc: Dict[str, object]) -> None:
        self._fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunState":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_runstate(path: Union[str, Path]) -> Dict[str, UnitRecord]:
    """Completed units from a journal: unit key → latest record.

    Missing file → empty dict.  A torn final line (crash mid-append) is
    dropped; a torn line anywhere else raises ``ValueError`` — that is
    not crash damage but file corruption, and resuming from it could
    silently lose completed units.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except FileNotFoundError:
        return {}
    records: Dict[str, UnitRecord] = {}
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            if index == len(lines) - 1:
                break  # interrupted final append
            raise ValueError(
                f"{path}: corrupt journal line {index + 1} "
                "(not the final line, so not crash damage)"
            )
        if doc.get("kind") != "unit":
            continue
        records[doc["key"]] = UnitRecord(
            key=doc["key"],
            fingerprint=doc.get("fingerprint", ""),
            status=doc.get("status", ""),
            rows=doc.get("rows"),
            error=doc.get("error"),
            attempts=int(doc.get("attempts", 1)),
            failure=doc.get("failure"),
        )
    return records
