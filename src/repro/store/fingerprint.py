"""Content fingerprints for experiment work units.

A *unit* is one (driver, benchmark) cell of the study grid.  Its result
is fully determined by four inputs: the benchmark instance (function
profiles — the ``c``/``e`` tables — and the call sequence), the driver's
name, the driver's keyword arguments, and the code that computes the
rows.  The fingerprint is a SHA-256 digest over a canonical encoding of
exactly those inputs, so a cached result is reused *iff* recomputing it
would reproduce it:

* editing a compile/exec time, the call sequence, or the suite key
  changes the digest;
* renaming a driver or passing different kwargs changes the digest;
* result-affecting code changes are captured by :data:`CODE_VERSION` —
  bump it whenever a scheduler, simulator, model, or driver changes its
  numbers (the store cannot see code edits on its own).

Dict ordering, float formatting, and platform never leak into the
digest: mappings are sorted by key and floats are encoded via
``repr`` (shortest round-trip form, identical across CPython builds).
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping, Optional

from ..core.model import OCSPInstance

__all__ = [
    "CODE_VERSION",
    "canonical_encode",
    "fingerprint_instance",
    "fingerprint_unit",
]

# Result-affecting code version.  Part of every unit fingerprint; bump
# on any change that alters driver output rows (scheduler behaviour,
# simulator semantics, cost-benefit models, row layout).
CODE_VERSION = "2026-08-06.1"


def _canon(value):
    """Reduce ``value`` to canonical plain data (see module docs)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr() is the shortest exact round-trip; int-valued floats
        # still encode differently from ints ("1.0" vs 1), as they must:
        # drivers can branch on the type.
        return f"float:{value!r}"
    if isinstance(value, Mapping):
        items = [(str(k), _canon(v)) for k, v in value.items()]
        items.sort(key=lambda kv: kv[0])
        return {"__map__": items}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(json.dumps(_canon(v)) for v in value)}
    # Last resort for config-ish objects (paths, dataclasses with a
    # stable repr).  Deliberately strict enough that an object with a
    # memory-address repr would poison its own cache key — which only
    # ever costs a miss, never a wrong hit.
    return f"repr:{type(value).__name__}:{value!r}"


def canonical_encode(value) -> bytes:
    """Deterministic byte encoding of plain data, for hashing."""
    encoded = json.dumps(_canon(value), sort_keys=True, separators=(",", ":"))
    return encoded.encode("utf-8")


def fingerprint_instance(instance: OCSPInstance) -> str:
    """SHA-256 hex digest of an instance's scheduling-relevant content.

    Covers the function profiles (names, compile-time and exec-time
    tables) and the call sequence.  The instance ``name`` is *excluded*:
    two identically-shaped traces under different labels are the same
    scheduling problem (the label is carried by the suite key instead,
    see :func:`fingerprint_unit`).
    """
    h = hashlib.sha256()
    for fname in sorted(instance.profiles):
        prof = instance.profiles[fname]
        h.update(
            canonical_encode([fname, list(prof.compile_times), list(prof.exec_times)])
        )
        h.update(b"\x00")
    h.update(b"calls\x00")
    # The call sequence dominates the payload (up to tens of millions
    # of entries); hash it as one joined buffer instead of per-call
    # json.dumps round-trips.
    h.update("\x1f".join(instance.calls).encode("utf-8"))
    return h.hexdigest()


def fingerprint_unit(
    instance: OCSPInstance,
    driver: str,
    driver_kwargs: Optional[Mapping[str, object]] = None,
    benchmark: Optional[str] = None,
    code_version: str = CODE_VERSION,
) -> str:
    """Fingerprint of one (driver, benchmark) work unit.

    Args:
        instance: the benchmark instance the driver will run on.
        driver: driver name (a :data:`repro.analysis.PARALLEL_DRIVERS`
            key).
        driver_kwargs: the keyword arguments the driver will receive.
            All kwargs participate — including output-only ones such as
            ``trace_dir``, conservatively: a changed kwarg can only
            cause a spurious miss, never a stale hit.
        benchmark: the suite key (drivers copy it into each row's
            ``benchmark`` column, so it is result-affecting); defaults
            to ``instance.name``.
        code_version: see :data:`CODE_VERSION`.
    """
    h = hashlib.sha256()
    h.update(
        canonical_encode(
            {
                "code_version": code_version,
                "driver": driver,
                "benchmark": benchmark if benchmark is not None else instance.name,
                "kwargs": dict(driver_kwargs or {}),
                "instance": fingerprint_instance(instance),
            }
        )
    )
    return h.hexdigest()
