"""Content-addressed experiment result store (cache + checkpoints).

The study grid — (benchmark × driver × model × thread-count) — is pure:
every cell's rows are a function of the instance, the driver, its
kwargs, and the code version.  This package gives that purity teeth:

* :mod:`repro.store.fingerprint` — a stable SHA-256 key over exactly
  those inputs, so a cell's identity changes iff its inputs do;
* :mod:`repro.store.cache` — :class:`ResultStore`, an on-disk JSON
  store with atomic writes and ``stats``/``gc``/``clear`` maintenance;
* :mod:`repro.store.runstate` — :class:`RunState`, the per-run journal
  that lets a killed suite resume from its last completed unit.

:func:`repro.analysis.run_parallel` drives all three; the CLI surface
is ``repro study --cache-dir/--resume`` and ``repro cache
{stats,gc,clear}``.  See ``docs/CACHING.md`` for the layout and the
invalidation contract.
"""

from .fingerprint import (
    CODE_VERSION,
    canonical_encode,
    fingerprint_instance,
    fingerprint_unit,
)
from .cache import ResultStore, StoreCorruptionError, StoreStats
from .runstate import RunState, UnitRecord, load_runstate

__all__ = [
    "CODE_VERSION",
    "canonical_encode",
    "fingerprint_instance",
    "fingerprint_unit",
    "ResultStore",
    "StoreCorruptionError",
    "StoreStats",
    "RunState",
    "UnitRecord",
    "load_runstate",
]
