"""Fault specifications: what to inject, how often, and under which seed.

A :class:`FaultSpec` is the declarative half of the fault layer — a
plain record of rates and knobs.  The imperative half
(:class:`repro.faults.injector.FaultInjector`) turns a spec into
deterministic per-event decisions.  Specs travel as canonical strings
(``compile_fail=0.1,seed=3``) so they fingerprint stably through the
result store and survive process-pool pickling as plain text.

Grammar (the ``--faults``/``--spec`` CLI surface)::

    SPEC  := "" | ITEM ("," ITEM)*
    ITEM  := KEY "=" VALUE

with keys ``compile_fail``, ``stall``, ``stall_factor``, ``mispredict``,
``tick_drop``, ``tick_dup``, ``retries``, ``backoff``, ``seed``.  The
empty spec is the null spec: every rate zero, nothing injected.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

__all__ = ["FaultSpec", "FaultSpecError", "parse_fault_spec", "DIMENSIONS"]

# Sweepable fault dimensions (see :meth:`FaultSpec.scaled`).
DIMENSIONS: Tuple[str, ...] = ("compile_fail", "stall", "mispredict", "ticks")


class FaultSpecError(ValueError):
    """Raised for an unparsable or out-of-range fault specification."""


@dataclass(frozen=True)
class FaultSpec:
    """Rates and knobs of the injected faults.

    Attributes:
        compile_fail: probability that one compile *attempt* fails
            (drawn per ``(function, level, attempt)``).
        stall: probability that one compile attempt runs on a stalled
            compiler thread.
        stall_factor: multiplicative compile-time factor of a stalled
            attempt (``>= 1``; 1.0 makes stalls free).
        mispredict: relative error of the cost table the *scheduler*
            sees (the simulator always charges the true table); 0
            disables misprediction.
        tick_drop: probability that a sampler tick is dropped (the
            scheme never observes it).
        tick_dup: probability that a sampler tick is delivered twice.
        retries: failed compile attempts retried (each one level lower)
            before giving up on the request.
        backoff: virtual-time delay before a retry may start, doubled
            per attempt (reactive runtime path only — a planned
            schedule has no clock to wait on).
        seed: root seed; every decision hashes ``(seed, kind, key...)``
            so outcomes are order-independent and reproducible.
    """

    compile_fail: float = 0.0
    stall: float = 0.0
    stall_factor: float = 4.0
    mispredict: float = 0.0
    tick_drop: float = 0.0
    tick_dup: float = 0.0
    retries: int = 2
    backoff: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for key in ("compile_fail", "stall", "tick_drop", "tick_dup"):
            value = getattr(self, key)
            if not 0.0 <= value <= 1.0:
                raise FaultSpecError(
                    f"fault spec: {key} must be in [0, 1], got {value!r}"
                )
        if self.stall_factor < 1.0:
            raise FaultSpecError(
                f"fault spec: stall_factor must be >= 1, got "
                f"{self.stall_factor!r}"
            )
        if self.mispredict < 0.0:
            raise FaultSpecError(
                f"fault spec: mispredict must be >= 0, got "
                f"{self.mispredict!r}"
            )
        if self.retries < 0:
            raise FaultSpecError(
                f"fault spec: retries must be >= 0, got {self.retries!r}"
            )
        if self.backoff < 0.0:
            raise FaultSpecError(
                f"fault spec: backoff must be >= 0, got {self.backoff!r}"
            )

    @property
    def is_null(self) -> bool:
        """True when no fault can ever fire (every rate is zero).

        Null specs take the untouched clean code paths, which is what
        makes zero-fault-rate results *bitwise* equal to fault-free
        runs rather than merely close.
        """
        return (
            self.compile_fail == 0.0
            and self.stall == 0.0
            and self.mispredict == 0.0
            and self.tick_drop == 0.0
            and self.tick_dup == 0.0
        )

    def scaled(self, dimension: str, rate: float) -> "FaultSpec":
        """This spec with one fault ``dimension`` set to ``rate``.

        Dimensions: ``compile_fail``, ``stall``, ``mispredict``, and
        ``ticks`` (which sets ``tick_drop`` and ``tick_dup`` together).
        Sweeps hold everything else fixed, so degradation curves vary
        exactly one knob.
        """
        if dimension == "ticks":
            return dataclasses.replace(self, tick_drop=rate, tick_dup=rate)
        if dimension not in ("compile_fail", "stall", "mispredict"):
            raise FaultSpecError(
                f"fault spec: unknown dimension {dimension!r} "
                f"(expected one of {', '.join(DIMENSIONS)})"
            )
        return dataclasses.replace(self, **{dimension: rate})

    def canonical(self) -> str:
        """The spec as a canonical string: every field, sorted by key.

        ``parse_fault_spec(spec.canonical()) == spec``; the string is
        the spec's identity for cache fingerprints and JSON output.
        """
        parts = []
        for field in sorted(f.name for f in dataclasses.fields(self)):
            parts.append(f"{field}={getattr(self, field)!r}")
        return ",".join(parts)


_FIELD_TYPES = {
    field.name: field.type for field in dataclasses.fields(FaultSpec)
}


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a ``key=value,key=value`` fault spec string.

    The empty (or all-whitespace) string parses to the null spec.

    Raises:
        FaultSpecError: on unknown keys, malformed items, unparsable
            values, or out-of-range rates; messages carry the stable
            ``fault spec:`` prefix.
    """
    if isinstance(text, FaultSpec):
        return text
    if not isinstance(text, str):
        raise FaultSpecError(
            f"fault spec: expected a string, got {type(text).__name__}"
        )
    values = {}
    for raw in text.split(","):
        item = raw.strip()
        if not item:
            continue
        key, sep, value_text = item.partition("=")
        key = key.strip()
        value_text = value_text.strip()
        if not sep or not key or not value_text:
            raise FaultSpecError(
                f"fault spec: expected key=value, got {item!r}"
            )
        if key not in _FIELD_TYPES:
            raise FaultSpecError(
                f"fault spec: unknown key {key!r} (expected one of "
                f"{', '.join(sorted(_FIELD_TYPES))})"
            )
        caster = int if key in ("retries", "seed") else float
        try:
            values[key] = caster(value_text)
        except ValueError as exc:
            raise FaultSpecError(
                f"fault spec: invalid value for {key}: {value_text!r}"
            ) from exc
    return FaultSpec(**values)
