"""Degradation curves: scheme quality as a function of fault rate.

A sweep runs the five-scheme comparison of Figures 5/6 at several rates
of one fault *dimension* (``compile_fail``, ``stall``, ``mispredict``,
or ``ticks``), holding every other knob of the base spec fixed.  The
zero-rate point delegates to the clean comparison, so the curve's
origin is bitwise equal to the fault-free figures — the rest of the
curve is pure injected degradation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.model import OCSPInstance
from ..vm.costbenefit import EstimatedModel
from .degrade import faulty_scheme_comparison
from .injector import FaultInjector
from .spec import DIMENSIONS, FaultSpecError, parse_fault_spec

__all__ = ["DEFAULT_RATES", "SERIES", "fault_sweep_rows", "degradation_curves"]

# Fault rates of the default degradation curve.
DEFAULT_RATES: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4)

# The five figure series every sweep row carries.
SERIES: Tuple[str, ...] = (
    "lower_bound", "iar", "default", "base_level", "optimizing_level",
)


def fault_sweep_rows(
    suite: Dict[str, OCSPInstance],
    spec: str = "",
    rates: Sequence[float] = DEFAULT_RATES,
    dimension: str = "compile_fail",
    model_seed: int = 0,
    compile_threads: int = 1,
    metrics=None,
) -> List[Dict[str, object]]:
    """One row per ``(benchmark, fault rate)``.

    Args:
        suite: ``{benchmark: instance}``.
        spec: base fault spec (string or :class:`FaultSpec`); the sweep
            overrides its ``dimension`` rate point by point and keeps
            everything else (seed, retries, stall factor, ...) fixed.
        rates: the swept rates, in output order.
        dimension: one of :data:`repro.faults.DIMENSIONS`.
        model_seed: seed of the default cost-benefit model.
        compile_threads: compiler threads for every scheme.
        metrics: optional metrics registry; receives the ``faults.*``
            counters aggregated over the whole sweep.

    Returns:
        Rows ``{"benchmark", "dimension", "fault_rate", <SERIES...>,
        "faults": <tally>}`` in suite order, then rate order.
    """
    if dimension not in DIMENSIONS:
        raise FaultSpecError(
            f"fault spec: unknown dimension {dimension!r} "
            f"(expected one of {', '.join(DIMENSIONS)})"
        )
    base = parse_fault_spec(spec)
    rows: List[Dict[str, object]] = []
    for name, instance in suite.items():
        for rate in rates:
            injector = FaultInjector(
                base.scaled(dimension, float(rate)), metrics=metrics
            )
            comparison, summary = faulty_scheme_comparison(
                instance,
                injector,
                model_factory=lambda inst: EstimatedModel(
                    inst, seed=model_seed
                ),
                compile_threads=compile_threads,
            )
            row: Dict[str, object] = {
                "benchmark": name,
                "dimension": dimension,
                "fault_rate": float(rate),
            }
            row.update(comparison)
            row["faults"] = summary
            rows.append(row)
    return rows


def degradation_curves(
    rows: Sequence[Dict[str, object]],
    series: Sequence[str] = SERIES,
) -> List[Dict[str, object]]:
    """Aggregate sweep rows into one curve point per fault rate.

    Each point is the geometric mean of the normalized make-spans over
    the benchmarks (ratios multiply, so the geometric mean is the
    meaningful aggregate — see
    :func:`repro.analysis.experiments.average_row`).

    Returns:
        ``[{"fault_rate": r, <series means...>}, ...]`` in first-seen
        rate order.
    """
    from ..analysis.metrics import geometric_mean

    by_rate: Dict[float, List[Dict[str, object]]] = {}
    order: List[float] = []
    for row in rows:
        rate = float(row["fault_rate"])
        if rate not in by_rate:
            by_rate[rate] = []
            order.append(rate)
        by_rate[rate].append(row)
    curves: List[Dict[str, object]] = []
    for rate in order:
        point: Dict[str, object] = {"fault_rate": rate}
        for key in series:
            values = [
                float(row[key])
                for row in by_rate[rate]
                if row.get(key) is not None
            ]
            point[key] = geometric_mean(values) if values else None
        curves.append(point)
    return curves
