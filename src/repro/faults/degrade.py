"""Graceful degradation of *planned* schedules under fault injection.

The reactive runtime (:class:`repro.vm.runtime.RuntimeSimulator`) owns a
clock, so it degrades requests in-line as they fail.  Planned schedules
(IAR, the single-level baselines) have no clock — the schedule exists
before the run starts — so degradation is a *rewrite*:
:func:`apply_to_schedule` expands every planned task into its attempt
chain (failed attempts occupy their compiler thread but install no
code), and the resulting :class:`FaultyPlan` feeds the measurement
engines through their ``task_compile_times`` / ``task_installs``
overrides.

The chain mirrors the runtime's exactly — same decision keys
``(function, level, attempt)``, same retry-one-level-lower policy, same
guaranteed level-0 fail-safe on a first encounter — so a fault verdict
is identical no matter which engine asks.  The one deliberate
difference: the spec's ``backoff`` is a *delay* and a plan has no clock
to wait on, so the planned path ignores it (retries queue back-to-back
on the compiler threads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..core.bounds import lower_bound
from ..core.iar import IARParams, iar
from ..core.makespan import MakespanResult, simulate
from ..core.model import OCSPInstance
from ..core.schedule import CompileTask, Schedule
from ..core.single_level import base_level_schedule, optimizing_level_schedule
from ..vm.costbenefit import EstimatedModel
from ..vm.jikes import run_jikes
from ..vm.v8 import run_v8
from .injector import FaultInjector
from .spec import FaultSpec

__all__ = [
    "FaultyPlan",
    "apply_to_schedule",
    "simulate_with_faults",
    "faulty_scheme_comparison",
    "faulty_v8_comparison",
]

FaultsLike = Union[FaultInjector, FaultSpec, str]


def _as_injector(faults: FaultsLike, metrics=None) -> FaultInjector:
    if isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(faults, metrics=metrics)


@dataclass(frozen=True)
class FaultyPlan:
    """A planned schedule after fault injection and degradation.

    Attributes:
        tasks: every compile *attempt*, in dispatch order — including
            the failed ones (they cost thread time).
        compile_times: per-attempt charged compile time (the profile's
            time, times the stall factor when the attempt stalled).
        installs: per-attempt install flag; ``False`` marks a failed
            attempt that published no code.
        failures: failed compile attempts in this plan.
        retries: attempts retried at a lower level.
        fallbacks: requests abandoned at the function's current tier.
        forced_installs: guaranteed level-0 fail-safe compiles taken
            after a first-encounter chain exhausted its retries.
        stalls: attempts that ran on a stalled compiler thread.
        wasted_compile_time: thread time burned by failed attempts.
    """

    tasks: Schedule
    compile_times: Tuple[float, ...]
    installs: Tuple[bool, ...]
    failures: int = 0
    retries: int = 0
    fallbacks: int = 0
    forced_installs: int = 0
    stalls: int = 0
    wasted_compile_time: float = 0.0

    @property
    def degraded(self) -> bool:
        """True when any fault fired on this plan."""
        return (
            self.failures > 0
            or self.stalls > 0
            or self.fallbacks > 0
        )

    def summary(self) -> Dict[str, object]:
        """Plain-data counters (JSON-ready), mirroring
        :meth:`repro.faults.FaultInjector.summary` keys."""
        return {
            "compile_failures": self.failures,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "forced_installs": self.forced_installs,
            "stalls": self.stalls,
            "wasted_compile_time": self.wasted_compile_time,
        }


def apply_to_schedule(
    instance: OCSPInstance,
    schedule: Schedule,
    injector: FaultsLike,
) -> FaultyPlan:
    """Expand ``schedule`` into its degraded attempt chains.

    Each planned task runs the same chain as the reactive runtime's
    :meth:`~repro.vm.runtime.RuntimeSimulator.enqueue` under faults:
    attempt the requested level; on failure retry one level lower, up
    to ``spec.retries`` times; a chain that runs out of retries falls
    back to the function's already-installed tier, except on a first
    encounter, where one guaranteed level-0 compile keeps the function
    runnable.  Decision keys are ``(function, level, attempt)``, so the
    verdicts match the runtime's for identical requests.

    The injector's tallies advance by exactly the counts recorded in
    the returned plan (one injector may serve several plans; the plan
    carries its own deltas).
    """
    injector = _as_injector(injector)
    spec = injector.spec
    profiles = instance.profiles
    tasks: List[CompileTask] = []
    compile_times: List[float] = []
    installs: List[bool] = []
    achieved: Dict[str, int] = {}
    before = dict(injector.tally)
    wasted_before = injector.wasted_compile_time

    for task in schedule:
        fname = task.function
        prof = profiles[fname]
        must_install = fname not in achieved
        cur = achieved.get(fname, -1)
        lvl = task.level
        attempt = 1
        while True:
            if not must_install and lvl <= cur:
                # Degraded below the installed tier: keep running there.
                injector.note_fallback()
                break
            factor = injector.compile_time_factor(fname, lvl, attempt)
            c = prof.compile_times[lvl]
            if factor != 1.0:
                c *= factor
            guaranteed = must_install and attempt > spec.retries and lvl == 0
            failed = not guaranteed and injector.compile_fails(
                fname, lvl, attempt
            )
            tasks.append(CompileTask(fname, lvl))
            compile_times.append(c)
            installs.append(not failed)
            if not failed:
                if must_install and attempt > spec.retries:
                    injector.note_forced_install()
                achieved[fname] = lvl
                break
            injector.note_wasted(c)
            if attempt > spec.retries and not must_install:
                injector.note_fallback()
                break
            if attempt <= spec.retries:
                injector.note_retry()
                lvl = max(0, lvl - 1)
            else:
                lvl = 0  # next round is the guaranteed fail-safe
            attempt += 1

    delta = {key: injector.tally[key] - before[key] for key in before}
    return FaultyPlan(
        tasks=Schedule(tuple(tasks)),
        compile_times=tuple(compile_times),
        installs=tuple(installs),
        failures=delta["compile_failures"],
        retries=delta["retries"],
        fallbacks=delta["fallbacks"],
        forced_installs=delta["forced_installs"],
        stalls=delta["stalls"],
        wasted_compile_time=injector.wasted_compile_time - wasted_before,
    )


def simulate_with_faults(
    instance: OCSPInstance,
    schedule: Schedule,
    faults: FaultsLike,
    compile_threads: int = 1,
    record_timeline: bool = False,
    validate: bool = True,
    engine: Optional[str] = None,
    metrics=None,
) -> Tuple[MakespanResult, FaultyPlan]:
    """Degrade ``schedule`` under ``faults`` and measure the result.

    Args:
        instance: the workload (the *true* cost tables — misprediction
            only affects what a scheduler planned with, never what the
            simulator charges).
        schedule: the intended (pre-fault) schedule.
        faults: a :class:`FaultInjector`, :class:`FaultSpec`, or spec
            string.
        compile_threads: compiler threads.
        record_timeline: keep per-task/per-call timings.
        validate: validate the *intended* schedule first (the degraded
            plan is by construction simulatable but not a valid
            monotone schedule, so it is never validated).
        engine: ``"reference"`` (:func:`repro.core.makespan.simulate`),
            ``"fast"`` (:class:`repro.core.fastsim.FastSimulator`), or
            ``"vector"`` (:class:`repro.core.vecsim.VectorSimulator`);
            all produce bitwise-identical numbers — including the
            degradation decisions, which happen before any engine runs.
            ``None`` defers to the session default
            (:func:`repro.core.engine.set_default_engine` /
            ``$REPRO_ENGINE``), then to ``"reference"``.
        metrics: optional metrics registry, passed to the engine and —
            when ``faults`` is not already an injector — the injector.

    Returns:
        ``(result, plan)``: the measured timings and the degraded plan
        that produced them.  A null spec takes the untouched clean
        path, so its result is bitwise equal to a fault-free run.
    """
    from ..core.engine import make_simulator, resolve_engine

    engine = resolve_engine(engine, fallback="reference")
    injector = _as_injector(faults, metrics=metrics)
    if validate:
        schedule.validate(instance)
    if injector.null:
        plan = FaultyPlan(
            tasks=schedule,
            compile_times=tuple(
                instance.profiles[task.function].compile_times[task.level]
                for task in schedule
            ),
            installs=(True,) * len(schedule),
        )
        if engine != "reference":
            sim = make_simulator(
                instance, engine, compile_threads=compile_threads,
                metrics=metrics,
            )
            return sim.evaluate(schedule, record_timeline=record_timeline), plan
        return (
            simulate(
                instance,
                schedule,
                compile_threads=compile_threads,
                record_timeline=record_timeline,
                validate=False,
                metrics=metrics,
            ),
            plan,
        )
    plan = apply_to_schedule(instance, schedule, injector)
    if engine != "reference":
        sim = make_simulator(
            instance, engine, compile_threads=compile_threads,
            metrics=metrics,
        )
        result = sim.evaluate(
            plan.tasks,
            record_timeline=record_timeline,
            task_compile_times=plan.compile_times,
            task_installs=plan.installs,
        )
    else:
        result = simulate(
            instance,
            plan.tasks,
            compile_threads=compile_threads,
            record_timeline=record_timeline,
            validate=False,
            task_compile_times=plan.compile_times,
            task_installs=plan.installs,
            metrics=metrics,
        )
    return result, plan


def faulty_scheme_comparison(
    instance: OCSPInstance,
    faults: FaultsLike,
    model_factory=EstimatedModel,
    compile_threads: int = 1,
    iar_params: IARParams = IARParams(),
    metrics=None,
) -> Tuple[Dict[str, float], Dict[str, object]]:
    """The five bars of Figures 5/6 under fault injection.

    Planned schemes (IAR, the single-level baselines) plan against the
    injector's :meth:`~repro.faults.FaultInjector.scheduler_view` (the
    mispredicted cost table) and degrade through
    :func:`simulate_with_faults`; the reactive default scheme runs with
    the injector in-line.  Everything normalizes against the *clean*
    lower bound of the projection, so degradation curves read directly
    as "how far faults push each scheme from the fault-free limit".

    Returns:
        ``(row, summary)``: the figure row (``lower_bound``, ``iar``,
        ``default``, ``base_level``, ``optimizing_level``) and the
        injector's fault tally for this benchmark.  A null spec
        delegates to the clean
        :func:`repro.analysis.experiments.scheme_comparison`, making
        zero-rate results bitwise equal to the fault-free path.
    """
    from ..analysis import metrics as ametrics
    from ..analysis.experiments import project_to_model_levels, scheme_comparison

    injector = _as_injector(faults, metrics=metrics)
    if injector.null:
        row = scheme_comparison(
            instance,
            model_factory=model_factory,
            compile_threads=compile_threads,
            iar_params=iar_params,
        )
        return row, injector.summary()

    model = model_factory(instance)
    projected = project_to_model_levels(instance, model)
    lb = lower_bound(projected)
    high = {
        fname: projected.profiles[fname].num_levels - 1
        for fname in projected.called_functions
    }
    # What the schedulers believe the costs are; the simulators keep
    # charging ``projected`` (the truth).
    view = injector.scheduler_view(projected)

    iar_sched = iar(view, iar_params, high_levels=high).schedule
    iar_result, _ = simulate_with_faults(
        projected, iar_sched, injector,
        compile_threads=compile_threads, validate=False,
    )

    default_result = run_jikes(
        projected,
        model=model_factory(view),
        compile_threads=compile_threads,
        faults=injector,
    )

    base_result, _ = simulate_with_faults(
        projected, base_level_schedule(projected), injector,
        compile_threads=compile_threads, validate=False,
    )

    opt_result, _ = simulate_with_faults(
        projected, optimizing_level_schedule(projected, levels=high), injector,
        compile_threads=compile_threads, validate=False,
    )

    row = {
        "lower_bound": 1.0,
        "iar": ametrics.normalized(iar_result.makespan, lb),
        "default": ametrics.normalized(default_result.makespan, lb),
        "base_level": ametrics.normalized(base_result.makespan, lb),
        "optimizing_level": ametrics.normalized(opt_result.makespan, lb),
    }
    return row, injector.summary()


def faulty_v8_comparison(
    instance: OCSPInstance,
    faults: FaultsLike,
    levels: Tuple[int, int] = (0, 1),
    compile_threads: int = 1,
    metrics=None,
) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Figure 8's row (V8 scheme on a two-level projection) under
    faults; same structure as :func:`faulty_scheme_comparison`.

    A null spec needs no special path here: the runtime normalizes a
    null injector away and planned degradation never fires, so the
    numbers are bitwise equal to the clean Figure 8 computation.
    """
    from ..analysis import metrics as ametrics

    injector = _as_injector(faults, metrics=metrics)
    low, high = levels
    projected = instance.restricted_to_levels(
        {fname: [low, high] for fname in instance.profiles}
    )
    lb = lower_bound(projected)
    view = injector.scheduler_view(projected)

    v8_result = run_v8(
        projected, levels=(0, 1), compile_threads=compile_threads,
        faults=injector,
    )
    iar_sched = iar(view).schedule
    iar_result, _ = simulate_with_faults(
        projected, iar_sched, injector,
        compile_threads=compile_threads, validate=False,
    )
    base_result, _ = simulate_with_faults(
        projected, base_level_schedule(projected), injector,
        compile_threads=compile_threads, validate=False,
    )
    opt_result, _ = simulate_with_faults(
        projected, optimizing_level_schedule(projected), injector,
        compile_threads=compile_threads, validate=False,
    )

    row = {
        "lower_bound": 1.0,
        "iar": ametrics.normalized(iar_result.makespan, lb),
        "default": ametrics.normalized(v8_result.makespan, lb),
        "base_level": ametrics.normalized(base_result.makespan, lb),
        "optimizing_level": ametrics.normalized(opt_result.makespan, lb),
    }
    return row, injector.summary()
