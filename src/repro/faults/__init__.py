"""Deterministic fault injection for the simulated runtime system.

The layer has three parts:

* :mod:`repro.faults.spec` — what to inject (:class:`FaultSpec`, the
  ``key=value,...`` grammar of :func:`parse_fault_spec`);
* :mod:`repro.faults.injector` — seeded, order-independent per-event
  decisions plus fault tallies (:class:`FaultInjector`);
* :mod:`repro.faults.degrade` / :mod:`repro.faults.sweep` — graceful
  degradation of planned schedules and the degradation-curve studies
  (``repro faults sweep``).

Null specs (every rate zero) take the untouched clean code paths
everywhere, so zero-fault results are *bitwise* equal to fault-free
runs.  See ``docs/ROBUSTNESS.md`` for the fault model.
"""

from .degrade import (
    FaultyPlan,
    apply_to_schedule,
    faulty_scheme_comparison,
    faulty_v8_comparison,
    simulate_with_faults,
)
from .injector import FaultInjector
from .spec import DIMENSIONS, FaultSpec, FaultSpecError, parse_fault_spec
from .sweep import DEFAULT_RATES, fault_sweep_rows, degradation_curves

__all__ = [
    "DIMENSIONS",
    "DEFAULT_RATES",
    "FaultSpec",
    "FaultSpecError",
    "FaultInjector",
    "FaultyPlan",
    "apply_to_schedule",
    "simulate_with_faults",
    "faulty_scheme_comparison",
    "faulty_v8_comparison",
    "fault_sweep_rows",
    "degradation_curves",
    "parse_fault_spec",
]
