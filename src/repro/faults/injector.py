"""Deterministic fault decisions plus their bookkeeping.

A :class:`FaultInjector` answers the questions the engines ask — *does
this compile attempt fail?  is this thread stalled?  is this sampler
tick lost?* — from a keyed hash of ``(seed, kind, key...)``, never from
a shared RNG stream.  Decisions are therefore **order-independent**:
the reactive runtime and the planned-schedule degrader reach the same
verdict for the same ``(function, level, attempt)`` no matter how many
other questions were asked in between, and a re-run with the same seed
reproduces every fault bit-for-bit.

The injector also tallies what actually fired (failures, retries,
fallbacks, forced installs, stalls, dropped/duplicated ticks, wasted
compile time) and mirrors the integer counts into an optional
:class:`repro.observability.MetricsRegistry` under ``faults.*`` so
``repro diagnose``/``bench`` can attribute gaps to faults.
"""

from __future__ import annotations

import random
from typing import Dict, Union

from ..core.model import OCSPInstance
from ..core.online import perturb_times
from .spec import FaultSpec, parse_fault_spec

__all__ = ["FaultInjector"]

_TALLY_KEYS = (
    "compile_failures",
    "retries",
    "fallbacks",
    "forced_installs",
    "stalls",
    "ticks_dropped",
    "ticks_duplicated",
)


class FaultInjector:
    """Seeded fault oracle for one experiment.

    Args:
        spec: a :class:`FaultSpec` or its string form (parsed via
            :func:`repro.faults.spec.parse_fault_spec`).
        metrics: optional
            :class:`repro.observability.MetricsRegistry`; every tally
            increment is mirrored as a ``faults.<name>`` counter.

    One injector may serve several engine runs (the degradation studies
    run five schemes against one injector); the tallies then aggregate
    every fault those runs experienced.
    """

    def __init__(
        self,
        spec: Union[FaultSpec, str],
        metrics=None,
    ) -> None:
        self.spec = parse_fault_spec(spec)
        self.metrics = metrics
        self.tally: Dict[str, int] = {key: 0 for key in _TALLY_KEYS}
        self.wasted_compile_time = 0.0

    @property
    def null(self) -> bool:
        """True when this injector can never fire (see
        :attr:`FaultSpec.is_null`)."""
        return self.spec.is_null

    # ------------------------------------------------------------------
    # Decisions (order-independent, repeat-query-stable)
    # ------------------------------------------------------------------
    def _draw(self, kind: str, *key) -> float:
        """Uniform [0, 1) draw keyed by ``(seed, kind, key...)``.

        ``random.Random`` seeded from the key's ``repr`` hashes it
        platform-independently (the same idiom as the cost-benefit
        model's hotness noise), so a decision depends only on its key.
        """
        return random.Random(repr((self.spec.seed, kind) + key)).random()

    def compile_fails(self, fname: str, level: int, attempt: int) -> bool:
        """Whether compile attempt ``attempt`` of ``(fname, level)``
        fails.  A firing decision is tallied as a ``compile_failure``."""
        p = self.spec.compile_fail
        if p <= 0.0:
            return False
        if self._draw("compile_fail", fname, level, attempt) < p:
            self._count("compile_failures")
            return True
        return False

    def compile_time_factor(self, fname: str, level: int, attempt: int) -> float:
        """Compile-time multiplier of the attempt: ``stall_factor``
        when the thread stalls, else exactly ``1.0`` (so unstalled
        faulty runs charge bitwise-identical compile times)."""
        if self.spec.stall <= 0.0:
            return 1.0
        if self._draw("stall", fname, level, attempt) < self.spec.stall:
            self._count("stalls")
            return self.spec.stall_factor
        return 1.0

    def drop_tick(self, tick: int) -> bool:
        """Whether sampler tick ``tick`` is lost."""
        p = self.spec.tick_drop
        if p <= 0.0:
            return False
        if self._draw("tick_drop", tick) < p:
            self._count("ticks_dropped")
            return True
        return False

    def duplicate_tick(self, tick: int) -> bool:
        """Whether sampler tick ``tick`` is delivered twice."""
        p = self.spec.tick_dup
        if p <= 0.0:
            return False
        if self._draw("tick_dup", tick) < p:
            self._count("ticks_duplicated")
            return True
        return False

    def scheduler_view(self, instance: OCSPInstance) -> OCSPInstance:
        """The cost table the *scheduler* plans against.

        With ``mispredict == 0`` this is ``instance`` itself (same
        object — the clean path stays bitwise clean).  Otherwise every
        profile is perturbed by a correlated lognormal of relative
        error ``mispredict``; the simulator keeps charging the true
        ``instance``, so the gap between the two is pure misprediction
        cost.
        """
        rel = self.spec.mispredict
        if rel == 0.0:
            return instance
        profiles = {
            fname: perturb_times(
                prof,
                rel,
                random.Random(
                    repr((self.spec.seed, "mispredict", instance.name, fname))
                ),
                correlated=True,
            )
            for fname, prof in sorted(instance.profiles.items())
        }
        return OCSPInstance(
            profiles=profiles,
            calls=instance.calls,
            name=f"{instance.name}!mispredict",
        )

    # ------------------------------------------------------------------
    # Bookkeeping the engines report explicitly
    # ------------------------------------------------------------------
    def note_retry(self) -> None:
        """A failed request is being retried at a lower level."""
        self._count("retries")

    def note_fallback(self) -> None:
        """A request was abandoned; the function stays at its current
        (or baseline) tier."""
        self._count("fallbacks")

    def note_forced_install(self) -> None:
        """A first-encounter chain exhausted its retries and fell back
        to the guaranteed baseline (level-0) compile."""
        self._count("forced_installs")

    def note_wasted(self, compile_time: float) -> None:
        """Compiler-thread time burned by a failed attempt."""
        self.wasted_compile_time += compile_time

    def _count(self, key: str) -> None:
        self.tally[key] += 1
        if self.metrics is not None:
            self.metrics.counter(f"faults.{key}").inc()

    def replay_tally(self, delta: Dict[str, int], wasted: float = 0.0) -> None:
        """Re-apply a recorded tally delta (and wasted compile time).

        The service's decision cache memoizes a degradation chain's
        *outcome* together with the tallies the chain produced; serving
        a hit replays them here so fault summaries and ``faults.*``
        metrics are bitwise identical whether the chain ran or the
        cache answered.
        """
        for key, amount in delta.items():
            if key not in self.tally:
                raise KeyError(f"unknown fault tally {key!r}")
            if amount:
                self.tally[key] += amount
                if self.metrics is not None:
                    self.metrics.counter(f"faults.{key}").inc(amount)
        if wasted:
            self.wasted_compile_time += wasted

    def summary(self) -> Dict[str, object]:
        """Plain-data tally: the integer counts plus wasted compile
        time, suitable for JSON output and test assertions."""
        out: Dict[str, object] = dict(self.tally)
        out["wasted_compile_time"] = self.wasted_compile_time
        return out
