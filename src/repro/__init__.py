"""repro — a reproduction of "Finding the Limit: Examining the Potential
and Complexity of Compilation Scheduling for JIT-Based Runtime Systems"
(Ding, Zhou, Zhao, Eisenstat, Shen — ASPLOS 2014).

The package is organized as:

* :mod:`repro.core` — the OCSP model, the IAR scheduling algorithm,
  make-span simulation, bounds, exact search, and the NP-completeness
  reductions (the paper's primary contribution);
* :mod:`repro.vm` — models of the compilation-scheduling schemes of
  real runtime systems (Jikes RVM's adaptive system, V8) and their
  cost-benefit models;
* :mod:`repro.jitsim` — a miniature bytecode VM with a simulated
  multi-level JIT, used to produce realistic traces from first
  principles;
* :mod:`repro.workloads` — synthetic trace generation, including the
  nine DaCapo-2006-calibrated benchmark presets of the paper's Table 1;
* :mod:`repro.analysis` — experiment drivers and reporting for every
  table and figure in the paper's evaluation;
* :mod:`repro.observability` — zero-dependency trace events and
  metrics: record any engine's run on a virtual-time timeline and
  export it as a Chrome/Perfetto trace file;
* :mod:`repro.store` — the content-addressed experiment result store
  and suite-run checkpoints behind ``repro study --cache-dir/--resume``;
* :mod:`repro.faults` — deterministic fault injection (compile
  failures, compiler stalls, cost-model misprediction, sampler-tick
  loss) and the graceful-degradation studies behind
  ``repro faults sweep``.

Quickstart::

    from repro import workloads, core

    inst = workloads.dacapo.load("antlr", scale=0.01, seed=1)
    sched = core.iar_schedule(inst)
    result = core.simulate(inst, sched)
    print(result.makespan, core.lower_bound(inst))
"""

from . import analysis, core, faults, jitsim, observability, store, vm, workloads
from .core import (
    CompileTask,
    FunctionProfile,
    OCSPInstance,
    Schedule,
    iar,
    iar_schedule,
    lower_bound,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "vm",
    "jitsim",
    "workloads",
    "analysis",
    "observability",
    "store",
    "faults",
    "FunctionProfile",
    "OCSPInstance",
    "Schedule",
    "CompileTask",
    "iar",
    "iar_schedule",
    "lower_bound",
    "simulate",
    "__version__",
]
