"""Schedule-timeline observability: trace events and metrics.

The simulators in :mod:`repro.core` and :mod:`repro.vm` answer *how
long* a run took and the gap decomposition in
:mod:`repro.analysis.diagnose` answers *how much* of the distance to
the lower bound each cause contributes — but neither can show *when*
bubbles, queue waits, and level-excess happen on the timeline.  This
package adds that visibility without touching the engines' numbers:

* :class:`Tracer` — a zero-dependency event recorder (spans, instants,
  counters) driven by the simulators' **virtual clock**; it never reads
  wall-clock time, and a disabled tracer (``tracer=None``, the default
  everywhere) costs the engines nothing but a single branch;
* :class:`MetricsRegistry` — counters, gauges, and histograms for
  algorithm-step accounting (IAR category sizes, local-search move
  outcomes, sampler ticks);
* exporters — Chrome trace-event JSON (loads directly in Perfetto or
  ``chrome://tracing``), a JSONL event stream, and validation helpers.

Every engine takes an opt-in ``tracer=`` argument; the virtual time
unit is the microsecond, which is also Chrome's ``ts`` unit, so traces
open in Perfetto with correct absolute times.  See
``docs/OBSERVABILITY.md`` for the instrumentation guide.
"""

from .tracer import TraceError, TraceEvent, Tracer, TraceScope
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .export import (
    TraceValidationError,
    iter_chrome_records,
    iter_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .instrument import trace_makespan_result

__all__ = [
    "TraceEvent",
    "Tracer",
    "TraceScope",
    "TraceError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "to_chrome_trace",
    "iter_chrome_records",
    "write_chrome_trace",
    "iter_jsonl",
    "write_jsonl",
    "validate_chrome_trace",
    "TraceValidationError",
    "trace_makespan_result",
]
