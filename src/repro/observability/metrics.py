"""A minimal metrics registry: counters, gauges, histograms.

Algorithm steps that are not timeline events — IAR's category sizes,
local-search move outcomes, cutoff early-exits — are counted here.
Like the tracer, the registry is zero-dependency and wall-clock-free;
instruments accept ``metrics=None`` (the default) and pay one branch
when disabled.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming aggregate of observed values (count/sum/min/max/mean).

    Deliberately keeps no samples: instrumented loops may record
    millions of values, and the summaries the reports need are all
    computable online.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Name-keyed store of metrics instruments.

    ``counter``/``gauge``/``histogram`` get-or-create; requesting an
    existing name as a different kind raises ``ValueError`` (a metric's
    identity is its name).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type):
        existing = self._metrics.get(name)
        if existing is None:
            existing = kind(name)
            self._metrics[name] = existing
        elif not isinstance(existing, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(existing).__name__}, not {kind.__name__}"
            )
        return existing

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view: name → value (counters/gauges) or summary
        dict (histograms), sorted by name."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "total": metric.total,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "mean": metric.mean,
                }
            else:
                out[name] = metric.value  # type: ignore[union-attr]
        return out

    def render(self, precision: int = 3) -> str:
        """One ``name = value`` line per metric, sorted by name."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                lines.append(
                    f"{name} = count={value['count']} "
                    f"mean={value['mean']:.{precision}f} "
                    f"min={value['min']} max={value['max']}"
                )
            elif isinstance(value, float):
                lines.append(f"{name} = {value:.{precision}f}")
            else:
                lines.append(f"{name} = {value}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
