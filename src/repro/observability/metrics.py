"""A minimal metrics registry: counters, gauges, histograms.

Algorithm steps that are not timeline events — IAR's category sizes,
local-search move outcomes, cutoff early-exits — are counted here.
Like the tracer, the registry is zero-dependency and wall-clock-free;
instruments accept ``metrics=None`` (the default) and pay one branch
when disabled.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_RESERVOIR_SIZE = 1024


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming aggregate of observed values.

    Exact count/sum/min/max/mean are maintained online; quantiles come
    from a fixed-size reservoir (Vitter's algorithm R, 1024 slots), so
    instrumented loops may record millions of values at O(1) memory.
    Up to 1024 recordings the quantiles are exact; beyond that they are
    estimates from a uniform sample.  The reservoir's RNG is seeded from
    the histogram *name* (CRC-32, not the salted ``hash``), so a given
    instrument stream yields identical quantiles on every run — metric
    snapshots stay reproducible.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_rng")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < _RESERVOIR_SIZE:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < _RESERVOIR_SIZE:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile (``0 <= q <= 100``) of the recorded
        values — exact below 1024 recordings, reservoir-estimated above.
        ``None`` when nothing has been recorded.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = (len(ordered) - 1) * (q / 100.0)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class MetricsRegistry:
    """Name-keyed store of metrics instruments.

    ``counter``/``gauge``/``histogram`` get-or-create; requesting an
    existing name as a different kind raises ``ValueError`` (a metric's
    identity is its name).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type):
        existing = self._metrics.get(name)
        if existing is None:
            existing = kind(name)
            self._metrics[name] = existing
        elif not isinstance(existing, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(existing).__name__}, not {kind.__name__}"
            )
        return existing

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, object]:
        """Plain-data view: name → value (counters/gauges) or summary
        dict (histograms), sorted by name.  ``prefix`` restricts the
        view to names starting with it (e.g. ``"service."``)."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            if prefix is not None and not name.startswith(prefix):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "total": metric.total,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "mean": metric.mean,
                    "p50": metric.percentile(50.0),
                    "p90": metric.percentile(90.0),
                    "p99": metric.percentile(99.0),
                }
            else:
                out[name] = metric.value  # type: ignore[union-attr]
        return out

    def render(self, precision: int = 3) -> str:
        """One ``name = value`` line per metric, sorted by name."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                p50 = value["p50"]
                p99 = value["p99"]
                quantiles = (
                    f" p50={p50:.{precision}f} p99={p99:.{precision}f}"
                    if p50 is not None and p99 is not None
                    else ""
                )
                lines.append(
                    f"{name} = count={value['count']} "
                    f"mean={value['mean']:.{precision}f} "
                    f"min={value['min']} max={value['max']}"
                    f"{quantiles}"
                )
            elif isinstance(value, float):
                lines.append(f"{name} = {value:.{precision}f}")
            else:
                lines.append(f"{name} = {value}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
