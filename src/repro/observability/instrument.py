"""Turn recorded simulation timelines into trace events.

``core/makespan.simulate`` and ``core/fastsim.FastSimulator`` already
reconstruct complete per-task and per-call timelines when asked
(``record_timeline=True``); rather than sprinkling emission sites
through their hot loops, their tracing support records the timeline
once and converts it here, after the fact.  The reactive simulators in
:mod:`repro.vm` emit events inline instead, because their timelines are
emergent and never materialized.
"""

from __future__ import annotations

from .tracer import TraceError

__all__ = ["trace_makespan_result"]


def trace_makespan_result(tracer, result, execute_track: str = "execute") -> None:
    """Emit trace events for a ``MakespanResult`` with timelines.

    Produces one ``compiler-{tid}`` track per compiler thread (compile
    spans carrying the function and level), plus the execution track:
    invocation spans carrying the level used, bubble spans for stalls,
    and a cumulative ``bubble_total`` counter.

    Args:
        tracer: a :class:`Tracer` or :class:`TraceScope`.
        result: ``MakespanResult`` from ``simulate(...,
            record_timeline=True)`` (or ``FastSimulator`` equivalent).
        execute_track: name of the execution-thread track.

    Raises:
        TraceError: if the result was produced without
            ``record_timeline=True`` (timelines are ``None``).
    """
    if result.task_timings is None or result.call_timings is None:
        raise TraceError(
            "result has no timelines; run simulate(..., record_timeline=True)"
        )

    for timing in result.task_timings:
        tracer.span(
            f"compile {timing.function} L{timing.level}",
            f"compiler-{timing.thread}",
            timing.start,
            timing.finish,
            category="compile",
            args={"function": timing.function, "level": timing.level},
        )

    prev = 0.0
    bubble_total = 0.0
    for call in result.call_timings:
        if call.bubble > 0.0:
            # The bubble span's left edge is the previous finish, not
            # ``start - bubble``: float subtraction could open a hairline
            # gap or overlap that the exporter's non-overlap check (which
            # is exact) would reject.
            tracer.span(
                "bubble",
                execute_track,
                prev,
                call.start,
                category="bubble",
                args={"function": call.function, "bubble": call.bubble},
            )
            bubble_total += call.bubble
            tracer.counter("bubble_total", "bubbles", call.start, bubble_total)
        tracer.span(
            call.function,
            execute_track,
            call.start,
            call.finish,
            category="call",
            args={"level": call.level},
        )
        prev = call.finish
