"""The event tracer: spans, instants, and counters on a virtual clock.

Design constraints (they shape every signature here):

* **Explicit clock.**  Simulated time is an argument to every emission;
  the tracer never reads wall-clock time, so traced runs remain
  deterministic and replayable.
* **Disabled means absent.**  Engines accept ``tracer=None`` and guard
  each emission site with one ``is not None`` branch; there is no
  "disabled tracer" object on hot paths to pay attribute lookups for.
* **Zero dependencies.**  Events are plain frozen dataclasses in a
  list; exporters (:mod:`repro.observability.export`) turn them into
  Chrome trace JSON or JSONL after the run.

Tracks name the horizontal lanes of the timeline.  A track is a string
such as ``"execute"`` or ``"compiler-0"``; an optional ``process/``
prefix (added by :meth:`Tracer.scope`) groups tracks, which the Chrome
exporter renders as separate processes — e.g. the ``iar`` and
``jikes`` replays of one benchmark side by side in a single file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["TraceEvent", "Tracer", "TraceScope", "TraceError"]


class TraceError(RuntimeError):
    """Misuse of the tracing API (unbalanced spans, negative spans)."""


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        kind: ``"span"``, ``"instant"``, or ``"counter"``.
        name: event name (for spans of engine work, the function name).
        category: coarse grouping (``"compile"``, ``"call"``,
            ``"bubble"``, ``"sample"``, ``"enqueue"``, ...).
        track: timeline lane, optionally ``process/``-prefixed.
        start: event timestamp in virtual microseconds.
        end: span end; equals ``start`` for instants and counters.
        args: optional payload (levels, invocation indices, ...).
        value: counter value (0.0 for spans/instants).
    """

    kind: str
    name: str
    category: str
    track: str
    start: float
    end: float
    args: Optional[Mapping[str, object]] = None
    value: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Event recorder for one (or several related) simulated runs.

    Spans can be emitted complete (:meth:`span`, when both endpoints
    are known) or as a balanced begin/end pair (:meth:`begin` /
    :meth:`end`, for engines that discover the end later).  Begin/end
    pairs nest per track; :meth:`assert_closed` (called by the
    exporters) rejects traces with spans left open.
    """

    __slots__ = ("_events", "_open")

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        # track -> stack of (name, category, start, args)
        self._open: Dict[str, List[Tuple[str, str, float, Optional[Mapping]]]] = {}

    # -- emission ------------------------------------------------------
    def span(
        self,
        name: str,
        track: str,
        start: float,
        end: float,
        category: str = "span",
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record a complete span ``[start, end]`` on ``track``."""
        if end < start:
            raise TraceError(
                f"span {name!r} on {track!r} ends before it starts "
                f"({end} < {start})"
            )
        self._events.append(
            TraceEvent("span", name, category, track, start, end, args)
        )

    def begin(
        self,
        name: str,
        track: str,
        ts: float,
        category: str = "span",
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Open a span on ``track``; pair with :meth:`end`."""
        self._open.setdefault(track, []).append((name, category, ts, args))

    def end(self, track: str, ts: float) -> None:
        """Close the innermost open span on ``track`` at ``ts``."""
        stack = self._open.get(track)
        if not stack:
            raise TraceError(f"end() on {track!r} with no open span")
        name, category, start, args = stack.pop()
        self.span(name, track, start, ts, category=category, args=args)

    def instant(
        self,
        name: str,
        track: str,
        ts: float,
        category: str = "instant",
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record a point event at ``ts``."""
        self._events.append(
            TraceEvent("instant", name, category, track, ts, ts, args)
        )

    def counter(self, name: str, track: str, ts: float, value: float) -> None:
        """Record a counter sample (rendered as a graph lane)."""
        self._events.append(
            TraceEvent("counter", name, "counter", track, ts, ts, None, value)
        )

    # -- scoping -------------------------------------------------------
    def scope(self, process: str) -> "TraceScope":
        """A view that prefixes every track with ``process/``.

        Lets several engine runs (e.g. the four schemes of one figure
        benchmark) share a tracer while landing in separate process
        groups of the exported timeline.
        """
        return TraceScope(self, process)

    # -- inspection ----------------------------------------------------
    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    def open_spans(self) -> int:
        """Number of begin() spans not yet ended."""
        return sum(len(stack) for stack in self._open.values())

    def assert_closed(self) -> None:
        """Raise :class:`TraceError` if any begin/end span is open."""
        open_tracks = sorted(t for t, s in self._open.items() if s)
        if open_tracks:
            raise TraceError(
                f"unbalanced spans left open on tracks: {open_tracks}"
            )

    def clear(self) -> None:
        self._events.clear()
        self._open.clear()

    def __len__(self) -> int:
        return len(self._events)


class TraceScope:
    """Track-prefixing view of a :class:`Tracer` (see ``Tracer.scope``)."""

    __slots__ = ("_tracer", "_prefix")

    def __init__(self, tracer: Tracer, process: str) -> None:
        if not process or "/" in process:
            raise TraceError(f"invalid scope name {process!r}")
        self._tracer = tracer
        self._prefix = process

    def _track(self, track: str) -> str:
        return f"{self._prefix}/{track}"

    def span(self, name, track, start, end, category="span", args=None) -> None:
        self._tracer.span(name, self._track(track), start, end, category, args)

    def begin(self, name, track, ts, category="span", args=None) -> None:
        self._tracer.begin(name, self._track(track), ts, category, args)

    def end(self, track, ts) -> None:
        self._tracer.end(self._track(track), ts)

    def instant(self, name, track, ts, category="instant", args=None) -> None:
        self._tracer.instant(name, self._track(track), ts, category, args)

    def counter(self, name, track, ts, value) -> None:
        self._tracer.counter(name, self._track(track), ts, value)

    def scope(self, process: str) -> "TraceScope":
        return TraceScope(self._tracer, f"{self._prefix}-{process}")

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return self._tracer.events

    def assert_closed(self) -> None:
        self._tracer.assert_closed()

    def __len__(self) -> int:
        return len(self._tracer)
