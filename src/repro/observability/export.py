"""Exporters and validation for recorded traces.

Two on-disk formats:

* **Chrome trace-event JSON** (``to_chrome_trace`` /
  ``write_chrome_trace``) — the ``{"traceEvents": [...]}`` dialect that
  Perfetto and ``chrome://tracing`` load directly.  Spans become ``"X"``
  (complete) events, instants ``"i"``, counters ``"C"``; each distinct
  track gets its own ``tid`` and each ``process/`` prefix its own
  ``pid``, both announced with ``"M"`` metadata events so the viewer
  shows readable lane names.  Virtual time is already in microseconds,
  Chrome's ``ts`` unit, so timestamps pass through unscaled.
* **JSONL** (``iter_jsonl`` / ``write_jsonl``) — one plain-dict event
  per line, for ad-hoc filtering with standard text tools.

Both writers stream: ``write_chrome_trace`` serializes one record at a
time through :func:`iter_chrome_records` and ``write_jsonl`` through
:func:`iter_jsonl`, so exporting a full-length scale-1.0 run holds one
record in memory, not a second copy of the whole event list (the sort
behind the Chrome ordering keeps event *references* only).
``to_chrome_trace`` still returns the fully materialized object for
callers that want to inspect it.

``validate_chrome_trace`` is the schema check used by the tests and the
CI smoke job: well-formed JSON, required per-phase keys, finite
non-negative timestamps, monotone ``ts`` and non-overlapping ``"X"``
spans per (pid, tid), balanced ``"B"``/``"E"`` pairs.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterator, List, Tuple, Union

from .tracer import Tracer, TraceScope

__all__ = [
    "TraceValidationError",
    "to_chrome_trace",
    "iter_chrome_records",
    "write_chrome_trace",
    "iter_jsonl",
    "write_jsonl",
    "validate_chrome_trace",
]

_TracerLike = Union[Tracer, TraceScope]


class TraceValidationError(ValueError):
    """A trace failed schema validation (see ``validate_chrome_trace``)."""


def _split_track(track: str) -> Tuple[str, str]:
    """``"proc/lane"`` → ``("proc", "lane")``; bare tracks get the
    default process ``"repro"``."""
    if "/" in track:
        process, lane = track.split("/", 1)
        return process, lane
    return "repro", track


def iter_chrome_records(tracer: _TracerLike) -> Iterator[Dict[str, Any]]:
    """Yield Chrome trace records: ``"M"`` metadata first (in order of
    first appearance), then body events in virtual-time order.

    Only one body record exists at a time — the virtual-time ordering
    sorts event *references*, and each dict is yielded as soon as it is
    built — which is what gives :func:`write_chrome_trace` bounded
    memory on full-length runs.  Raises
    :class:`~repro.observability.tracer.TraceError` if any begin/end
    span is still open.
    """
    tracer.assert_closed()
    ordered = sorted(tracer.events, key=lambda e: (e.start, e.end))
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    meta: List[Dict[str, Any]] = []
    for event in ordered:
        process, lane = _split_track(event.track)
        pid = pids.get(process)
        if pid is None:
            pid = len(pids) + 1
            pids[process] = pid
            meta.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        if (process, lane) not in tids:
            tid = sum(1 for p, _ in tids if p == process) + 1
            tids[(process, lane)] = tid
            meta.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
    for record in meta:
        yield record

    for event in ordered:
        process, lane = _split_track(event.track)
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.category,
            "pid": pids[process],
            "tid": tids[(process, lane)],
            "ts": event.start,
        }
        if event.kind == "span":
            record["ph"] = "X"
            record["dur"] = event.end - event.start
        elif event.kind == "instant":
            record["ph"] = "i"
            record["s"] = "t"
        elif event.kind == "counter":
            record["ph"] = "C"
            record["args"] = {event.name: event.value}
        else:  # pragma: no cover - Tracer only emits the three kinds
            raise TraceValidationError(f"unknown event kind {event.kind!r}")
        if event.args is not None and event.kind != "counter":
            record["args"] = dict(event.args)
        yield record


def to_chrome_trace(tracer: _TracerLike) -> Dict[str, Any]:
    """Render a tracer's events as a Chrome trace-event JSON object.

    Materializes the whole record list — use :func:`write_chrome_trace`
    (which streams) for large traces.  Raises
    :class:`~repro.observability.tracer.TraceError` if any begin/end
    span is still open.
    """
    return {
        "traceEvents": list(iter_chrome_records(tracer)),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.observability"},
    }


def write_chrome_trace(tracer: _TracerLike, path: str) -> int:
    """Write Chrome trace JSON to ``path``; returns the event count
    (excluding metadata records).

    Streams one record per line inside the ``traceEvents`` array, so
    peak memory is one serialized record plus the reference sort — not
    a second copy of the event list.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{\n"displayTimeUnit": "ms",\n')
        fh.write('"otherData": {"producer": "repro.observability"},\n')
        fh.write('"traceEvents": [\n')
        first = True
        for record in iter_chrome_records(tracer):
            if not first:
                fh.write(",\n")
            fh.write(json.dumps(record, sort_keys=True))
            first = False
        fh.write("\n]\n}\n")
    return len(tracer.events)


def iter_jsonl(tracer: _TracerLike) -> Iterator[str]:
    """Yield one JSON line per event, in emission order."""
    for event in tracer.events:
        record: Dict[str, Any] = {
            "kind": event.kind,
            "name": event.name,
            "cat": event.category,
            "track": event.track,
            "start": event.start,
            "end": event.end,
        }
        if event.kind == "counter":
            record["value"] = event.value
        if event.args is not None:
            record["args"] = dict(event.args)
        yield json.dumps(record, sort_keys=True)


def write_jsonl(tracer: _TracerLike, path: str) -> int:
    """Write the JSONL event stream to ``path``; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in iter_jsonl(tracer):
            fh.write(line)
            fh.write("\n")
            count += 1
    return count


def _require(event: Dict[str, Any], index: int, *keys: str) -> None:
    for key in keys:
        if key not in event:
            raise TraceValidationError(
                f"event {index} (ph={event.get('ph')!r}) missing {key!r}"
            )


def validate_chrome_trace(data: Any) -> int:
    """Validate a Chrome trace-event JSON object (or JSON string).

    Checks structure, per-phase required keys, finite non-negative
    timestamps and durations, per-(pid, tid) monotone timestamps with
    non-overlapping ``"X"`` spans, and ``"B"``/``"E"`` balance.  Returns
    the number of non-metadata events; raises
    :class:`TraceValidationError` on the first violation.
    """
    if isinstance(data, (str, bytes)):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as exc:
            raise TraceValidationError(f"not valid JSON: {exc}") from exc
    try:
        json.dumps(data)
    except (TypeError, ValueError) as exc:
        raise TraceValidationError(f"not JSON-serializable: {exc}") from exc

    if not isinstance(data, dict) or "traceEvents" not in data:
        raise TraceValidationError("missing top-level 'traceEvents' key")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise TraceValidationError("'traceEvents' is not a list")

    last_ts: Dict[Tuple[int, int], float] = {}
    span_end: Dict[Tuple[int, int], float] = {}
    open_be: Dict[Tuple[int, int], int] = {}
    counted = 0

    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceValidationError(f"event {index} is not an object")
        _require(event, index, "ph", "pid", "tid", "name")
        ph = event["ph"]
        key = (event["pid"], event["tid"])

        if ph == "M":
            _require(event, index, "args")
            continue
        counted += 1

        _require(event, index, "ts")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            raise TraceValidationError(f"event {index} has bad ts {ts!r}")
        if ts < last_ts.get(key, 0.0):
            raise TraceValidationError(
                f"event {index} ts {ts} goes backwards on pid/tid {key} "
                f"(previous {last_ts[key]})"
            )
        last_ts[key] = ts

        if ph == "X":
            _require(event, index, "dur")
            dur = event["dur"]
            if (
                not isinstance(dur, (int, float))
                or not math.isfinite(dur)
                or dur < 0
            ):
                raise TraceValidationError(
                    f"event {index} has bad dur {dur!r}"
                )
            if ts < span_end.get(key, 0.0):
                raise TraceValidationError(
                    f"event {index} span starting at {ts} overlaps the "
                    f"previous span on pid/tid {key} (ends "
                    f"{span_end[key]})"
                )
            span_end[key] = ts + dur
        elif ph == "B":
            open_be[key] = open_be.get(key, 0) + 1
        elif ph == "E":
            if open_be.get(key, 0) <= 0:
                raise TraceValidationError(
                    f"event {index}: 'E' with no open 'B' on pid/tid {key}"
                )
            open_be[key] -= 1
        elif ph == "i":
            pass
        elif ph == "C":
            _require(event, index, "args")
        else:
            raise TraceValidationError(
                f"event {index} has unsupported phase {ph!r}"
            )

    unbalanced = {k: n for k, n in open_be.items() if n}
    if unbalanced:
        raise TraceValidationError(
            f"unbalanced 'B' events left open: {unbalanced}"
        )
    return counted
