"""Workload-parameter sensitivity analysis.

The scheduling results depend on a handful of workload ratios (hotness
skew, compile/exec balance, optimization payoff — see DESIGN.md §6).
This module sweeps one :class:`~repro.workloads.synthetic.WorkloadSpec`
parameter at a time and reports how the Figure-5 metrics respond, so
the calibration is an *experiment*, not a folk theorem.  It also
answers the practical question the limit study raises: in which cost
regimes does scheduling matter most?
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from ..core.bounds import lower_bound
from ..core.iar import iar_schedule
from ..core.makespan import simulate
from ..core.single_level import base_level_schedule
from ..vm.costbenefit import EstimatedModel
from ..vm.jikes import run_jikes
from ..workloads.synthetic import WorkloadSpec, generate
from .experiments import project_to_model_levels

__all__ = ["sweep_parameter", "DEFAULT_BASE_SPEC"]

DEFAULT_BASE_SPEC = WorkloadSpec(
    name="sensitivity",
    num_functions=120,
    num_calls=40_000,
    num_levels=4,
    zipf_s=1.45,
    mean_exec_us=2.0,
    base_compile_us=20.0,
    level_compile_factors=(1.0, 15.0, 45.0, 120.0),
    max_speedup_range=(3.0, 15.0),
)
"""A mid-size workload in the calibrated regime, used as sweep origin."""


def _measure(spec: WorkloadSpec, seed: int) -> Dict[str, float]:
    instance = generate(spec, seed=seed)
    model = EstimatedModel(instance)
    projected = project_to_model_levels(instance, model)
    lb = lower_bound(projected)
    iar_span = simulate(
        projected, iar_schedule(projected), validate=False
    ).makespan
    jikes_span = run_jikes(projected, model=EstimatedModel(projected)).makespan
    base_span = simulate(
        projected, base_level_schedule(projected), validate=False
    ).makespan
    return {
        "iar": iar_span / lb,
        "jikes": jikes_span / lb,
        "base_level": base_span / lb,
        "scheduling_payoff": jikes_span / iar_span,
    }


def sweep_parameter(
    parameter: str,
    values: Sequence,
    base_spec: WorkloadSpec = DEFAULT_BASE_SPEC,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Vary one spec field, measure the Figure-5 metrics at each value.

    Args:
        parameter: a :class:`WorkloadSpec` field name (e.g. ``zipf_s``,
            ``base_compile_us``, ``max_speedup_range``, ``num_phases``).
        values: values to sweep over.
        base_spec: the spec every other field comes from.
        seed: workload seed, fixed across the sweep so only the swept
            parameter changes.

    Returns:
        One row per value: ``{parameter, iar, jikes, base_level,
        scheduling_payoff}`` where ``scheduling_payoff`` is the Jikes/IAR
        make-span ratio (how much a planned order buys).

    Raises:
        TypeError: if ``parameter`` is not a spec field.
    """
    if parameter not in WorkloadSpec.__dataclass_fields__:
        raise TypeError(f"{parameter!r} is not a WorkloadSpec field")
    rows: List[Dict[str, object]] = []
    for value in values:
        spec = replace(base_spec, **{parameter: value})
        row: Dict[str, object] = {parameter: value}
        row.update(_measure(spec, seed))
        rows.append(row)
    return rows
