"""Metrics used throughout the evaluation.

The paper normalizes make-spans against the Section 5.2 lower bound
(Figures 5, 6, 8) and reports concurrency speed-ups against the 1-core
IAR make-span (Figure 7).  These helpers keep those conventions in one
place.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

__all__ = [
    "normalized",
    "gap",
    "speedup",
    "arithmetic_mean",
    "geometric_mean",
    "summarize_normalized",
]


def normalized(makespan: float, lower_bound: float) -> float:
    """Make-span normalized to the lower bound (1.0 = at the bound)."""
    if lower_bound <= 0:
        raise ValueError("lower bound must be positive")
    return makespan / lower_bound


def gap(makespan: float, lower_bound: float) -> float:
    """Relative gap above the lower bound: ``makespan/lb - 1``.

    The paper speaks of e.g. "a gap greater than 50%"; that is
    ``gap > 0.5``.
    """
    return normalized(makespan, lower_bound) - 1.0


def speedup(baseline: float, improved: float) -> float:
    """``baseline / improved`` (>1 means ``improved`` is faster)."""
    if improved <= 0:
        raise ValueError("improved make-span must be positive")
    return baseline / improved


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def summarize_normalized(per_benchmark: Dict[str, float]) -> Dict[str, float]:
    """Mean/min/max summary of normalized make-spans across a suite."""
    values = list(per_benchmark.values())
    return {
        "mean": arithmetic_mean(values),
        "geomean": geometric_mean(values),
        "min": min(values),
        "max": max(values),
    }
