"""Experiment drivers — one per table/figure of the paper's evaluation.

Each driver takes a benchmark suite (``{name: OCSPInstance}``, normally
from :func:`repro.workloads.dacapo.load_suite`) and returns plain rows
(dicts) so tests, examples, and benchmarks share identical logic.  The
mapping to the paper:

=====================  ===============================================
driver                 reproduces
=====================  ===============================================
:func:`table1`         Table 1 (benchmark characteristics)
:func:`figure5`        Fig. 5 (schemes vs lower bound, default model)
:func:`figure6`        Fig. 6 (same, oracle cost-benefit model)
:func:`figure7`        Fig. 7 (concurrent-JIT speed-ups on IAR)
:func:`figure8`        Fig. 8 (V8 scheme, two levels)
:func:`table2`         Table 2 (IAR scheduling overhead)
:func:`astar_scaling`  Section 6.2.5 (A*-search feasibility)
=====================  ===============================================
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.astar import AStarMemoryExceeded, astar_schedule
from ..core.bounds import lower_bound
from ..core.iar import IARParams, iar
from ..core.makespan import simulate
from ..core.model import OCSPInstance
from ..core.single_level import base_level_schedule, optimizing_level_schedule
from ..vm.costbenefit import CostBenefitModel, EstimatedModel, OracleModel
from ..vm.jikes import run_jikes
from ..vm.v8 import run_v8
from ..workloads import WorkloadSpec, generate
from ..workloads import dacapo
from . import metrics

__all__ = [
    "table1",
    "scheme_comparison",
    "grand_comparison",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "table2",
    "astar_scaling",
    "average_row",
    "PARALLEL_DRIVERS",
    "SuiteRun",
    "run_parallel",
]

Suite = Dict[str, OCSPInstance]


def table1(scale: float = 0.02) -> List[Dict[str, object]]:
    """Table 1: benchmark characteristics (paper vs generated)."""
    return dacapo.table1_rows(scale=scale)


ModelFactory = "Callable[[OCSPInstance], CostBenefitModel]"


def _model_levels(instance: OCSPInstance, model: CostBenefitModel) -> Dict[str, int]:
    """The cost-benefit model's suitable level per function (most
    cost-effective under the model's predicted hotness)."""
    return {
        fname: model.suitable_level(fname, instance.call_count(fname))
        for fname in instance.called_functions
    }


def project_to_model_levels(
    instance: OCSPInstance, model: CostBenefitModel
) -> OCSPInstance:
    """Two-level projection: level 0 plus the model's suitable level.

    The paper's Figures 5–7 operate on exactly two candidate levels per
    function — "the lowest level, and the most cost-effective level
    that is determined by the ... cost-benefit model" — and normalize
    against the lower bound *of that projection*.  That is why the
    oracle model of Figure 6 lowers the bound (it picks faster suitable
    levels) and why Figure 8's two-lowest-levels projection raises it.
    """
    levels = _model_levels(instance, model)
    return instance.restricted_to_levels(
        {fname: sorted({0, lvl}) for fname, lvl in levels.items()}
    )


def scheme_comparison(
    instance: OCSPInstance,
    model_factory=EstimatedModel,
    compile_threads: int = 1,
    iar_params: IARParams = IARParams(),
    tracer=None,
) -> Dict[str, float]:
    """Normalized make-span of every scheme on one benchmark.

    Returns keys ``lower_bound`` (1.0 by construction), ``iar``,
    ``default`` (Jikes RVM scheme), ``base_level``, ``optimizing_level``
    — the five bars of Figures 5/6.  All schemes run on the two-level
    projection chosen by the cost-benefit model (see
    :func:`project_to_model_levels`).

    Args:
        instance: the benchmark.
        model_factory: builds the cost-benefit model for an instance
            (:class:`EstimatedModel` for Figure 5, :class:`OracleModel`
            for Figure 6).
        compile_threads: compiler threads for the schedule simulations.
        iar_params: IAR knobs.
        tracer: optional :class:`repro.observability.Tracer`; each
            scheme's run lands in its own process group (``iar``,
            ``jikes``, ``base_level``, ``optimizing_level``) so one
            trace file shows the four timelines side by side.
    """
    model = model_factory(instance)
    projected = project_to_model_levels(instance, model)
    lb = lower_bound(projected)
    high = {
        fname: projected.profiles[fname].num_levels - 1
        for fname in projected.called_functions
    }

    def scoped(process: str):
        return None if tracer is None else tracer.scope(process)

    iar_sched = iar(projected, iar_params, high_levels=high).schedule
    iar_result = simulate(
        projected, iar_sched, compile_threads=compile_threads, validate=False,
        tracer=scoped("iar"),
    )

    default_result = run_jikes(
        projected, model=model_factory(projected),
        compile_threads=compile_threads, tracer=scoped("jikes"),
    )

    base_result = simulate(
        projected,
        base_level_schedule(projected),
        compile_threads=compile_threads,
        validate=False,
        tracer=scoped("base_level"),
    )

    opt_result = simulate(
        projected,
        optimizing_level_schedule(projected, levels=high),
        compile_threads=compile_threads,
        validate=False,
        tracer=scoped("optimizing_level"),
    )

    return {
        "lower_bound": 1.0,
        "iar": metrics.normalized(iar_result.makespan, lb),
        "default": metrics.normalized(default_result.makespan, lb),
        "base_level": metrics.normalized(base_result.makespan, lb),
        "optimizing_level": metrics.normalized(opt_result.makespan, lb),
    }


def _trace_into(trace_dir: str, label: str, name: str):
    """A fresh tracer whose events will be written to
    ``{trace_dir}/{label}-{name}.trace.json`` by :func:`_write_trace`."""
    from ..observability import Tracer

    os.makedirs(trace_dir, exist_ok=True)
    return Tracer()


def _write_trace(tracer, trace_dir: str, label: str, name: str) -> None:
    from ..observability import write_chrome_trace

    path = os.path.join(trace_dir, f"{label}-{name}.trace.json")
    write_chrome_trace(tracer, path)


def _figure_rows(
    suite: Suite,
    model_factory,
    compile_threads: int = 1,
    trace_dir: Optional[str] = None,
    label: str = "figure",
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for name, instance in suite.items():
        tracer = (
            _trace_into(trace_dir, label, name) if trace_dir is not None else None
        )
        row: Dict[str, object] = {"benchmark": name}
        row.update(
            scheme_comparison(
                instance,
                model_factory=model_factory,
                compile_threads=compile_threads,
                tracer=tracer,
            )
        )
        if tracer is not None:
            _write_trace(tracer, trace_dir, label, name)
        rows.append(row)
    return rows


def figure5(
    suite: Suite, model_seed: int = 0, trace_dir: Optional[str] = None
) -> List[Dict[str, object]]:
    """Figure 5: normalized make-spans under the default (estimated)
    cost-benefit model.

    With ``trace_dir``, each benchmark's four scheme runs are dumped as
    ``figure5-<benchmark>.trace.json`` Chrome trace files.
    """
    return _figure_rows(
        suite,
        lambda inst: EstimatedModel(inst, seed=model_seed),
        trace_dir=trace_dir,
        label="figure5",
    )


def figure6(
    suite: Suite, trace_dir: Optional[str] = None
) -> List[Dict[str, object]]:
    """Figure 6: normalized make-spans under the oracle model."""
    return _figure_rows(
        suite, OracleModel, trace_dir=trace_dir, label="figure6"
    )


def figure7(
    suite: Suite,
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
    model_seed: int = 0,
) -> List[Dict[str, object]]:
    """Figure 7: speed-up of the IAR schedule from concurrent JIT.

    The IAR task order is fixed; tasks are served by ``k`` compiler
    threads.  Speed-up is relative to the 1-thread make-span, with the
    default cost-benefit model, as in the paper.
    """
    rows: List[Dict[str, object]] = []
    for name, instance in suite.items():
        model = EstimatedModel(instance, seed=model_seed)
        projected = project_to_model_levels(instance, model)
        sched = iar(projected).schedule
        base = simulate(projected, sched, compile_threads=1, validate=False).makespan
        row: Dict[str, object] = {"benchmark": name}
        for k in core_counts:
            span = simulate(
                projected, sched, compile_threads=k, validate=False
            ).makespan
            row[f"cores_{k}"] = metrics.speedup(base, span)
        rows.append(row)
    return rows


def figure8(
    suite: Suite, levels=(0, 1), trace_dir: Optional[str] = None
) -> List[Dict[str, object]]:
    """Figure 8: the V8 scheme, on two-level projections of the suite.

    The paper uses the lowest two Jikes levels as V8's low/high pair;
    the lower bound is recomputed for the projected (2-level) instance,
    which is why all gaps shrink relative to Figure 5.
    """
    low, high = levels
    rows: List[Dict[str, object]] = []
    for name, instance in suite.items():
        tracer = (
            _trace_into(trace_dir, "figure8", name)
            if trace_dir is not None
            else None
        )

        def scoped(process: str):
            return None if tracer is None else tracer.scope(process)

        projected = instance.restricted_to_levels(
            {fname: [low, high] for fname in instance.profiles}
        )
        lb = lower_bound(projected)
        v8_result = run_v8(projected, levels=(0, 1), tracer=scoped("v8"))
        iar_sched = iar(projected).schedule
        iar_result = simulate(
            projected, iar_sched, validate=False, tracer=scoped("iar")
        )
        base_result = simulate(
            projected, base_level_schedule(projected), validate=False,
            tracer=scoped("base_level"),
        )
        opt_result = simulate(
            projected, optimizing_level_schedule(projected), validate=False,
            tracer=scoped("optimizing_level"),
        )
        if tracer is not None:
            _write_trace(tracer, trace_dir, "figure8", name)
        rows.append(
            {
                "benchmark": name,
                "lower_bound": 1.0,
                "iar": metrics.normalized(iar_result.makespan, lb),
                "default": metrics.normalized(v8_result.makespan, lb),
                "base_level": metrics.normalized(base_result.makespan, lb),
                "optimizing_level": metrics.normalized(opt_result.makespan, lb),
            }
        )
    return rows


def table2(suite: Suite, model_seed: int = 0) -> List[Dict[str, object]]:
    """Table 2: wall-clock overhead of running IAR itself.

    ``percent_of_program`` compares the host seconds spent inside
    :func:`repro.core.iar.iar` against the benchmark's simulated
    make-span (virtual microseconds → seconds), matching the paper's
    "percentage over whole program time" column.
    """
    rows: List[Dict[str, object]] = []
    for name, instance in suite.items():
        model = EstimatedModel(instance, seed=model_seed)
        projected = project_to_model_levels(instance, model)
        started = time.perf_counter()
        result = iar(projected)
        elapsed = time.perf_counter() - started
        span_seconds = (
            simulate(projected, result.schedule, validate=False).makespan / 1e6
        )
        rows.append(
            {
                "benchmark": name,
                "iar_time_s": elapsed,
                "program_time_s": span_seconds,
                "percent_of_program": 100.0 * elapsed / span_seconds
                if span_seconds > 0
                else float("inf"),
            }
        )
    return rows


def astar_scaling(
    function_counts: Sequence[int] = (2, 3, 4, 5, 6, 7),
    calls_per_instance: int = 50,
    max_frontier: int = 200_000,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Section 6.2.5: A*-search feasibility versus instance size.

    Two-level instances with ``m`` unique functions and a fixed call
    count; reports nodes expanded and total path count on success, or
    the out-of-memory point (the paper's Java implementation dies past
    six functions with a 2 GB heap; our bound is the frontier size).
    """
    rows: List[Dict[str, object]] = []
    for m in function_counts:
        spec = WorkloadSpec(
            name=f"astar-m{m}",
            num_functions=m,
            num_calls=calls_per_instance,
            num_levels=2,
            base_compile_us=200.0,
            mean_exec_us=50.0,
        )
        instance = generate(spec, seed=seed)
        row: Dict[str, object] = {"functions": m, "calls": instance.num_calls}
        try:
            result = astar_schedule(instance, max_frontier=max_frontier)
            row.update(
                {
                    "status": "optimal",
                    "nodes_expanded": result.nodes_expanded,
                    "paths_total": result.paths_total,
                    "makespan": result.makespan,
                }
            )
        except AStarMemoryExceeded as exc:
            row.update(
                {
                    "status": "out-of-memory",
                    "nodes_expanded": exc.nodes_expanded,
                    "paths_total": None,
                    "makespan": None,
                }
            )
        rows.append(row)
    return rows


def grand_comparison(
    instance: OCSPInstance,
    model_factory=EstimatedModel,
    iar_params: IARParams = IARParams(),
) -> Dict[str, float]:
    """Every scheduler in the library on one benchmark (extension).

    Beyond the paper's five bars, this adds the HotSpot-style tiered
    scheme and the static baseline policies, all on the model-level
    projection and normalized to its lower bound.
    """
    from ..core.baselines import (
        greedy_budget_schedule,
        hotness_first_schedule,
        ondemand_promotion_schedule,
    )
    from ..vm.hotspot import run_tiered

    model = model_factory(instance)
    projected = project_to_model_levels(instance, model)
    lb = lower_bound(projected)

    def span_of(schedule) -> float:
        return simulate(projected, schedule, validate=False).makespan / lb

    row = {
        "lower_bound": 1.0,
        "iar": span_of(iar(projected, iar_params).schedule),
        "jikes": run_jikes(projected, model=model_factory(projected)).makespan / lb,
        "v8": run_v8(projected).makespan / lb,
        "tiered": run_tiered(projected, thresholds=(1, 100)).makespan / lb,
        "ondemand": span_of(ondemand_promotion_schedule(projected)),
        "hotness_first": span_of(hotness_first_schedule(projected)),
        "greedy_budget": span_of(greedy_budget_schedule(projected)),
        "base_level": span_of(base_level_schedule(projected)),
        "optimizing_level": span_of(
            optimizing_level_schedule(
                projected,
                levels={
                    f: projected.profiles[f].num_levels - 1
                    for f in projected.called_functions
                },
            )
        ),
    }
    return row


# ----------------------------------------------------------------------
# Parallel experiment runner
# ----------------------------------------------------------------------
#
# Every figure/table driver above computes each benchmark's row
# independently, so a (driver, benchmark) pair is a natural unit of
# work: the suite fans out across processes and the rows reassemble in
# suite order, yielding results numerically identical to the serial
# path.  A unit that raises is reported as an error entry instead of
# killing the run — one failing trace degrades the study gracefully.

PARALLEL_DRIVERS: Dict[str, Callable[..., List[Dict[str, object]]]] = {}


def _parallel_driver(func):
    PARALLEL_DRIVERS[func.__name__] = func
    return func


for _driver in (figure5, figure6, figure7, figure8, table2):
    _parallel_driver(_driver)


@dataclass(frozen=True)
class SuiteRun:
    """Outcome of :func:`run_parallel`.

    Attributes:
        rows: driver name → rows, in driver order then suite order —
            exactly what the serial driver would have returned, minus
            the rows of failed units.
        errors: one entry per failed (driver, benchmark) unit:
            ``{"driver", "benchmark", "error"}``.
        jobs: worker processes actually used (1 = serial).
    """

    rows: Dict[str, List[Dict[str, object]]]
    errors: Tuple[Dict[str, str], ...]
    jobs: int

    @property
    def ok(self) -> bool:
        return not self.errors


# Set (in the parent) right before a fork-context pool spawns its
# workers: forked children inherit the suite through copy-on-write
# memory, so work units travel as names only and the multi-hundred-MB
# instances are never pickled.  ``None`` outside a fork-pool window.
_FORK_SUITE: Optional[Suite] = None


def _run_unit(unit):
    """One (driver, benchmark) work unit; exceptions become data."""
    driver_name, bench_name, instance, kwargs = unit
    if instance is None:  # fork path: read the inherited suite
        instance = _FORK_SUITE[bench_name]
    try:
        rows = PARALLEL_DRIVERS[driver_name]({bench_name: instance}, **kwargs)
        return driver_name, bench_name, rows, None
    except Exception as exc:  # isolate the failing trace
        return driver_name, bench_name, [], f"{type(exc).__name__}: {exc}"


def run_parallel(
    suite: Suite,
    drivers: Sequence[str] = ("figure5", "figure6", "figure7", "figure8", "table2"),
    jobs: Optional[int] = None,
    driver_kwargs: Optional[Dict[str, Dict[str, object]]] = None,
) -> SuiteRun:
    """Run experiment drivers over a suite, fanning benchmarks out
    across processes.

    Args:
        suite: ``{benchmark: instance}`` (e.g. from
            :func:`repro.workloads.dacapo.load_suite`).
        drivers: names from :data:`PARALLEL_DRIVERS` to run.
        jobs: worker processes; ``None`` picks ``min(cpu_count, units)``
            and ``1`` runs serially (same code path, same isolation).
        driver_kwargs: optional per-driver keyword arguments (e.g.
            ``{"figure5": {"model_seed": 1}}``).

    Returns:
        A :class:`SuiteRun`; row ordering is deterministic (driver
        order, then suite insertion order) regardless of ``jobs``.

    Raises:
        KeyError: for an unknown driver name.
    """
    driver_kwargs = driver_kwargs or {}
    for name in drivers:
        if name not in PARALLEL_DRIVERS:
            raise KeyError(
                f"unknown driver {name!r}; available: "
                f"{sorted(PARALLEL_DRIVERS)}"
            )
    units = [
        (driver, bench, instance, driver_kwargs.get(driver, {}))
        for driver in drivers
        for bench, instance in suite.items()
    ]
    if jobs is None:
        try:
            available = len(os.sched_getaffinity(0))
        except AttributeError:  # macOS / Windows
            available = os.cpu_count() or 1
        jobs = min(available, max(len(units), 1))
    jobs = max(1, int(jobs))

    outcomes = None
    used_jobs = 1
    if jobs > 1 and len(units) > 1:
        global _FORK_SUITE
        try:
            import concurrent.futures
            import multiprocessing

            if "fork" in multiprocessing.get_all_start_methods():
                # Fork workers inherit ``suite`` (and every imported
                # module) via copy-on-write, so units ship as names
                # only.  Shipping the instances themselves through the
                # pickle pipe costs more than the driver work saves.
                mp_context = multiprocessing.get_context("fork")
                pool_units = [
                    (driver, bench, None, kwargs)
                    for driver, bench, _, kwargs in units
                ]
                _FORK_SUITE = suite
            else:
                mp_context = None
                pool_units = units
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(jobs, len(units)), mp_context=mp_context
            ) as pool:
                outcomes = list(pool.map(_run_unit, pool_units, chunksize=1))
            used_jobs = min(jobs, len(units))
        except (ImportError, OSError, PermissionError):
            # No usable multiprocessing (restricted sandbox, missing
            # /dev/shm, ...): degrade to the serial path.
            outcomes = None
        finally:
            _FORK_SUITE = None
    if outcomes is None:
        outcomes = [_run_unit(unit) for unit in units]
        used_jobs = 1

    rows: Dict[str, List[Dict[str, object]]] = {name: [] for name in drivers}
    errors: List[Dict[str, str]] = []
    for driver_name, bench_name, unit_rows, error in outcomes:
        if error is not None:
            errors.append(
                {"driver": driver_name, "benchmark": bench_name, "error": error}
            )
            continue
        rows[driver_name].extend(unit_rows)
    return SuiteRun(rows=rows, errors=tuple(errors), jobs=used_jobs)


def average_row(
    rows: List[Dict[str, object]], keys: Iterable[str], mean: str = "arith"
) -> Dict[str, object]:
    """Append-style 'average' row over the numeric ``keys``.

    The paper's figures lead with an *average* group; drivers return
    per-benchmark rows and this helper computes that group.

    Args:
        rows: per-benchmark rows.
        keys: numeric columns to aggregate.
        mean: ``"arith"`` (plain average — raw times, speed-up factors)
            or ``"geo"`` (geometric mean — the correct aggregate for
            *normalized* make-spans: ratios multiply, so averaging them
            arithmetically overweights the slow benchmarks).

    Raises:
        ValueError: for an unknown ``mean``.
    """
    if mean not in ("arith", "geo"):
        raise ValueError(f"mean must be 'arith' or 'geo', got {mean!r}")
    aggregate = (
        metrics.geometric_mean if mean == "geo" else metrics.arithmetic_mean
    )
    out: Dict[str, object] = {"benchmark": "average"}
    for key in keys:
        values = [float(row[key]) for row in rows if row.get(key) is not None]
        out[key] = aggregate(values) if values else None
    return out
