"""Experiment drivers — one per table/figure of the paper's evaluation.

Each driver takes a benchmark suite (``{name: OCSPInstance}``, normally
from :func:`repro.workloads.dacapo.load_suite`) and returns plain rows
(dicts) so tests, examples, and benchmarks share identical logic.  The
mapping to the paper:

=====================  ===============================================
driver                 reproduces
=====================  ===============================================
:func:`table1`         Table 1 (benchmark characteristics)
:func:`figure5`        Fig. 5 (schemes vs lower bound, default model)
:func:`figure6`        Fig. 6 (same, oracle cost-benefit model)
:func:`figure7`        Fig. 7 (concurrent-JIT speed-ups on IAR)
:func:`figure8`        Fig. 8 (V8 scheme, two levels)
:func:`table2`         Table 2 (IAR scheduling overhead)
:func:`astar_scaling`  Section 6.2.5 (A*-search feasibility)
=====================  ===============================================
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.astar import AStarMemoryExceeded, astar_schedule
from ..store import (
    StoreCorruptionError,
    CODE_VERSION,
    ResultStore,
    RunState,
    UnitRecord,
    fingerprint_unit,
    load_runstate,
)
from ..core.bounds import lower_bound
from ..core.iar import IARParams, iar
from ..core.makespan import simulate
from ..core.model import OCSPInstance
from ..core.single_level import base_level_schedule, optimizing_level_schedule
from ..vm.costbenefit import CostBenefitModel, EstimatedModel, OracleModel
from ..vm.jikes import run_jikes
from ..vm.v8 import run_v8
from ..workloads import WorkloadSpec, generate
from ..workloads import dacapo
from . import metrics

__all__ = [
    "table1",
    "scheme_comparison",
    "grand_comparison",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "table2",
    "faults_sweep",
    "astar_scaling",
    "average_row",
    "PARALLEL_DRIVERS",
    "SuiteRun",
    "run_parallel",
]

Suite = Dict[str, OCSPInstance]


def table1(scale: float = 0.02) -> List[Dict[str, object]]:
    """Table 1: benchmark characteristics (paper vs generated)."""
    return dacapo.table1_rows(scale=scale)


ModelFactory = "Callable[[OCSPInstance], CostBenefitModel]"


def _model_levels(instance: OCSPInstance, model: CostBenefitModel) -> Dict[str, int]:
    """The cost-benefit model's suitable level per function (most
    cost-effective under the model's predicted hotness)."""
    return {
        fname: model.suitable_level(fname, instance.call_count(fname))
        for fname in instance.called_functions
    }


def project_to_model_levels(
    instance: OCSPInstance, model: CostBenefitModel
) -> OCSPInstance:
    """Two-level projection: level 0 plus the model's suitable level.

    The paper's Figures 5–7 operate on exactly two candidate levels per
    function — "the lowest level, and the most cost-effective level
    that is determined by the ... cost-benefit model" — and normalize
    against the lower bound *of that projection*.  That is why the
    oracle model of Figure 6 lowers the bound (it picks faster suitable
    levels) and why Figure 8's two-lowest-levels projection raises it.
    """
    levels = _model_levels(instance, model)
    return instance.restricted_to_levels(
        {fname: sorted({0, lvl}) for fname, lvl in levels.items()}
    )


def scheme_comparison(
    instance: OCSPInstance,
    model_factory=EstimatedModel,
    compile_threads: int = 1,
    iar_params: IARParams = IARParams(),
    tracer=None,
) -> Dict[str, float]:
    """Normalized make-span of every scheme on one benchmark.

    Returns keys ``lower_bound`` (1.0 by construction), ``iar``,
    ``default`` (Jikes RVM scheme), ``base_level``, ``optimizing_level``
    — the five bars of Figures 5/6.  All schemes run on the two-level
    projection chosen by the cost-benefit model (see
    :func:`project_to_model_levels`).

    Args:
        instance: the benchmark.
        model_factory: builds the cost-benefit model for an instance
            (:class:`EstimatedModel` for Figure 5, :class:`OracleModel`
            for Figure 6).
        compile_threads: compiler threads for the schedule simulations.
        iar_params: IAR knobs.
        tracer: optional :class:`repro.observability.Tracer`; each
            scheme's run lands in its own process group (``iar``,
            ``jikes``, ``base_level``, ``optimizing_level``) so one
            trace file shows the four timelines side by side.
    """
    model = model_factory(instance)
    projected = project_to_model_levels(instance, model)
    lb = lower_bound(projected)
    high = {
        fname: projected.profiles[fname].num_levels - 1
        for fname in projected.called_functions
    }

    def scoped(process: str):
        return None if tracer is None else tracer.scope(process)

    iar_sched = iar(projected, iar_params, high_levels=high).schedule
    iar_result = simulate(
        projected, iar_sched, compile_threads=compile_threads, validate=False,
        tracer=scoped("iar"),
    )

    default_result = run_jikes(
        projected, model=model_factory(projected),
        compile_threads=compile_threads, tracer=scoped("jikes"),
    )

    base_result = simulate(
        projected,
        base_level_schedule(projected),
        compile_threads=compile_threads,
        validate=False,
        tracer=scoped("base_level"),
    )

    opt_result = simulate(
        projected,
        optimizing_level_schedule(projected, levels=high),
        compile_threads=compile_threads,
        validate=False,
        tracer=scoped("optimizing_level"),
    )

    return {
        "lower_bound": 1.0,
        "iar": metrics.normalized(iar_result.makespan, lb),
        "default": metrics.normalized(default_result.makespan, lb),
        "base_level": metrics.normalized(base_result.makespan, lb),
        "optimizing_level": metrics.normalized(opt_result.makespan, lb),
    }


def _trace_into(trace_dir: str, label: str, name: str):
    """A fresh tracer whose events will be written to
    ``{trace_dir}/{label}-{name}.trace.json`` by :func:`_write_trace`."""
    from ..observability import Tracer

    os.makedirs(trace_dir, exist_ok=True)
    return Tracer()


def _write_trace(tracer, trace_dir: str, label: str, name: str) -> None:
    from ..observability import write_chrome_trace

    path = os.path.join(trace_dir, f"{label}-{name}.trace.json")
    write_chrome_trace(tracer, path)


def _figure_rows(
    suite: Suite,
    model_factory,
    compile_threads: int = 1,
    trace_dir: Optional[str] = None,
    label: str = "figure",
    faults: Optional[str] = None,
) -> List[Dict[str, object]]:
    faulty = faults is not None and faults != ""
    if faulty:
        from ..faults import faulty_scheme_comparison, parse_fault_spec

        spec = parse_fault_spec(faults)
        faulty = not spec.is_null
    rows: List[Dict[str, object]] = []
    for name, instance in suite.items():
        tracer = (
            _trace_into(trace_dir, label, name) if trace_dir is not None else None
        )
        row: Dict[str, object] = {"benchmark": name}
        if faulty:
            comparison, summary = faulty_scheme_comparison(
                instance,
                spec,
                model_factory=model_factory,
                compile_threads=compile_threads,
            )
            row.update(comparison)
            row["faults"] = summary
        else:
            row.update(
                scheme_comparison(
                    instance,
                    model_factory=model_factory,
                    compile_threads=compile_threads,
                    tracer=tracer,
                )
            )
        if tracer is not None:
            _write_trace(tracer, trace_dir, label, name)
        rows.append(row)
    return rows


def figure5(
    suite: Suite,
    model_seed: int = 0,
    trace_dir: Optional[str] = None,
    faults: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Figure 5: normalized make-spans under the default (estimated)
    cost-benefit model.

    With ``trace_dir``, each benchmark's four scheme runs are dumped as
    ``figure5-<benchmark>.trace.json`` Chrome trace files.  With a
    non-null ``faults`` spec string, every scheme runs degraded under
    that spec (see :mod:`repro.faults`) and each row gains a
    ``"faults"`` tally; tracing is unavailable on the faulty path.
    """
    return _figure_rows(
        suite,
        lambda inst: EstimatedModel(inst, seed=model_seed),
        trace_dir=trace_dir,
        label="figure5",
        faults=faults,
    )


def figure6(
    suite: Suite,
    trace_dir: Optional[str] = None,
    faults: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Figure 6: normalized make-spans under the oracle model."""
    return _figure_rows(
        suite, OracleModel, trace_dir=trace_dir, label="figure6",
        faults=faults,
    )


def figure7(
    suite: Suite,
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
    model_seed: int = 0,
) -> List[Dict[str, object]]:
    """Figure 7: speed-up of the IAR schedule from concurrent JIT.

    The IAR task order is fixed; tasks are served by ``k`` compiler
    threads.  Speed-up is relative to the 1-thread make-span, with the
    default cost-benefit model, as in the paper.
    """
    rows: List[Dict[str, object]] = []
    for name, instance in suite.items():
        model = EstimatedModel(instance, seed=model_seed)
        projected = project_to_model_levels(instance, model)
        sched = iar(projected).schedule
        base = simulate(projected, sched, compile_threads=1, validate=False).makespan
        row: Dict[str, object] = {"benchmark": name}
        for k in core_counts:
            span = simulate(
                projected, sched, compile_threads=k, validate=False
            ).makespan
            row[f"cores_{k}"] = metrics.speedup(base, span)
        rows.append(row)
    return rows


def figure8(
    suite: Suite,
    levels=(0, 1),
    trace_dir: Optional[str] = None,
    faults: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Figure 8: the V8 scheme, on two-level projections of the suite.

    The paper uses the lowest two Jikes levels as V8's low/high pair;
    the lower bound is recomputed for the projected (2-level) instance,
    which is why all gaps shrink relative to Figure 5.  A non-null
    ``faults`` spec string degrades every scheme (see
    :mod:`repro.faults`); tracing is unavailable on the faulty path.
    """
    low, high = levels
    faulty = faults is not None and faults != ""
    if faulty:
        from ..faults import faulty_v8_comparison, parse_fault_spec

        spec = parse_fault_spec(faults)
        faulty = not spec.is_null
    if faulty:
        rows = []
        for name, instance in suite.items():
            comparison, summary = faulty_v8_comparison(
                instance, spec, levels=levels
            )
            row: Dict[str, object] = {"benchmark": name}
            row.update(comparison)
            row["faults"] = summary
            rows.append(row)
        return rows
    rows: List[Dict[str, object]] = []
    for name, instance in suite.items():
        tracer = (
            _trace_into(trace_dir, "figure8", name)
            if trace_dir is not None
            else None
        )

        def scoped(process: str):
            return None if tracer is None else tracer.scope(process)

        projected = instance.restricted_to_levels(
            {fname: [low, high] for fname in instance.profiles}
        )
        lb = lower_bound(projected)
        v8_result = run_v8(projected, levels=(0, 1), tracer=scoped("v8"))
        iar_sched = iar(projected).schedule
        iar_result = simulate(
            projected, iar_sched, validate=False, tracer=scoped("iar")
        )
        base_result = simulate(
            projected, base_level_schedule(projected), validate=False,
            tracer=scoped("base_level"),
        )
        opt_result = simulate(
            projected, optimizing_level_schedule(projected), validate=False,
            tracer=scoped("optimizing_level"),
        )
        if tracer is not None:
            _write_trace(tracer, trace_dir, "figure8", name)
        rows.append(
            {
                "benchmark": name,
                "lower_bound": 1.0,
                "iar": metrics.normalized(iar_result.makespan, lb),
                "default": metrics.normalized(v8_result.makespan, lb),
                "base_level": metrics.normalized(base_result.makespan, lb),
                "optimizing_level": metrics.normalized(opt_result.makespan, lb),
            }
        )
    return rows


def faults_sweep(
    suite: Suite,
    spec: str = "",
    rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4),
    dimension: str = "compile_fail",
    model_seed: int = 0,
) -> List[Dict[str, object]]:
    """Degradation curves: the Figure 5 comparison at several rates of
    one fault dimension (``repro faults sweep``).

    Thin, process-pool-safe wrapper over
    :func:`repro.faults.sweep.fault_sweep_rows` (imported lazily so
    spawn-context workers can pickle units by driver name without
    importing the fault layer up front).
    """
    from ..faults.sweep import fault_sweep_rows

    return fault_sweep_rows(
        suite,
        spec=spec,
        rates=tuple(rates),
        dimension=dimension,
        model_seed=model_seed,
    )


def table2(suite: Suite, model_seed: int = 0) -> List[Dict[str, object]]:
    """Table 2: wall-clock overhead of running IAR itself.

    ``percent_of_program`` compares the host seconds spent inside
    :func:`repro.core.iar.iar` against the benchmark's simulated
    make-span (virtual microseconds → seconds), matching the paper's
    "percentage over whole program time" column.
    """
    rows: List[Dict[str, object]] = []
    for name, instance in suite.items():
        model = EstimatedModel(instance, seed=model_seed)
        projected = project_to_model_levels(instance, model)
        started = time.perf_counter()
        result = iar(projected)
        elapsed = time.perf_counter() - started
        span_seconds = (
            simulate(projected, result.schedule, validate=False).makespan / 1e6
        )
        rows.append(
            {
                "benchmark": name,
                "iar_time_s": elapsed,
                "program_time_s": span_seconds,
                "percent_of_program": 100.0 * elapsed / span_seconds
                if span_seconds > 0
                else float("inf"),
            }
        )
    return rows


def astar_scaling(
    function_counts: Sequence[int] = (2, 3, 4, 5, 6, 7),
    calls_per_instance: int = 50,
    max_frontier: int = 200_000,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Section 6.2.5: A*-search feasibility versus instance size.

    Two-level instances with ``m`` unique functions and a fixed call
    count; reports nodes expanded and total path count on success, or
    the out-of-memory point (the paper's Java implementation dies past
    six functions with a 2 GB heap; our bound is the frontier size).
    """
    rows: List[Dict[str, object]] = []
    for m in function_counts:
        spec = WorkloadSpec(
            name=f"astar-m{m}",
            num_functions=m,
            num_calls=calls_per_instance,
            num_levels=2,
            base_compile_us=200.0,
            mean_exec_us=50.0,
        )
        instance = generate(spec, seed=seed)
        row: Dict[str, object] = {"functions": m, "calls": instance.num_calls}
        try:
            result = astar_schedule(instance, max_frontier=max_frontier)
            row.update(
                {
                    "status": "optimal",
                    "nodes_expanded": result.nodes_expanded,
                    "paths_total": result.paths_total,
                    "makespan": result.makespan,
                }
            )
        except AStarMemoryExceeded as exc:
            row.update(
                {
                    "status": "out-of-memory",
                    "nodes_expanded": exc.nodes_expanded,
                    "paths_total": None,
                    "makespan": None,
                }
            )
        rows.append(row)
    return rows


def grand_comparison(
    instance: OCSPInstance,
    model_factory=EstimatedModel,
    iar_params: IARParams = IARParams(),
) -> Dict[str, float]:
    """Every scheduler in the library on one benchmark (extension).

    Beyond the paper's five bars, this adds the HotSpot-style tiered
    scheme and the static baseline policies, all on the model-level
    projection and normalized to its lower bound.
    """
    from ..core.baselines import (
        greedy_budget_schedule,
        hotness_first_schedule,
        ondemand_promotion_schedule,
    )
    from ..vm.hotspot import run_tiered

    model = model_factory(instance)
    projected = project_to_model_levels(instance, model)
    lb = lower_bound(projected)

    def span_of(schedule) -> float:
        return simulate(projected, schedule, validate=False).makespan / lb

    row = {
        "lower_bound": 1.0,
        "iar": span_of(iar(projected, iar_params).schedule),
        "jikes": run_jikes(projected, model=model_factory(projected)).makespan / lb,
        "v8": run_v8(projected).makespan / lb,
        "tiered": run_tiered(projected, thresholds=(1, 100)).makespan / lb,
        "ondemand": span_of(ondemand_promotion_schedule(projected)),
        "hotness_first": span_of(hotness_first_schedule(projected)),
        "greedy_budget": span_of(greedy_budget_schedule(projected)),
        "base_level": span_of(base_level_schedule(projected)),
        "optimizing_level": span_of(
            optimizing_level_schedule(
                projected,
                levels={
                    f: projected.profiles[f].num_levels - 1
                    for f in projected.called_functions
                },
            )
        ),
    }
    return row


# ----------------------------------------------------------------------
# Fault-tolerant parallel experiment runner
# ----------------------------------------------------------------------
#
# Every figure/table driver above computes each benchmark's row
# independently, so a (driver, benchmark) pair is a natural unit of
# work: the suite fans out across processes and the rows reassemble in
# suite order, yielding results numerically identical to the serial
# path.  Units are treated as idempotent jobs, in the sense of the
# scheduling-at-scale literature: results live in a content-addressed
# :class:`repro.store.ResultStore`, progress is journaled per unit so a
# killed run resumes where it stopped, and worker failures — a raising
# driver, a hung worker, a worker killed by the OS — retry with
# exponential backoff instead of aborting the suite.

PARALLEL_DRIVERS: Dict[str, Callable[..., List[Dict[str, object]]]] = {}


def _parallel_driver(func):
    PARALLEL_DRIVERS[func.__name__] = func
    return func


for _driver in (figure5, figure6, figure7, figure8, table2, faults_sweep):
    _parallel_driver(_driver)


# Poll interval of the scheduling loop (retry release, timeout checks).
_POOL_TICK_S = 0.05
# A worker crash breaks the whole ProcessPoolExecutor; the runner
# rebuilds it and resumes.  Past this many rebuilds the pool is judged
# unusable and the remaining units fail (never falling back to in-
# process execution: the unit that keeps killing workers would then
# kill the caller).
_MAX_POOL_REBUILDS = 8


@dataclass(frozen=True)
class SuiteRun:
    """Outcome of :func:`run_parallel`.

    Attributes:
        rows: driver name → rows, in driver order then suite order —
            exactly what the serial driver would have returned, minus
            the rows of failed units.
        errors: one entry per failed (driver, benchmark) unit:
            ``{"driver", "benchmark", "error"}``.
        jobs: worker processes actually used (1 = serial).
        statuses: unit key (``"driver/benchmark"``) → final status:
            ``cached`` (served from the result store or the resume
            journal), ``computed`` (ran, first attempt), ``retried``
            (ran, after at least one failed attempt or pool rebuild),
            ``failed`` (attempts exhausted), or ``timed_out`` (attempts
            exhausted, last attempt exceeded the wall-clock budget).
        cache_hits: units served without recomputation (= the number of
            ``cached`` statuses); 0 when no store/journal was in play.
        cache_misses: units that had to be (re)computed despite a store
            or journal being available.
    """

    rows: Dict[str, List[Dict[str, object]]]
    errors: Tuple[Dict[str, str], ...]
    jobs: int
    statuses: Dict[str, str] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def status_counts(self) -> Dict[str, int]:
        """Histogram of per-unit statuses (for summaries and tests)."""
        counts: Dict[str, int] = {}
        for status in self.statuses.values():
            counts[status] = counts.get(status, 0) + 1
        return counts


class _UnitState:
    """Mutable bookkeeping for one (driver, benchmark) unit."""

    __slots__ = (
        "driver", "bench", "kwargs", "fingerprint",
        "attempts", "status", "rows", "error", "failure", "suspect",
    )

    def __init__(self, driver: str, bench: str, kwargs: Dict[str, object]):
        self.driver = driver
        self.bench = bench
        self.kwargs = kwargs
        self.fingerprint = ""
        self.attempts = 0
        self.status = "pending"
        self.rows: Optional[List[Dict[str, object]]] = None
        self.error: Optional[str] = None
        # Structured failure record (exception type, unit key, message,
        # traceback tail) journaled alongside the one-line ``error``.
        self.failure: Optional[Dict[str, object]] = None
        # Set when this unit was in flight during a pool breakage: the
        # crasher is indistinguishable from its victims, so all of them
        # are re-probed one at a time until exonerated (see
        # :func:`_execute_pool`).
        self.suspect = False

    @property
    def key(self) -> str:
        return f"{self.driver}/{self.bench}"


# Set (in the parent) right before a fork-context pool spawns its
# workers: forked children inherit the suite through copy-on-write
# memory, so work units travel as names only and the multi-hundred-MB
# instances are never pickled.  ``None`` outside a fork-pool window.
_FORK_SUITE: Optional[Suite] = None


def _failure_record(exc: BaseException, unit: str) -> Dict[str, object]:
    """A structured, journal-able description of one unit failure."""
    frames = traceback.extract_tb(exc.__traceback__)[-3:]
    return {
        "unit": unit,
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": [
            f"{frame.filename}:{frame.lineno} in {frame.name}"
            for frame in frames
        ],
    }


def _summarize(failure: Dict[str, object]) -> str:
    """The one-line ``error`` string for a failure record."""
    return f"{failure['type']}: {failure['message']}"


def _run_unit(unit):
    """One (driver, benchmark) work unit; exceptions become data.

    The caught exception travels back as a structured failure record
    (type, unit key, message, traceback tail), not a bare string —
    except store corruption, which is never the unit's fault and must
    abort the run rather than be charged as a per-unit failure.
    """
    driver_name, bench_name, instance, kwargs = unit
    if instance is None:  # fork path: read the inherited suite
        instance = _FORK_SUITE[bench_name]
    try:
        rows = PARALLEL_DRIVERS[driver_name]({bench_name: instance}, **kwargs)
        return driver_name, bench_name, rows, None
    except StoreCorruptionError:
        raise
    except Exception as exc:  # isolate the failing trace
        failure = _failure_record(exc, f"{driver_name}/{bench_name}")
        return driver_name, bench_name, [], failure


def _execute_serial(
    pending: List[_UnitState],
    suite: Suite,
    max_retries: int,
    retry_backoff: float,
    finalize: Callable[[_UnitState], None],
    metrics=None,
) -> None:
    """In-process execution with the same retry contract as the pool
    path (timeouts are not enforceable without a second process)."""
    for state in pending:
        while True:
            state.attempts += 1
            if metrics is not None:
                metrics.counter("runner.dispatched").inc()
            _, _, rows, failure = _run_unit(
                (state.driver, state.bench, suite[state.bench], state.kwargs)
            )
            if failure is None:
                state.rows = rows
                state.status = "computed" if state.attempts == 1 else "retried"
                break
            state.error = _summarize(failure)
            state.failure = failure
            if state.attempts > max_retries:
                state.status = "failed"
                break
            if metrics is not None:
                metrics.counter("runner.retries").inc()
            time.sleep(retry_backoff * (2 ** (state.attempts - 1)))
        finalize(state)


def _shutdown_pool(pool) -> None:
    """Tear a pool down even when a worker is stuck mid-task: cancel
    queued work, then terminate the worker processes (a hung task would
    otherwise pin its worker — and the caller — forever)."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except (OSError, RuntimeError):
        # A pool whose manager thread already died can raise while
        # draining its queues; the per-process terminate below is the
        # cleanup that actually matters.
        pass
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.terminate()
        except (OSError, ValueError):
            # ProcessLookupError (an OSError): already gone.  ValueError:
            # already closed.  Anything else is a real bug — surface it.
            pass


def _execute_pool(
    pending: List[_UnitState],
    suite: Suite,
    jobs: int,
    timeout: Optional[float],
    max_retries: int,
    retry_backoff: float,
    finalize: Callable[[_UnitState], None],
    metrics=None,
) -> bool:
    """Run ``pending`` units on a process pool; ``False`` means no pool
    could be created at all (caller degrades to the serial path).

    Fault model:

    * a unit whose driver *raises* returns an error outcome and is
      retried with exponential backoff, then marked ``failed``;
    * a unit that runs past ``timeout`` wall-clock seconds is charged a
      timed-out attempt; its worker is reclaimed by rebuilding the pool
      (there is no portable way to kill one pool worker), and the unit
      is retried, then marked ``timed_out``;
    * a worker *process death* (OOM kill, segfault, ``os._exit``)
      breaks the whole executor with ``BrokenProcessPool``, for the
      crasher and every innocent in-flight unit alike.  Nobody is
      charged unless exactly one unit was in flight; instead all
      victims become *suspects* and are re-probed one at a time on the
      rebuilt pool, so the next breakage identifies its culprit
      unambiguously and innocents complete unharmed.  Completed units
      are never recomputed — ``finalize`` journals them the moment
      they finish.
    """
    global _FORK_SUITE
    try:
        import concurrent.futures as cf
        import multiprocessing
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:
        return False

    use_fork = "fork" in multiprocessing.get_all_start_methods()
    # Fork workers inherit ``suite`` (and every imported module) via
    # copy-on-write, so units ship as names only.  Shipping the
    # instances themselves through the pickle pipe costs more than the
    # driver work saves.
    mp_context = multiprocessing.get_context("fork") if use_fork else None
    max_workers = min(jobs, len(pending))

    def payload(state: _UnitState):
        instance = None if use_fork else suite[state.bench]
        return (state.driver, state.bench, instance, state.kwargs)

    def make_pool():
        return cf.ProcessPoolExecutor(
            max_workers=max_workers, mp_context=mp_context
        )

    try:
        if use_fork:
            _FORK_SUITE = suite
        try:
            pool = make_pool()
        except (ImportError, OSError, PermissionError, BrokenProcessPool):
            # No usable multiprocessing (restricted sandbox, missing
            # /dev/shm, ...): degrade to the serial path.
            return False

        queue = deque(pending)
        retry_at: List[Tuple[float, _UnitState]] = []
        inflight: Dict[object, List] = {}  # future -> [state, started_at]
        rebuilds = 0

        def give_up(state: _UnitState, status: str, error: str) -> None:
            state.status = status
            state.error = error
            finalize(state)

        def charge_failure(
            state: _UnitState,
            error: str,
            exhausted_status: str,
            failure: Optional[Dict[str, object]] = None,
        ) -> None:
            """One attempt just failed: retry with backoff or give up."""
            state.error = error
            state.failure = failure if failure is not None else {
                "unit": state.key,
                "type": exhausted_status,
                "message": error,
                "traceback": [],
            }
            if state.attempts > max_retries:
                give_up(state, exhausted_status, error)
                return
            if metrics is not None:
                metrics.counter("runner.retries").inc()
            delay = retry_backoff * (2 ** (state.attempts - 1))
            retry_at.append((time.monotonic() + delay, state))

        while queue or retry_at or inflight:
            now = time.monotonic()
            if retry_at:
                due = [item for item in retry_at if item[0] <= now]
                if due:
                    retry_at = [item for item in retry_at if item[0] > now]
                    queue.extend(state for _, state in due)

            broken = False
            repool = False
            crash_victims: List[_UnitState] = []
            while queue:
                if any(state.suspect for state in queue):
                    # Quarantine: probe one suspect at a time, alone on
                    # the pool, so a repeat crash names its culprit.
                    if inflight:
                        break
                    probe = next(i for i, s in enumerate(queue) if s.suspect)
                    state = queue[probe]
                    del queue[probe]
                else:
                    state = queue.popleft()
                try:
                    future = pool.submit(_run_unit, payload(state))
                except (BrokenProcessPool, RuntimeError):
                    queue.appendleft(state)
                    broken = True
                    break
                if metrics is not None:
                    metrics.counter("runner.dispatched").inc()
                inflight[future] = [state, None]
                if state.suspect:
                    break  # nothing else rides along with a suspect

            if not broken and inflight:
                done, _ = cf.wait(
                    set(inflight),
                    timeout=_POOL_TICK_S,
                    return_when=cf.FIRST_COMPLETED,
                )
                for future in done:
                    state, _started = inflight.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        broken = True
                        crash_victims.append(state)
                        continue
                    except cf.CancelledError:
                        queue.append(state)
                        continue
                    except StoreCorruptionError:
                        # Never a per-unit failure: a damaged store
                        # would silently poison every retry, so stop
                        # the run and name the entry.
                        _shutdown_pool(pool)
                        raise
                    except Exception as exc:
                        # Pool-layer infrastructure errors (pickling,
                        # transport) — the driver's own exceptions come
                        # back as data from _run_unit.
                        state.attempts += 1
                        charge_failure(
                            state,
                            f"{type(exc).__name__}: {exc}",
                            "failed",
                            _failure_record(exc, state.key),
                        )
                        continue
                    state.attempts += 1
                    state.suspect = False  # completed: exonerated
                    _, _, rows, failure = outcome
                    if failure is None:
                        state.rows = rows
                        state.status = (
                            "computed" if state.attempts == 1 else "retried"
                        )
                        finalize(state)
                    else:
                        charge_failure(
                            state, _summarize(failure), "failed", failure
                        )

                # Timeout accounting: the clock starts when a unit is
                # first *observed* executing (not when it was queued
                # behind other units).
                now = time.monotonic()
                for future, pair in list(inflight.items()):
                    state, started_at = pair
                    if started_at is None:
                        if future.running():
                            pair[1] = now
                    elif timeout is not None and now - started_at > timeout:
                        del inflight[future]
                        state.attempts += 1
                        charge_failure(
                            state,
                            f"unit exceeded the {timeout:.4g}s wall-clock "
                            "timeout",
                            "timed_out",
                        )
                        # The stuck worker can only be reclaimed by
                        # rebuilding the pool; the culprit is known, so
                        # other in-flight units requeue uncharged and
                        # unsuspected.
                        repool = True
            elif not broken and retry_at:
                # Nothing running or submittable: sleep until the next
                # retry comes due.
                next_due = min(due_time for due_time, _ in retry_at)
                time.sleep(
                    max(0.0, min(next_due - time.monotonic(), _POOL_TICK_S))
                )

            if broken or repool:
                rebuilds += 1
                if metrics is not None:
                    metrics.counter("runner.pool_rebuilds").inc()
                if broken:
                    victims = crash_victims + [
                        state for state, _ in inflight.values()
                    ]
                    inflight.clear()
                    if len(victims) == 1:
                        # Alone on the pool when it broke: guilty.
                        state = victims[0]
                        state.suspect = True
                        state.attempts += 1
                        charge_failure(
                            state,
                            "worker process died before returning a result "
                            "(BrokenProcessPool)",
                            "failed",
                        )
                    else:
                        # Crasher unknown: every victim requeues as a
                        # suspect, uncharged, to be probed one by one.
                        for state in victims:
                            state.suspect = True
                            queue.append(state)
                else:
                    # Timeout repool: in-flight survivors requeue
                    # uncharged.
                    for state, _ in inflight.values():
                        queue.append(state)
                    inflight.clear()
                _shutdown_pool(pool)
                survivors = list(queue) + [state for _, state in retry_at]
                if rebuilds > _MAX_POOL_REBUILDS:
                    for state in survivors:
                        give_up(
                            state,
                            "failed",
                            "process pool kept breaking "
                            f"({rebuilds} rebuilds); giving up",
                        )
                    queue.clear()
                    retry_at = []
                    return True
                try:
                    pool = make_pool()
                except (ImportError, OSError, PermissionError, BrokenProcessPool):
                    for state in survivors:
                        give_up(
                            state, "failed", "process pool could not be rebuilt"
                        )
                    queue.clear()
                    retry_at = []
                    return True

        _shutdown_pool(pool)
        return True
    finally:
        _FORK_SUITE = None


def run_parallel(
    suite: Suite,
    drivers: Sequence[str] = ("figure5", "figure6", "figure7", "figure8", "table2"),
    jobs: Optional[int] = None,
    driver_kwargs: Optional[Dict[str, Dict[str, object]]] = None,
    cache: Optional[Union[str, Path, ResultStore]] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    metrics=None,
) -> SuiteRun:
    """Run experiment drivers over a suite, fanning benchmarks out
    across processes, with caching, checkpointing, and fault tolerance.

    Args:
        suite: ``{benchmark: instance}`` (e.g. from
            :func:`repro.workloads.dacapo.load_suite`).
        drivers: names from :data:`PARALLEL_DRIVERS` to run.
        jobs: worker processes; ``None`` picks ``min(cpu_count, units)``
            and ``1`` runs serially (same code path, same isolation).
        driver_kwargs: optional per-driver keyword arguments (e.g.
            ``{"figure5": {"model_seed": 1}}``).
        cache: a :class:`repro.store.ResultStore` or a directory for
            one.  Units whose fingerprint is already in the store are
            served from it; newly computed rows are written back.
        checkpoint: path of the per-run journal.  Defaults to
            ``<cache>/runstate.jsonl`` when ``cache`` is given; with
            neither, no journal is written.
        resume: reuse completed units from an existing ``checkpoint``
            journal (fingerprints must still match — a changed input
            forces recomputation).
        timeout: per-unit wall-clock budget in seconds (enforced on the
            process-pool path only; the serial path cannot preempt).
        max_retries: failed/timed-out attempts retried per unit before
            the unit is marked ``failed``/``timed_out``.
        retry_backoff: base of the exponential retry delay
            (``retry_backoff * 2**(attempt-1)`` seconds).
        metrics: optional :class:`repro.observability.MetricsRegistry`;
            receives ``runner.units.*`` status counters,
            ``runner.retries``, ``runner.pool_rebuilds``, and
            ``store.{hits,misses,puts}``.

    Returns:
        A :class:`SuiteRun`; row ordering is deterministic (driver
        order, then suite insertion order) regardless of ``jobs``,
        retries, or cache state.

    Raises:
        KeyError: for an unknown driver name.
        StoreCorruptionError: a cache entry for a planned unit exists
            but is damaged (strict read — corruption aborts the run
            rather than being silently recomputed and re-journaled).
    """
    driver_kwargs = driver_kwargs or {}
    for name in drivers:
        if name not in PARALLEL_DRIVERS:
            raise KeyError(
                f"unknown driver {name!r}; available: "
                f"{sorted(PARALLEL_DRIVERS)}"
            )
    states = [
        _UnitState(driver, bench, driver_kwargs.get(driver, {}))
        for driver in drivers
        for bench in suite
    ]

    store: Optional[ResultStore] = None
    if cache is not None:
        store = cache if isinstance(cache, ResultStore) else ResultStore(cache)
    if checkpoint is None and store is not None:
        checkpoint = store.root / "runstate.jsonl"
    keyed = store is not None or checkpoint is not None
    if keyed:
        for state in states:
            state.fingerprint = fingerprint_unit(
                suite[state.bench],
                state.driver,
                state.kwargs,
                benchmark=state.bench,
            )

    store_hits_before = store.hits if store is not None else 0
    store_misses_before = store.misses if store is not None else 0
    store_puts_before = store.puts if store is not None else 0

    # Resolve units that need no computation: the resume journal first
    # (no store round-trip), then the content-addressed store.
    if resume and checkpoint is not None:
        previous = load_runstate(checkpoint)
        for state in states:
            record = previous.get(state.key)
            if (
                record is not None
                and record.resumable
                and record.fingerprint == state.fingerprint
            ):
                state.rows = record.rows
                state.status = "cached"
                state.attempts = record.attempts
    if store is not None:
        for state in states:
            if state.status != "pending":
                continue
            # Strict: a damaged entry raises StoreCorruptionError
            # (ValueError) instead of being silently recomputed — the
            # journal this run writes must not paper over a rotting
            # store.
            rows = store.get(state.fingerprint, strict=True)
            if rows is not None:
                state.rows = rows
                state.status = "cached"

    journal: Optional[RunState] = None
    if checkpoint is not None:
        journal = RunState(checkpoint)
        journal.begin({state.key: state.fingerprint for state in states})

    def finalize(state: _UnitState) -> None:
        """Journal + persist a unit the moment its status is final."""
        if metrics is not None:
            metrics.counter(f"runner.units.{state.status}").inc()
        if journal is not None:
            journal.record(
                UnitRecord(
                    state.key,
                    state.fingerprint,
                    state.status,
                    rows=state.rows,
                    error=state.error,
                    attempts=max(state.attempts, 1),
                    failure=state.failure,
                )
            )
        if store is not None and state.status in ("computed", "retried"):
            store.put(
                state.fingerprint,
                state.rows,
                driver=state.driver,
                benchmark=state.bench,
                code_version=CODE_VERSION,
            )

    used_jobs = 1
    try:
        for state in states:
            if state.status == "cached":
                finalize(state)
        pending = [state for state in states if state.status == "pending"]
        if pending:
            if jobs is None:
                try:
                    available = len(os.sched_getaffinity(0))
                except AttributeError:  # macOS / Windows
                    available = os.cpu_count() or 1
                jobs = min(available, len(pending))
            jobs = max(1, int(jobs))
            pooled = False
            if jobs > 1 and len(pending) > 1:
                pooled = _execute_pool(
                    pending, suite, jobs, timeout, max_retries,
                    retry_backoff, finalize, metrics,
                )
                if pooled:
                    used_jobs = min(jobs, len(pending))
            if not pooled:
                _execute_serial(
                    pending, suite, max_retries, retry_backoff, finalize,
                    metrics,
                )
    finally:
        if journal is not None:
            journal.close()

    if metrics is not None and store is not None:
        metrics.counter("store.hits").inc(store.hits - store_hits_before)
        metrics.counter("store.misses").inc(store.misses - store_misses_before)
        metrics.counter("store.puts").inc(store.puts - store_puts_before)

    rows: Dict[str, List[Dict[str, object]]] = {name: [] for name in drivers}
    errors: List[Dict[str, str]] = []
    statuses: Dict[str, str] = {}
    for state in states:
        statuses[state.key] = state.status
        if state.status in ("failed", "timed_out"):
            failure = state.failure or {}
            errors.append(
                {
                    "driver": state.driver,
                    "benchmark": state.bench,
                    "error": state.error or state.status,
                    "type": str(failure.get("type", state.status)),
                    "attempts": str(max(state.attempts, 1)),
                }
            )
            continue
        rows[state.driver].extend(state.rows or [])
    cached_count = sum(1 for s in states if s.status == "cached")
    return SuiteRun(
        rows=rows,
        errors=tuple(errors),
        jobs=used_jobs,
        statuses=statuses,
        cache_hits=cached_count if keyed else 0,
        cache_misses=(len(states) - cached_count) if keyed else 0,
    )


def average_row(
    rows: List[Dict[str, object]], keys: Iterable[str], mean: str = "arith"
) -> Dict[str, object]:
    """Append-style 'average' row over the numeric ``keys``.

    The paper's figures lead with an *average* group; drivers return
    per-benchmark rows and this helper computes that group.

    Args:
        rows: per-benchmark rows.
        keys: numeric columns to aggregate.
        mean: ``"arith"`` (plain average — raw times, speed-up factors)
            or ``"geo"`` (geometric mean — the correct aggregate for
            *normalized* make-spans: ratios multiply, so averaging them
            arithmetically overweights the slow benchmarks).

    Raises:
        ValueError: for an unknown ``mean``.
    """
    if mean not in ("arith", "geo"):
        raise ValueError(f"mean must be 'arith' or 'geo', got {mean!r}")
    aggregate = (
        metrics.geometric_mean if mean == "geo" else metrics.arithmetic_mean
    )
    out: Dict[str, object] = {"benchmark": "average"}
    for key in keys:
        values = [float(row[key]) for row in rows if row.get(key) is not None]
        out[key] = aggregate(values) if values else None
    return out
