"""Plain-text rendering of experiment rows.

Examples and benchmark harnesses print through these helpers so every
figure/table reproduction has a uniform, diff-friendly text form.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "format_table",
    "format_figure",
    "render_rows",
    "format_timeline",
    "format_trace_summary",
    "format_errors",
]


def _fmt(value: object, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render dict-rows as an aligned ASCII table.

    Args:
        rows: the rows (all sharing a key set; missing keys render '-').
        columns: column order; defaults to the first row's key order.
        title: optional heading line.
        precision: decimal places for floats.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    header = [str(c) for c in cols]
    body = [[_fmt(row.get(c), precision) for c in cols] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(cols))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_figure(
    rows: Sequence[Dict[str, object]],
    series: Sequence[str],
    label_key: str = "benchmark",
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render figure-style rows: one label column plus named series.

    This mirrors the paper's grouped-bar figures as text: each row is a
    benchmark, each series a bar.
    """
    return format_table(
        rows, columns=[label_key, *series], title=title, precision=precision
    )


def format_timeline(result, precision: int = 1) -> str:
    """Render a simulated run the way the paper's Figures 1–2 do:
    execution events (core-1) next to compilation events (core-2+).

    Args:
        result: a :class:`~repro.core.makespan.MakespanResult` produced
            with ``record_timeline=True``.
        precision: decimal places for times.

    Raises:
        ValueError: if the result carries no timeline.
    """
    if result.task_timings is None or result.call_timings is None:
        raise ValueError("simulate(..., record_timeline=True) required")
    events = []
    for t in result.task_timings:
        events.append((t.start, f"compile[{t.thread}]", f"C{t.level}({t.function})", t.finish))
    for c in result.call_timings:
        label = f"e{c.level}({c.function})"
        if c.bubble > 0:
            label += f"  (bubble {c.bubble:.{precision}f})"
        events.append((c.start, "execute", label, c.finish))
    events.sort(key=lambda e: (e[0], e[1]))
    width = max(len(e[2]) for e in events)
    lines = [
        f"{'start':>8}  {'finish':>8}  {'unit':<11} event",
        f"{'-----':>8}  {'------':>8}  {'----':<11} -----",
    ]
    for start, unit, label, finish in events:
        lines.append(
            f"{start:>8.{precision}f}  {finish:>8.{precision}f}  {unit:<11} "
            f"{label.ljust(width)}"
        )
    lines.append(f"make-span: {result.makespan:.{precision}f}")
    return "\n".join(lines)


def format_trace_summary(tracer, precision: int = 3) -> str:
    """Per-track digest of a recorded trace.

    One row per track: span/instant/counter counts, total busy time
    (summed span durations), and utilization relative to the trace's
    overall time extent; a totals footer closes the table.

    Args:
        tracer: a :class:`repro.observability.Tracer` (or scope), or any
            iterable of :class:`~repro.observability.TraceEvent`.
        precision: decimal places for times.
    """
    events = getattr(tracer, "events", tracer)
    per_track: Dict[str, List[float]] = {}
    t_end = 0.0
    for event in events:
        row = per_track.setdefault(event.track, [0, 0, 0, 0.0])
        if event.kind == "span":
            row[0] += 1
            row[3] += event.end - event.start
        elif event.kind == "instant":
            row[1] += 1
        else:
            row[2] += 1
        if event.end > t_end:
            t_end = event.end
    if not per_track:
        return "(no trace events)"
    rows = []
    for track in sorted(per_track):
        spans, instants, counters, busy = per_track[track]
        rows.append(
            {
                "track": track,
                "spans": spans,
                "instants": instants,
                "counters": counters,
                "busy": busy,
                "utilization": busy / t_end if t_end > 0 else 0.0,
            }
        )
    table = format_table(
        rows,
        columns=["track", "spans", "instants", "counters", "busy", "utilization"],
        precision=precision,
    )
    total_events = sum(r[0] + r[1] + r[2] for r in per_track.values())
    return (
        f"{table}\n"
        f"{total_events} events on {len(per_track)} tracks, "
        f"trace end {t_end:.{precision}f}"
    )


def format_errors(errors: Sequence[Dict[str, str]]) -> str:
    """Render :class:`~repro.analysis.experiments.SuiteRun` error
    entries — one warning line per failed (driver, benchmark) unit.

    Returns an empty string when there is nothing to report, so callers
    can print the result unconditionally.
    """
    if not errors:
        return ""
    lines = [
        f"WARNING: {e.get('driver', '?')}/{e.get('benchmark', '?')} failed: "
        f"{e.get('error', 'unknown error')}"
        for e in errors
    ]
    return "\n".join(lines)


def render_rows(rows: Iterable[Dict[str, object]], precision: int = 3) -> str:
    """One ``key=value`` line per row — handy for logs."""
    lines = []
    for row in rows:
        parts = [f"{k}={_fmt(v, precision)}" for k, v in row.items()]
        lines.append(" ".join(parts))
    return "\n".join(lines)
