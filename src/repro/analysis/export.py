"""CSV export of experiment rows.

The reporting module renders tables for terminals; this one writes the
same rows as CSV so results can flow into pandas/R/spreadsheets without
re-running anything.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

__all__ = ["rows_to_csv", "save_csv"]


def rows_to_csv(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render dict-rows as CSV text.

    Args:
        rows: the rows (missing keys become empty cells).
        columns: column order; defaults to the union of keys in first-
            appearance order.

    Raises:
        ValueError: if there are no rows and no explicit columns.
    """
    if columns is None:
        seen: Dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)
    if not columns:
        raise ValueError("no rows and no columns — nothing to export")
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=list(columns), extrasaction="ignore"
    )
    writer.writeheader()
    for row in rows:
        writer.writerow({col: row.get(col, "") for col in columns})
    return buffer.getvalue()


def save_csv(
    rows: Sequence[Dict[str, object]],
    path: Union[str, Path],
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write :func:`rows_to_csv` output to ``path``."""
    Path(path).write_text(rows_to_csv(rows, columns=columns))
