"""Experiment drivers, metrics, and reporting for the paper's evaluation.

* :mod:`repro.analysis.metrics` — normalization, gaps, speed-ups;
* :mod:`repro.analysis.experiments` — one driver per table/figure;
* :mod:`repro.analysis.reporting` — ASCII rendering of result rows.
"""

from . import diagnose as diagnose_module, experiments, metrics, reporting
from .diagnose import FunctionGap, GapDiagnosis, IntervalGap, diagnose
from .export import rows_to_csv, save_csv
from .sensitivity import sweep_parameter
from .experiments import (
    PARALLEL_DRIVERS,
    SuiteRun,
    astar_scaling,
    average_row,
    figure5,
    figure6,
    figure7,
    figure8,
    grand_comparison,
    run_parallel,
    scheme_comparison,
    table1,
    table2,
)
from .reporting import (
    format_errors,
    format_figure,
    format_table,
    format_timeline,
    format_trace_summary,
    render_rows,
)

__all__ = [
    "metrics",
    "diagnose",
    "FunctionGap",
    "GapDiagnosis",
    "IntervalGap",
    "rows_to_csv",
    "save_csv",
    "sweep_parameter",
    "experiments",
    "reporting",
    "table1",
    "table2",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "scheme_comparison",
    "grand_comparison",
    "astar_scaling",
    "average_row",
    "PARALLEL_DRIVERS",
    "SuiteRun",
    "run_parallel",
    "format_errors",
    "format_table",
    "format_figure",
    "format_timeline",
    "format_trace_summary",
    "render_rows",
]
