"""Make-span gap diagnosis: *why* is a schedule above the lower bound?

The distance between a schedule's make-span and the Section 5.2 lower
bound decomposes exactly into three parts:

* **bubbles** — time the execution thread spent waiting for compiles;
* **level excess** — invocations that ran below their function's top
  available level, costing ``e_used - e_top`` each;
* and nothing else: ``makespan = lower_bound + bubbles + level_excess``
  (the execution thread is always either running or waiting, and the
  bound charges every call at ``e_top``).

Level excess splits further by *why* the call ran slow:

* ``excess_never_upgraded`` — the schedule never compiles the function
  above the level the call used (a policy decision, e.g. IAR's
  category O);
* ``excess_before_upgrade`` — a higher compile exists in the schedule
  but had not finished when the call started (a timing problem).

This is the tool the paper's Section 7 hints at: "virtual machine
developers can easily see the room left for improvement and allocate
their efforts appropriately."
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from ..core.bounds import lower_bound
from ..core.makespan import iter_calls
from ..core.model import OCSPInstance
from ..core.schedule import Schedule

__all__ = ["GapDiagnosis", "FunctionGap", "IntervalGap", "diagnose"]


@dataclass(frozen=True)
class FunctionGap:
    """Per-function contribution to the gap.

    Attributes:
        function: function name.
        calls: number of invocations.
        bubbles: waiting time attributed to this function's calls.
        excess_before_upgrade: slowdown of calls that ran before the
            schedule's higher compile of this function finished.
        excess_never_upgraded: slowdown of calls at levels the schedule
            never upgrades beyond.
    """

    function: str
    calls: int
    bubbles: float
    excess_before_upgrade: float
    excess_never_upgraded: float

    @property
    def total(self) -> float:
        return self.bubbles + self.excess_before_upgrade + self.excess_never_upgraded


@dataclass(frozen=True)
class IntervalGap:
    """Gap contribution of one timeline interval.

    The decomposition attributes each call's bubble and level excess to
    the interval containing the call's *start* time, so the per-interval
    values sum exactly to the run totals.

    Attributes:
        index: interval number (0-based).
        start: interval left edge (inclusive).
        end: interval right edge (exclusive; the last interval also
            includes the make-span instant).
        calls: invocations starting in the interval.
        bubbles: waiting time of those calls.
        excess_before_upgrade: timing-induced slowdown of those calls.
        excess_never_upgraded: policy-induced slowdown of those calls.
    """

    index: int
    start: float
    end: float
    calls: int
    bubbles: float
    excess_before_upgrade: float
    excess_never_upgraded: float

    @property
    def total(self) -> float:
        return (
            self.bubbles
            + self.excess_before_upgrade
            + self.excess_never_upgraded
        )


@dataclass(frozen=True)
class GapDiagnosis:
    """Full decomposition of a schedule's distance from the lower bound.

    Attributes:
        makespan: the schedule's make-span.
        lower_bound: the exec-only bound.
        bubbles: total execution-thread waiting time.
        excess_before_upgrade: total timing-induced slowdown.
        excess_never_upgraded: total policy-induced slowdown.
        per_function: the same split per function, worst offenders first.
        per_interval: the same split over equal timeline slices (empty
            unless :func:`diagnose` was called with ``intervals > 0``) —
            the *when* to ``per_function``'s *who*.
    """

    makespan: float
    lower_bound: float
    bubbles: float
    excess_before_upgrade: float
    excess_never_upgraded: float
    per_function: Tuple[FunctionGap, ...]
    per_interval: Tuple[IntervalGap, ...] = ()

    @property
    def gap(self) -> float:
        """``makespan - lower_bound``."""
        return self.makespan - self.lower_bound

    @property
    def normalized(self) -> float:
        """``makespan / lower_bound``."""
        return self.makespan / self.lower_bound if self.lower_bound else float("inf")

    def top_offenders(self, n: int = 5) -> List[FunctionGap]:
        """The ``n`` functions contributing most to the gap."""
        return list(self.per_function[:n])

    def rows(self, n: int = 10) -> List[Dict[str, object]]:
        """Reporting-friendly rows for :func:`repro.analysis.format_table`."""
        out: List[Dict[str, object]] = []
        for item in self.top_offenders(n):
            out.append(
                {
                    "function": item.function,
                    "calls": item.calls,
                    "bubbles": item.bubbles,
                    "before_upgrade": item.excess_before_upgrade,
                    "never_upgraded": item.excess_never_upgraded,
                    "share_of_gap": item.total / self.gap if self.gap > 0 else 0.0,
                }
            )
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view of the full decomposition.

        Includes the derived ``gap``/``normalized`` values and every
        per-function and per-interval split (not just the top
        offenders), so downstream tooling never re-derives anything.
        """
        return {
            "makespan": self.makespan,
            "lower_bound": self.lower_bound,
            "gap": self.gap,
            "normalized": self.normalized,
            "bubbles": self.bubbles,
            "excess_before_upgrade": self.excess_before_upgrade,
            "excess_never_upgraded": self.excess_never_upgraded,
            "per_function": [
                {**asdict(item), "total": item.total}
                for item in self.per_function
            ],
            "per_interval": [
                {**asdict(item), "total": item.total}
                for item in self.per_interval
            ],
        }

    def interval_rows(self) -> List[Dict[str, object]]:
        """Reporting-friendly per-interval rows (empty without
        ``intervals``)."""
        out: List[Dict[str, object]] = []
        for item in self.per_interval:
            out.append(
                {
                    "interval": f"[{item.start:.0f}, {item.end:.0f})",
                    "calls": item.calls,
                    "bubbles": item.bubbles,
                    "before_upgrade": item.excess_before_upgrade,
                    "never_upgraded": item.excess_never_upgraded,
                    "share_of_gap": item.total / self.gap if self.gap > 0 else 0.0,
                }
            )
        return out


def diagnose(
    instance: OCSPInstance,
    schedule: Schedule,
    compile_threads: int = 1,
    intervals: int = 0,
) -> GapDiagnosis:
    """Decompose ``schedule``'s gap above the lower bound.

    One streaming pass; O(N) time, O(M) memory — unless ``intervals >
    0``, which buffers one record per call to also attribute the gap to
    ``intervals`` equal slices of the timeline (``per_interval``).

    Raises:
        ScheduleError: if the schedule is invalid for the instance.
        ValueError: if ``intervals`` is negative.
    """
    if intervals < 0:
        raise ValueError(f"intervals must be >= 0, got {intervals}")
    schedule.validate(instance)
    profiles = instance.profiles
    highest_scheduled: Dict[str, int] = {}
    for task in schedule:
        prev = highest_scheduled.get(task.function, -1)
        if task.level > prev:
            highest_scheduled[task.function] = task.level

    bubbles: Dict[str, float] = {}
    before_upgrade: Dict[str, float] = {}
    never_upgraded: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    makespan = 0.0
    # (start, bubble, before_excess, never_excess) per call — only
    # buffered when interval attribution was requested.
    call_records: Optional[List[Tuple[float, float, float, float]]] = (
        [] if intervals > 0 else None
    )

    for fname, level, start, finish, bubble in iter_calls(
        instance, schedule, compile_threads=compile_threads
    ):
        prof = profiles[fname]
        counts[fname] = counts.get(fname, 0) + 1
        if bubble > 0:
            bubbles[fname] = bubbles.get(fname, 0.0) + bubble
        excess = prof.exec_times[level] - prof.exec_times[-1]
        before = never = 0.0
        if excess > 0:
            if level < highest_scheduled[fname]:
                before_upgrade[fname] = before_upgrade.get(fname, 0.0) + excess
                before = excess
            else:
                never_upgraded[fname] = never_upgraded.get(fname, 0.0) + excess
                never = excess
        makespan = finish
        if call_records is not None:
            call_records.append((start, bubble, before, never))

    per_interval: Tuple[IntervalGap, ...] = ()
    if call_records is not None:
        width = makespan / intervals if makespan > 0 else 1.0
        acc = [[0, 0.0, 0.0, 0.0] for _ in range(intervals)]
        for start, bubble, before, never in call_records:
            slot = int(start / width)
            if slot >= intervals:  # the call starting exactly at makespan
                slot = intervals - 1
            bucket = acc[slot]
            bucket[0] += 1
            bucket[1] += bubble
            bucket[2] += before
            bucket[3] += never
        per_interval = tuple(
            IntervalGap(
                index=i,
                start=i * width,
                end=(i + 1) * width,
                calls=bucket[0],
                bubbles=bucket[1],
                excess_before_upgrade=bucket[2],
                excess_never_upgraded=bucket[3],
            )
            for i, bucket in enumerate(acc)
        )

    per_function = [
        FunctionGap(
            function=fname,
            calls=counts[fname],
            bubbles=bubbles.get(fname, 0.0),
            excess_before_upgrade=before_upgrade.get(fname, 0.0),
            excess_never_upgraded=never_upgraded.get(fname, 0.0),
        )
        for fname in counts
    ]
    per_function.sort(key=lambda g: (-g.total, g.function))

    return GapDiagnosis(
        makespan=makespan,
        lower_bound=lower_bound(instance),
        bubbles=sum(bubbles.values()),
        excess_before_upgrade=sum(before_upgrade.values()),
        excess_never_upgraded=sum(never_upgraded.values()),
        per_function=tuple(per_function),
        per_interval=per_interval,
    )
