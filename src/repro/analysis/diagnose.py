"""Make-span gap diagnosis: *why* is a schedule above the lower bound?

The distance between a schedule's make-span and the Section 5.2 lower
bound decomposes exactly into three parts:

* **bubbles** — time the execution thread spent waiting for compiles;
* **level excess** — invocations that ran below their function's top
  available level, costing ``e_used - e_top`` each;
* and nothing else: ``makespan = lower_bound + bubbles + level_excess``
  (the execution thread is always either running or waiting, and the
  bound charges every call at ``e_top``).

Level excess splits further by *why* the call ran slow:

* ``excess_never_upgraded`` — the schedule never compiles the function
  above the level the call used (a policy decision, e.g. IAR's
  category O);
* ``excess_before_upgrade`` — a higher compile exists in the schedule
  but had not finished when the call started (a timing problem).

This is the tool the paper's Section 7 hints at: "virtual machine
developers can easily see the room left for improvement and allocate
their efforts appropriately."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.bounds import lower_bound
from ..core.makespan import iter_calls
from ..core.model import OCSPInstance
from ..core.schedule import Schedule

__all__ = ["GapDiagnosis", "FunctionGap", "diagnose"]


@dataclass(frozen=True)
class FunctionGap:
    """Per-function contribution to the gap.

    Attributes:
        function: function name.
        calls: number of invocations.
        bubbles: waiting time attributed to this function's calls.
        excess_before_upgrade: slowdown of calls that ran before the
            schedule's higher compile of this function finished.
        excess_never_upgraded: slowdown of calls at levels the schedule
            never upgrades beyond.
    """

    function: str
    calls: int
    bubbles: float
    excess_before_upgrade: float
    excess_never_upgraded: float

    @property
    def total(self) -> float:
        return self.bubbles + self.excess_before_upgrade + self.excess_never_upgraded


@dataclass(frozen=True)
class GapDiagnosis:
    """Full decomposition of a schedule's distance from the lower bound.

    Attributes:
        makespan: the schedule's make-span.
        lower_bound: the exec-only bound.
        bubbles: total execution-thread waiting time.
        excess_before_upgrade: total timing-induced slowdown.
        excess_never_upgraded: total policy-induced slowdown.
        per_function: the same split per function, worst offenders first.
    """

    makespan: float
    lower_bound: float
    bubbles: float
    excess_before_upgrade: float
    excess_never_upgraded: float
    per_function: Tuple[FunctionGap, ...]

    @property
    def gap(self) -> float:
        """``makespan - lower_bound``."""
        return self.makespan - self.lower_bound

    @property
    def normalized(self) -> float:
        """``makespan / lower_bound``."""
        return self.makespan / self.lower_bound if self.lower_bound else float("inf")

    def top_offenders(self, n: int = 5) -> List[FunctionGap]:
        """The ``n`` functions contributing most to the gap."""
        return list(self.per_function[:n])

    def rows(self, n: int = 10) -> List[Dict[str, object]]:
        """Reporting-friendly rows for :func:`repro.analysis.format_table`."""
        out: List[Dict[str, object]] = []
        for item in self.top_offenders(n):
            out.append(
                {
                    "function": item.function,
                    "calls": item.calls,
                    "bubbles": item.bubbles,
                    "before_upgrade": item.excess_before_upgrade,
                    "never_upgraded": item.excess_never_upgraded,
                    "share_of_gap": item.total / self.gap if self.gap > 0 else 0.0,
                }
            )
        return out


def diagnose(
    instance: OCSPInstance, schedule: Schedule, compile_threads: int = 1
) -> GapDiagnosis:
    """Decompose ``schedule``'s gap above the lower bound.

    One streaming pass; O(N) time, O(M) memory.

    Raises:
        ScheduleError: if the schedule is invalid for the instance.
    """
    schedule.validate(instance)
    profiles = instance.profiles
    highest_scheduled: Dict[str, int] = {}
    for task in schedule:
        prev = highest_scheduled.get(task.function, -1)
        if task.level > prev:
            highest_scheduled[task.function] = task.level

    bubbles: Dict[str, float] = {}
    before_upgrade: Dict[str, float] = {}
    never_upgraded: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    makespan = 0.0

    for fname, level, _start, finish, bubble in iter_calls(
        instance, schedule, compile_threads=compile_threads
    ):
        prof = profiles[fname]
        counts[fname] = counts.get(fname, 0) + 1
        if bubble > 0:
            bubbles[fname] = bubbles.get(fname, 0.0) + bubble
        excess = prof.exec_times[level] - prof.exec_times[-1]
        if excess > 0:
            if level < highest_scheduled[fname]:
                before_upgrade[fname] = before_upgrade.get(fname, 0.0) + excess
            else:
                never_upgraded[fname] = never_upgraded.get(fname, 0.0) + excess
        makespan = finish

    per_function = [
        FunctionGap(
            function=fname,
            calls=counts[fname],
            bubbles=bubbles.get(fname, 0.0),
            excess_before_upgrade=before_upgrade.get(fname, 0.0),
            excess_never_upgraded=never_upgraded.get(fname, 0.0),
        )
        for fname in counts
    ]
    per_function.sort(key=lambda g: (-g.total, g.function))

    return GapDiagnosis(
        makespan=makespan,
        lower_bound=lower_bound(instance),
        bubbles=sum(bubbles.values()),
        excess_before_upgrade=sum(before_upgrade.values()),
        excess_never_upgraded=sum(never_upgraded.values()),
        per_function=tuple(per_function),
    )
