"""Import OCSP instances from SCC (steelmaking continuous casting) sets.

SCC scheduling instances ship as a small family of UTF-8 files sharing
a prefix::

    <prefix>_mc_env.json   machine environment: stage -> machine count
    <prefix>_pt.csv        processing times: one row per charge,
                           one column per stage
    <prefix>_cast.json     casts: ordered groups of charges
    <prefix>_duedate.json  per-charge due dates (optional)

The mapping onto OCSP treats each *charge* as a function and its stage
processing times as level costs:

* level 0 ("unprepared"): no compile cost, the whole processing chain
  runs at call time (``c0 = 0``, ``e0 = sum of all stage times``);
* level 1 ("prepared"): the first stage is done ahead of time as a
  compile (``c1 = first-stage time``, ``e1 = sum of the remaining
  stages``) — monotone by construction.

The call sequence is the casts concatenated in file order (a cast is a
back-to-back run of its charges), ``compile_threads`` is the machine
count of the first stage, and the due-date file becomes a
:class:`~repro.core.makespan.DueDateTable` driving the tardiness
objectives.  This is the adapter that exercises the due-date-aware
side of the format; caveats live in ``docs/INSTANCES.md``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.makespan import DueDateTable
from ..core.model import FunctionProfile, ModelError, OCSPInstance
from .format import InstanceBundle, InstanceError

__all__ = ["bundle_from_scc"]

_SUFFIXES = ("_mc_env.json", "_pt.csv", "_cast.json", "_duedate.json")


def _resolve_prefix(source: Path) -> Path:
    """Resolve a directory or path prefix to the instance's file prefix."""
    if source.is_dir():
        envs = sorted(source.glob("*_mc_env.json"))
        if not envs:
            raise InstanceError(
                f"scc: no '*_mc_env.json' found in directory {source}"
            )
        if len(envs) > 1:
            names = ", ".join(p.name for p in envs)
            raise InstanceError(
                f"scc: directory {source} holds several instances "
                f"({names}); pass the file prefix instead"
            )
        return Path(str(envs[0])[: -len("_mc_env.json")])
    text = str(source)
    for suffix in _SUFFIXES:
        if text.endswith(suffix):
            return Path(text[: -len(suffix)])
    return source


def _load_json(path: Path) -> object:
    if not path.is_file():
        raise InstanceError(f"scc: missing file {path}")
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise InstanceError(f"scc: {path.name} is not valid JSON: {exc}") from exc


def _machine_env(path: Path) -> Dict[str, int]:
    """Read stage -> machine-count; document order defines stage order."""
    data = _load_json(path)
    if isinstance(data, dict) and isinstance(data.get("stages"), dict):
        data = data["stages"]
    if not isinstance(data, dict) or not data:
        raise InstanceError(
            f"scc: {path.name} must map stage names to machine counts"
        )
    stages: Dict[str, int] = {}
    for stage, count in data.items():
        if not isinstance(stage, str) or not stage:
            raise InstanceError(f"scc: {path.name}: bad stage name {stage!r}")
        if isinstance(count, bool) or not isinstance(count, int) or count < 1:
            raise InstanceError(
                f"scc: {path.name}: machine count for stage {stage!r} must "
                f"be a positive integer, got {count!r}"
            )
        stages[stage] = count
    return stages


def _processing_times(
    path: Path, stages: List[str]
) -> Dict[str, Tuple[float, ...]]:
    if not path.is_file():
        raise InstanceError(f"scc: missing file {path}")
    with path.open(encoding="utf-8", newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows:
        raise InstanceError(f"scc: {path.name} is empty")
    header = rows[0]
    if len(header) < 2 or header[0] != "charge":
        raise InstanceError(
            f"scc: {path.name} header must be 'charge,<stage>,...', "
            f"got {header!r}"
        )
    if header[1:] != stages:
        raise InstanceError(
            f"scc: {path.name} stages {header[1:]!r} do not match the "
            f"machine environment stages {stages!r}"
        )
    times: Dict[str, Tuple[float, ...]] = {}
    for lineno, row in enumerate(rows[1:], start=2):
        if not row:
            continue
        if len(row) != len(header):
            raise InstanceError(
                f"scc: {path.name} line {lineno}: expected "
                f"{len(header)} fields, got {len(row)}"
            )
        charge = row[0]
        if not charge:
            raise InstanceError(f"scc: {path.name} line {lineno}: empty charge")
        if charge in times:
            raise InstanceError(
                f"scc: {path.name} line {lineno}: duplicate charge {charge!r}"
            )
        values = []
        for stage, cell in zip(stages, row[1:]):
            try:
                value = float(cell)
            except ValueError as exc:
                raise InstanceError(
                    f"scc: {path.name} line {lineno}: stage {stage!r} time "
                    f"{cell!r} is not a number"
                ) from exc
            if not value >= 0.0 or value != value or value == float("inf"):
                raise InstanceError(
                    f"scc: {path.name} line {lineno}: stage {stage!r} time "
                    f"must be finite and >= 0, got {cell!r}"
                )
            values.append(value)
        times[charge] = tuple(values)
    if not times:
        raise InstanceError(f"scc: {path.name} has no charge rows")
    return times


def _casts(path: Path, charges: Dict[str, Tuple[float, ...]]) -> Tuple[str, ...]:
    data = _load_json(path)
    if isinstance(data, dict) and isinstance(data.get("casts"), list):
        data = data["casts"]
    if not isinstance(data, list) or not data:
        raise InstanceError(
            f"scc: {path.name} must hold a non-empty list of casts"
        )
    calls: List[str] = []
    for i, cast in enumerate(data):
        if not isinstance(cast, list) or not cast:
            raise InstanceError(
                f"scc: {path.name}: cast #{i} must be a non-empty list of "
                f"charges"
            )
        for charge in cast:
            if not isinstance(charge, str) or charge not in charges:
                raise InstanceError(
                    f"scc: {path.name}: cast #{i} references unknown charge "
                    f"{charge!r}"
                )
            calls.append(charge)
    return tuple(calls)


def _due_dates(path: Path, charges: Dict[str, Tuple[float, ...]]) -> DueDateTable:
    data = _load_json(path)
    if isinstance(data, dict) and isinstance(data.get("entries"), dict):
        entries_raw: Dict[str, object] = data["entries"]
    elif isinstance(data, dict):
        entries_raw = data
    else:
        raise InstanceError(
            f"scc: {path.name} must map charges to due dates"
        )
    if not entries_raw:
        raise InstanceError(f"scc: {path.name} holds no due dates")
    entries: Dict[str, Tuple[float, float]] = {}
    for charge, value in entries_raw.items():
        if charge not in charges:
            raise InstanceError(
                f"scc: {path.name} references unknown charge {charge!r}"
            )
        if isinstance(value, dict):
            due = value.get("due")
            weight = value.get("weight", 1.0)
        else:
            due = value
            weight = 1.0
        for label, number in (("due", due), ("weight", weight)):
            if isinstance(number, bool) or not isinstance(number, (int, float)):
                raise InstanceError(
                    f"scc: {path.name}: {label} for charge {charge!r} must "
                    f"be a number, got {number!r}"
                )
        entries[charge] = (float(due), float(weight))
    try:
        return DueDateTable(entries=entries)
    except ModelError as exc:
        raise InstanceError(f"scc: {path.name}: {exc}") from exc


def bundle_from_scc(
    source: Union[str, Path], name: Optional[str] = None
) -> InstanceBundle:
    """Build an instance bundle from an SCC instance file set.

    Args:
        source: a directory holding exactly one instance, the shared
            file prefix, or any one of the instance's files.
        name: instance label (default: the prefix's base name).

    Raises:
        InstanceError: on missing files or malformed contents.
    """
    prefix = _resolve_prefix(Path(source))
    stages_map = _machine_env(Path(str(prefix) + "_mc_env.json"))
    stages = list(stages_map)
    times = _processing_times(Path(str(prefix) + "_pt.csv"), stages)
    calls = _casts(Path(str(prefix) + "_cast.json"), times)

    profiles: Dict[str, FunctionProfile] = {}
    for charge, values in times.items():
        total = 0.0
        for value in values:
            total += value
        rest = 0.0
        for value in values[1:]:
            rest += value
        try:
            profiles[charge] = FunctionProfile(
                name=charge,
                compile_times=(0.0, values[0]),
                exec_times=(total, rest),
            )
        except ModelError as exc:
            raise InstanceError(f"scc: charge {charge!r}: {exc}") from exc

    due_path = Path(str(prefix) + "_duedate.json")
    due = _due_dates(due_path, times) if due_path.is_file() else None

    label = name or prefix.name
    instance = OCSPInstance(profiles=profiles, calls=calls, name=label)
    return InstanceBundle(
        instance=instance,
        due_dates=due,
        source="scc",
        compile_threads=stages_map[stages[0]],
        time_unit="min",
    )
