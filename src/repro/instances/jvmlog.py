"""Import OCSP instances from JVM compilation logs.

HotSpot run with ``-XX:+PrintCompilation`` prints one line per compile
task::

      79    1       3       java.lang.String::hashCode (55 bytes)
      80    2       4       java.lang.String::equals (81 bytes)
      85    3 %     3       com.example.Loop::main @ 2 (120 bytes)
      90    4       3       com.example.Loop::work (30 bytes)   made not entrant

Columns: timestamp (ms since VM start), compile id, attribute flags
(``%`` on-stack replacement, ``!`` exception handlers, ``s``
synchronized, ``b`` blocking, ``n`` native), tier (1–4), method, and
the bytecode size.  The adapter reads the timestamp order, the tier,
and the size; every non-matching line is skipped.  A log with no
recognizable compile line raises
:class:`~repro.instances.format.InstanceError`.

Mapping: HotSpot tiers ``1..maxTier`` become OCSP levels
``0..maxTier-1`` (every function gets the full level ladder, like the
paper's Jikes configuration).  ``PrintCompilation`` carries neither
compile durations nor execution times, so both are modeled from the
bytecode size with fixed per-level factors
(:data:`COMPILE_US_PER_BYTE`, :data:`EXEC_US_PER_BYTE`,
:data:`LEVEL_SPEEDUP` — C2 compiles slowly and runs fast); invocation
counts come from the hottest tier a method reached
(:data:`TIER_CALLS`), interleaved by the deterministic weighted
round-robin of :mod:`repro.instances._seq`.  See ``docs/INSTANCES.md``
for the caveats.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.model import FunctionProfile, ModelError, OCSPInstance
from ._seq import weighted_round_robin
from .format import InstanceBundle, InstanceError

__all__ = [
    "COMPILE_US_PER_BYTE",
    "EXEC_US_PER_BYTE",
    "LEVEL_SPEEDUP",
    "TIER_CALLS",
    "bundle_from_jvm_log",
]

# Compile cost per bytecode byte at each level (µs): C1 tiers are
# cheap, the C2 tier is an order of magnitude slower.
COMPILE_US_PER_BYTE = (0.1, 0.25, 0.5, 2.0)
# Interpreter-equivalent execution cost per bytecode byte (µs) ...
EXEC_US_PER_BYTE = 0.05
# ... divided by the level's speedup factor (must be increasing).
LEVEL_SPEEDUP = (1.0, 2.0, 3.0, 8.0)
# Synthesized invocation counts by the hottest tier a method reached:
# tier-4 methods crossed HotSpot's highest threshold.
TIER_CALLS = {1: 4, 2: 8, 3: 32, 4: 128}

_LINE_RE = re.compile(
    r"^\s*(\d+)\s+(\d+)\s+([%!sbn ]*?)\s*([1-4])\s+(\S+?)(?:\s+@\s+\d+)?"
    r"\s+\((\d+)\s+bytes\)"
)


def bundle_from_jvm_log(
    source: Union[str, Path],
    name: Optional[str] = None,
    from_file: bool = True,
) -> InstanceBundle:
    """Build an instance bundle from a ``-XX:+PrintCompilation`` log.

    Args:
        source: path to the log (or its text when ``from_file=False``).
        name: instance label (default: the file's stem, or
            ``"jvm-log"``).
        from_file: treat ``source`` as a path (default) or as raw text.

    Raises:
        InstanceError: if no compile line parses, or a parsed value is
            out of range.
        OSError: if the file cannot be read.
    """
    if from_file:
        path = Path(source)
        text = path.read_text(encoding="utf-8", errors="replace")
        label = name or path.stem
    else:
        text = str(source)
        label = name or "jvm-log"

    first_seen: List[str] = []
    max_tier: Dict[str, int] = {}
    size_bytes: Dict[str, int] = {}
    for line in text.splitlines():
        match = _LINE_RE.match(line)
        if not match:
            continue
        tier = int(match.group(4))
        method = match.group(5)
        size = int(match.group(6))
        if size <= 0:
            raise InstanceError(
                f"jvm log: bytecode size for {method!r} must be positive, "
                f"got {size}"
            )
        if method not in max_tier:
            first_seen.append(method)
            max_tier[method] = tier
            size_bytes[method] = size
        else:
            max_tier[method] = max(max_tier[method], tier)
    if not first_seen:
        raise InstanceError(
            "jvm log: no PrintCompilation lines found — expected "
            "'timestamp id [flags] tier method (N bytes)'"
        )

    levels = max(max_tier.values())
    profiles: Dict[str, FunctionProfile] = {}
    weights = []
    for method in first_seen:
        size = size_bytes[method]
        compile_times = tuple(
            size * COMPILE_US_PER_BYTE[j] for j in range(levels)
        )
        exec_times = tuple(
            size * EXEC_US_PER_BYTE / LEVEL_SPEEDUP[j] for j in range(levels)
        )
        try:
            profiles[method] = FunctionProfile(
                name=method, compile_times=compile_times, exec_times=exec_times
            )
        except ModelError as exc:  # defensive: factors keep monotonicity
            raise InstanceError(f"jvm log: {method!r}: {exc}") from exc
        weights.append((method, TIER_CALLS[max_tier[method]]))

    calls = weighted_round_robin(weights)
    instance = OCSPInstance(profiles=profiles, calls=calls, name=label)
    return InstanceBundle(instance=instance, source="jvm-log", time_unit="us")
