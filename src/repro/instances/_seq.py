"""Deterministic call-sequence synthesis for log importers.

Compilation logs (V8 ``--trace-opt``, HotSpot ``-XX:+PrintCompilation``)
record *compilation* events, not individual invocations, so an importer
must synthesize the invocation interleave.  The scheme here is a plain
round-robin: every function gets a hotness weight (its total call
count), and rounds emit one call of each still-active function in
first-seen order until all weights are exhausted.  This models the
steady interleaved phase the JIT actually observed (everything that got
compiled was running concurrently hot), uses no randomness, and is
trivially reproducible — the same log always yields the same sequence.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["weighted_round_robin"]


def weighted_round_robin(weights: Sequence[Tuple[str, int]]) -> Tuple[str, ...]:
    """Interleave ``(name, count)`` entries round-robin, in given order.

    Each round emits one call of every entry whose count is not yet
    exhausted, preserving the entries' order within the round; the
    sequence length is the sum of the counts.
    """
    remaining: List[int] = []
    names: List[str] = []
    for name, count in weights:
        if count < 0:
            raise ValueError(f"call count for {name!r} must be >= 0")
        names.append(name)
        remaining.append(count)
    calls: List[str] = []
    active = sum(1 for count in remaining if count > 0)
    while active:
        for i, name in enumerate(names):
            if remaining[i] > 0:
                calls.append(name)
                remaining[i] -= 1
                if remaining[i] == 0:
                    active -= 1
    return tuple(calls)
