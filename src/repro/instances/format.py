"""The versioned on-disk OCSP instance format (``repro-instance``).

An *instance bundle* is a directory of small UTF-8 files — the shape
third parties can produce, validate, and contribute without importing
this library, modeled on the MSOLab SCC-instances repositories:

* ``manifest.json`` — format name + version, instance name, the file
  map, element counts, and a SHA-256 **content fingerprint** (reusing
  :mod:`repro.store.fingerprint`'s canonical hashing);
* ``machine.json`` — the machine environment (compile threads the
  instance was measured/intended for, level count, time unit);
* ``costs.csv`` — one row per function: ``name, c0..c{L-1},
  e0..e{L-1}``; functions with fewer levels leave trailing cells empty;
* ``calls.csv`` — the invocation sequence, one function name per row;
* ``due_dates.json`` *(optional)* — per-function due dates and weights
  (see :class:`repro.core.makespan.DueDateTable`).

Exports are **canonical**: JSON with sorted keys and two-space indent,
floats in ``repr`` (shortest round-trip) form, rows sorted by function
name, ``\\n`` line endings, and a trailing newline on every file.  Two
bundles with the same content are therefore byte-identical, which makes
``cmp``/``diff -r`` a valid CI round-trip gate.

Every malformed shape raises :class:`InstanceError` (a ``ValueError``)
whose message carries the stable ``instance:`` prefix; the CLI renders
it as a one-line ``repro: error: instance: ...`` diagnostic with exit
code 2.  Tooling may match on the prefix.

Compatibility rules:

* readers accept exactly ``format_version == 1`` of format
  ``"repro-instance"`` and must reject anything else;
* unknown *extra* keys in ``manifest.json`` and unknown extra files in
  the directory are ignored (minor, forward-compatible additions);
* any change to the meaning of an existing file or field bumps
  :data:`FORMAT_VERSION`.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.makespan import DueDateTable
from ..core.model import FunctionProfile, ModelError, OCSPInstance
from ..store.fingerprint import canonical_encode, fingerprint_instance

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_FILE",
    "InstanceError",
    "InstanceBundle",
    "fingerprint_content",
    "write_bundle",
    "read_bundle",
    "validate_bundle",
    "list_bundles",
]

FORMAT_NAME = "repro-instance"
FORMAT_VERSION = 1

MANIFEST_FILE = "manifest.json"
_MACHINE_FILE = "machine.json"
_COSTS_FILE = "costs.csv"
_CALLS_FILE = "calls.csv"
_DUE_FILE = "due_dates.json"


class InstanceError(ValueError):
    """A malformed instance bundle or importer source.

    Messages carry the stable ``instance:`` prefix (mirroring the
    ``trace:``/``schedule:`` taxonomy of :mod:`repro.workloads.traces`).
    """

    def __init__(self, message: str) -> None:
        if not message.startswith("instance:"):
            message = f"instance: {message}"
        super().__init__(message)


@dataclass(frozen=True)
class InstanceBundle:
    """An OCSP instance plus the bundle-level metadata it ships with.

    Attributes:
        instance: the workload (profiles + call sequence).
        due_dates: optional per-function due dates/weights; when
            present, the due-date objectives of
            :func:`repro.core.makespan.due_date_objectives` apply.
        source: provenance label (``"synthetic"``, ``"trace"``,
            ``"v8-log"``, ``"jvm-log"``, ``"scc"``, ...).
        compile_threads: the machine environment's compiler-thread
            count (a recommendation for drivers, not a constraint).
        time_unit: unit of every time in the bundle (informational).
    """

    instance: OCSPInstance
    due_dates: Optional[DueDateTable] = None
    source: str = "trace"
    compile_threads: int = 1
    time_unit: str = "virtual"

    def __post_init__(self) -> None:
        if self.due_dates is not None and len(self.due_dates) == 0:
            object.__setattr__(self, "due_dates", None)
        if self.compile_threads < 1:
            raise InstanceError(
                f"machine environment: compile_threads must be >= 1, "
                f"got {self.compile_threads}"
            )
        if self.due_dates is not None:
            try:
                self.due_dates.validate_against(self.instance)
            except ModelError as exc:
                raise InstanceError(str(exc)) from exc

    @property
    def name(self) -> str:
        return self.instance.name

    @property
    def max_levels(self) -> int:
        return max(
            (p.num_levels for p in self.instance.profiles.values()), default=0
        )

    def content_fingerprint(self) -> str:
        """SHA-256 over the scheduling-relevant content; see
        :func:`fingerprint_content`."""
        return fingerprint_content(self.instance, self.due_dates)

    def summary(self) -> Dict[str, object]:
        """One row for ``repro instances list``."""
        return {
            "name": self.name,
            "source": self.source,
            "functions": self.instance.num_functions,
            "calls": self.instance.num_calls,
            "levels": self.max_levels,
            "due_dates": len(self.due_dates) if self.due_dates else 0,
            "fingerprint": self.content_fingerprint(),
        }


def fingerprint_content(
    instance: OCSPInstance, due_dates: Optional[DueDateTable] = None
) -> str:
    """Content fingerprint of a bundle.

    Without due dates this is exactly
    :func:`repro.store.fingerprint.fingerprint_instance` — a bundle
    exported from a trace fingerprints identically to the in-memory
    instance, so the result store and the bundle manifest agree.  With
    due dates, the instance digest is chained with the canonical
    encoding of the (sorted) due-date entries.
    """
    base = fingerprint_instance(instance)
    if due_dates is None or len(due_dates) == 0:
        return base
    h = hashlib.sha256()
    h.update(base.encode("ascii"))
    h.update(b"\x00due\x00")
    h.update(canonical_encode([[f, d, w] for f, (d, w) in due_dates.items()]))
    return h.hexdigest()


# ----------------------------------------------------------------------
# Canonical encoding helpers
# ----------------------------------------------------------------------
def _canonical_json(doc: object) -> str:
    """Sorted keys, two-space indent, trailing newline, repr floats."""
    return json.dumps(doc, sort_keys=True, indent=2, allow_nan=False) + "\n"


def _fmt_time(value: float) -> str:
    """Fixed float formatting: ``repr`` of the float (shortest exact
    round-trip, identical across CPython builds); ints stay ints."""
    return repr(float(value))


def _csv_text(rows: List[List[str]]) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerows(rows)
    return buf.getvalue()


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def write_bundle(bundle: InstanceBundle, path: Union[str, Path]) -> Path:
    """Write ``bundle`` to directory ``path`` in canonical form.

    The directory is created if missing; the bundle's files are
    (over)written atomically-enough for CI use (full rewrite, no
    partial appends).  Returns the directory path.
    """
    root = Path(path)
    if root.exists() and not root.is_dir():
        raise InstanceError(f"bundle path {root} exists and is not a directory")
    root.mkdir(parents=True, exist_ok=True)

    instance = bundle.instance
    levels = bundle.max_levels
    names = sorted(instance.profiles)

    header = (
        ["name"]
        + [f"c{j}" for j in range(levels)]
        + [f"e{j}" for j in range(levels)]
    )
    cost_rows: List[List[str]] = [header]
    for fname in names:
        prof = instance.profiles[fname]
        c = [_fmt_time(v) for v in prof.compile_times]
        e = [_fmt_time(v) for v in prof.exec_times]
        pad = [""] * (levels - prof.num_levels)
        cost_rows.append([fname] + c + pad + e + pad)

    call_rows = [["call"]] + [[fname] for fname in instance.calls]

    files = {
        "machine": _MACHINE_FILE,
        "costs": _COSTS_FILE,
        "calls": _CALLS_FILE,
    }
    if bundle.due_dates is not None:
        files["due_dates"] = _DUE_FILE

    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "name": instance.name,
        "source": bundle.source,
        "files": files,
        "counts": {
            "functions": instance.num_functions,
            "calls": instance.num_calls,
            "levels": levels,
        },
        "content_fingerprint": bundle.content_fingerprint(),
    }
    machine = {
        "compile_threads": bundle.compile_threads,
        "execution_threads": 1,
        "levels": levels,
        "time_unit": bundle.time_unit,
    }

    (root / _COSTS_FILE).write_text(_csv_text(cost_rows), encoding="utf-8")
    (root / _CALLS_FILE).write_text(_csv_text(call_rows), encoding="utf-8")
    (root / _MACHINE_FILE).write_text(_canonical_json(machine), encoding="utf-8")
    if bundle.due_dates is not None:
        due_doc = {
            "entries": {
                fname: {"due": due, "weight": weight}
                for fname, (due, weight) in bundle.due_dates.items()
            }
        }
        (root / _DUE_FILE).write_text(_canonical_json(due_doc), encoding="utf-8")
    (root / MANIFEST_FILE).write_text(
        _canonical_json(manifest), encoding="utf-8"
    )
    return root


# ----------------------------------------------------------------------
# Reading / validation
# ----------------------------------------------------------------------
def _read_text(root: Path, rel: str, role: str) -> str:
    target = root / rel
    try:
        return target.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise InstanceError(
            f"{root}: {role} file {rel!r} listed in the manifest is missing"
        ) from None
    except UnicodeDecodeError as exc:
        raise InstanceError(f"{root}: {role} file {rel!r} is not UTF-8 ({exc})")


def _parse_json_object(text: str, where: str) -> dict:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InstanceError(f"{where} is not valid JSON ({exc})") from exc
    if not isinstance(doc, dict):
        raise InstanceError(
            f"{where} must be a JSON object, got {type(doc).__name__}"
        )
    return doc


def _manifest_file_map(manifest: dict, root: Path) -> Dict[str, str]:
    files = manifest.get("files")
    if not isinstance(files, dict):
        raise InstanceError(f"{root}: manifest 'files' must be an object")
    for role in ("machine", "costs", "calls"):
        if role not in files:
            raise InstanceError(
                f"{root}: manifest 'files' is missing the {role!r} entry"
            )
    for role, rel in files.items():
        if not isinstance(rel, str) or not rel:
            raise InstanceError(
                f"{root}: manifest file entry {role!r} must be a non-empty "
                f"string, got {rel!r}"
            )
        p = Path(rel)
        if p.is_absolute() or ".." in p.parts or len(p.parts) != 1:
            raise InstanceError(
                f"{root}: manifest file entry {role!r} must be a bare file "
                f"name inside the bundle, got {rel!r}"
            )
    return {role: str(rel) for role, rel in files.items()}


def _parse_number(cell: str, where: str) -> float:
    try:
        value = float(cell)
    except ValueError:
        raise InstanceError(f"{where}: non-numeric value {cell!r}") from None
    if not math.isfinite(value):
        raise InstanceError(f"{where}: value must be finite, got {cell!r}")
    return value


def _parse_costs(text: str, root: Path) -> Dict[str, FunctionProfile]:
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise InstanceError(f"{root}: costs.csv is empty") from None
    levels = (len(header) - 1) // 2
    expected = (
        ["name"]
        + [f"c{j}" for j in range(levels)]
        + [f"e{j}" for j in range(levels)]
    )
    if levels < 1 or header != expected:
        raise InstanceError(
            f"{root}: costs.csv header must be "
            f"'name,c0..c<L-1>,e0..e<L-1>', got {header!r}"
        )
    profiles: Dict[str, FunctionProfile] = {}
    for lineno, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != 1 + 2 * levels:
            raise InstanceError(
                f"{root}: costs.csv line {lineno}: expected "
                f"{1 + 2 * levels} fields, got {len(row)}"
            )
        fname = row[0]
        if not fname:
            raise InstanceError(
                f"{root}: costs.csv line {lineno}: empty function name"
            )
        if fname in profiles:
            raise InstanceError(
                f"{root}: costs.csv line {lineno}: duplicate function "
                f"{fname!r}"
            )
        c_cells = row[1 : 1 + levels]
        e_cells = row[1 + levels :]
        own_levels = sum(1 for cell in c_cells if cell != "")
        if own_levels == 0:
            raise InstanceError(
                f"{root}: costs.csv line {lineno}: {fname!r} has no levels"
            )
        if any(cell != "" for cell in c_cells[own_levels:]) or [
            cell == "" for cell in e_cells
        ] != [cell == "" for cell in c_cells]:
            raise InstanceError(
                f"{root}: costs.csv line {lineno}: {fname!r} has ragged "
                f"level cells (levels must be a contiguous prefix, with "
                f"matching c and e columns)"
            )
        compile_times = tuple(
            _parse_number(cell, f"{root}: costs.csv line {lineno} ({fname!r})")
            for cell in c_cells[:own_levels]
        )
        exec_times = tuple(
            _parse_number(cell, f"{root}: costs.csv line {lineno} ({fname!r})")
            for cell in e_cells[:own_levels]
        )
        try:
            profiles[fname] = FunctionProfile(
                name=fname, compile_times=compile_times, exec_times=exec_times
            )
        except ModelError as exc:
            raise InstanceError(
                f"{root}: costs.csv line {lineno}: {exc}"
            ) from exc
    if not profiles:
        raise InstanceError(f"{root}: costs.csv has no data rows")
    return profiles


def _parse_calls(text: str, root: Path) -> Tuple[str, ...]:
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise InstanceError(f"{root}: calls.csv is empty") from None
    if header != ["call"]:
        raise InstanceError(
            f"{root}: calls.csv header must be 'call', got {header!r}"
        )
    calls: List[str] = []
    for lineno, row in enumerate(reader, start=2):
        if not row or all(not cell for cell in row):
            continue
        if len(row) != 1 or not row[0]:
            raise InstanceError(
                f"{root}: calls.csv line {lineno}: expected one function "
                f"name, got {row!r}"
            )
        calls.append(row[0])
    return tuple(calls)


def _parse_due_dates(text: str, root: Path) -> DueDateTable:
    doc = _parse_json_object(text, f"{root}: due_dates.json")
    entries = doc.get("entries")
    if not isinstance(entries, dict):
        raise InstanceError(
            f"{root}: due_dates.json 'entries' must be an object"
        )
    table: Dict[str, Tuple[float, float]] = {}
    for fname, entry in entries.items():
        if not isinstance(entry, dict):
            raise InstanceError(
                f"{root}: due_dates.json entry for {fname!r} must be an "
                f"object with 'due' and 'weight'"
            )
        due = entry.get("due")
        weight = entry.get("weight", 1.0)
        for label, value in (("due", due), ("weight", weight)):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise InstanceError(
                    f"{root}: due_dates.json entry for {fname!r}: {label} "
                    f"must be a number, got {value!r}"
                )
        table[fname] = (float(due), float(weight))
    try:
        return DueDateTable(table)
    except ModelError as exc:
        raise InstanceError(f"{root}: due_dates.json: {exc}") from exc


def _bundle_root(path: Union[str, Path]) -> Path:
    root = Path(path)
    if root.is_file() and root.name == MANIFEST_FILE:
        root = root.parent
    if not root.is_dir():
        raise InstanceError(f"{root} is not an instance bundle directory")
    if not (root / MANIFEST_FILE).is_file():
        raise InstanceError(f"{root} has no {MANIFEST_FILE}")
    return root


def read_bundle(
    path: Union[str, Path], verify_fingerprint: bool = True
) -> InstanceBundle:
    """Read and fully validate an instance bundle.

    Every structural problem — bad JSON, an unsupported format version,
    malformed CSV, non-monotone cost tables, calls naming unknown
    functions, due dates naming unknown functions, count mismatches, a
    stale content fingerprint — raises :class:`InstanceError`.

    Args:
        path: the bundle directory (or its ``manifest.json``).
        verify_fingerprint: recompute the content fingerprint and
            require it to match the manifest (on by default; importers
            that are about to rewrite the manifest may skip it).
    """
    root = _bundle_root(path)
    manifest = _parse_json_object(
        _read_text(root, MANIFEST_FILE, "manifest"), f"{root}: manifest.json"
    )
    fmt = manifest.get("format")
    if fmt != FORMAT_NAME:
        raise InstanceError(
            f"{root}: unsupported format {fmt!r} (expected {FORMAT_NAME!r})"
        )
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise InstanceError(
            f"{root}: unsupported format_version {version!r} "
            f"(this reader supports {FORMAT_VERSION})"
        )
    name = manifest.get("name")
    if not isinstance(name, str) or not name:
        raise InstanceError(
            f"{root}: manifest 'name' must be a non-empty string, got {name!r}"
        )
    source = manifest.get("source", "unknown")
    if not isinstance(source, str) or not source:
        raise InstanceError(
            f"{root}: manifest 'source' must be a non-empty string, "
            f"got {source!r}"
        )
    files = _manifest_file_map(manifest, root)

    machine = _parse_json_object(
        _read_text(root, files["machine"], "machine"),
        f"{root}: {files['machine']}",
    )
    compile_threads = machine.get("compile_threads", 1)
    if (
        isinstance(compile_threads, bool)
        or not isinstance(compile_threads, int)
        or compile_threads < 1
    ):
        raise InstanceError(
            f"{root}: machine environment compile_threads must be an "
            f"integer >= 1, got {compile_threads!r}"
        )
    time_unit = machine.get("time_unit", "virtual")
    if not isinstance(time_unit, str) or not time_unit:
        raise InstanceError(
            f"{root}: machine environment time_unit must be a non-empty "
            f"string, got {time_unit!r}"
        )

    profiles = _parse_costs(_read_text(root, files["costs"], "costs"), root)
    calls = _parse_calls(_read_text(root, files["calls"], "calls"), root)
    try:
        instance = OCSPInstance(profiles=profiles, calls=calls, name=name)
    except ModelError as exc:
        raise InstanceError(f"{root}: {exc}") from exc

    due_dates: Optional[DueDateTable] = None
    if "due_dates" in files:
        due_dates = _parse_due_dates(
            _read_text(root, files["due_dates"], "due dates"), root
        )

    try:
        bundle = InstanceBundle(
            instance=instance,
            due_dates=due_dates,
            source=source,
            compile_threads=compile_threads,
            time_unit=time_unit,
        )
    except ModelError as exc:
        raise InstanceError(f"{root}: {exc}") from exc

    counts = manifest.get("counts")
    if isinstance(counts, dict):
        expected = {
            "functions": instance.num_functions,
            "calls": instance.num_calls,
            "levels": bundle.max_levels,
        }
        for key, want in expected.items():
            have = counts.get(key)
            if have != want:
                raise InstanceError(
                    f"{root}: manifest counts.{key} is {have!r} but the "
                    f"bundle content has {want}"
                )

    if verify_fingerprint:
        recorded = manifest.get("content_fingerprint")
        actual = bundle.content_fingerprint()
        if recorded != actual:
            raise InstanceError(
                f"{root}: content fingerprint mismatch — manifest records "
                f"{recorded!r}, content hashes to {actual!r} (the bundle "
                f"was edited without re-exporting)"
            )
    return bundle


def validate_bundle(path: Union[str, Path]) -> InstanceBundle:
    """Alias of :func:`read_bundle` with every check on (the CLI's
    ``repro instances validate``)."""
    return read_bundle(path, verify_fingerprint=True)


def list_bundles(root: Union[str, Path]) -> List[Dict[str, object]]:
    """Summaries of every bundle directly under ``root``.

    ``root`` itself may be a bundle.  Unreadable bundles are reported
    with an ``error`` field instead of aborting the listing.
    """
    base = Path(root)
    if not base.is_dir():
        raise InstanceError(f"{base} is not a directory")
    candidates: List[Path] = []
    if (base / MANIFEST_FILE).is_file():
        candidates.append(base)
    else:
        for child in sorted(base.iterdir()):
            if child.is_dir() and (child / MANIFEST_FILE).is_file():
                candidates.append(child)
    rows: List[Dict[str, object]] = []
    for candidate in candidates:
        row: Dict[str, object] = {"path": str(candidate)}
        try:
            bundle = read_bundle(candidate)
        except InstanceError as exc:
            row["error"] = str(exc)
        else:
            row.update(bundle.summary())
        rows.append(row)
    return rows
