"""Versioned on-disk OCSP instance bundles and external importers.

This package gives OCSP instances a portable, schema-versioned on-disk
form (:mod:`repro.instances.format`) — a small directory of UTF-8
JSON/CSV files with a manifest carrying a format version and a SHA-256
content fingerprint — plus importers that build instances from sources
other than the synthetic generator:

* :mod:`repro.instances.v8log` — V8 ``--trace-opt``-style logs;
* :mod:`repro.instances.jvmlog` — HotSpot ``-XX:+PrintCompilation``
  logs;
* :mod:`repro.instances.scc` — SCC due-date instance sets, which also
  introduce the due-date objectives of :mod:`repro.core.makespan`.

Exports are canonical (sorted keys, ``repr`` floats, ``\\n`` endings),
so export → import round-trips bitwise and two exports of the same
instance compare equal with ``cmp``.  See ``docs/INSTANCES.md`` for the
file-by-file specification.
"""

from .format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_FILE,
    InstanceBundle,
    InstanceError,
    fingerprint_content,
    list_bundles,
    read_bundle,
    validate_bundle,
    write_bundle,
)
from .jvmlog import bundle_from_jvm_log
from .scc import bundle_from_scc
from .v8log import bundle_from_v8_log

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_FILE",
    "InstanceBundle",
    "InstanceError",
    "fingerprint_content",
    "list_bundles",
    "read_bundle",
    "validate_bundle",
    "write_bundle",
    "bundle_from_v8_log",
    "bundle_from_jvm_log",
    "bundle_from_scc",
]
