"""Import OCSP instances from V8 ``--trace-opt``-style logs.

V8 run with ``--trace-opt`` (and friends) prints one line per
optimization event::

    [marking 0x2a2d <JSFunction hotLoop (sfi = 0x11)> for optimized
        recompilation, reason: hot and stable]
    [compiling method 0x2a2d <JSFunction hotLoop> using TurboFan]
    [optimizing 0x2a2d <JSFunction hotLoop (sfi = 0x11)> - took 0.319,
        1.106, 0.033 ms]
    [completed optimizing 0x2a2d <JSFunction hotLoop>]

The adapter reads two event kinds:

* ``[marking <f> for optimized recompilation...]`` — ``f`` got hot;
  order of first marking gives the first-seen order;
* ``[optimizing <f> - took a, b, c ms]`` — the three phase times of the
  optimizing compile; their sum is ``f``'s **measured** level-1 compile
  time.

Everything else a real log contains (deopts, GC lines, program output)
is skipped; a log with *no* recognizable event raises
:class:`~repro.instances.format.InstanceError`.

Caveats (also in ``docs/INSTANCES.md``): a ``--trace-opt`` log carries
no per-invocation execution times and no baseline compile times, so the
importer derives them with fixed, documented ratios
(:data:`BASELINE_COMPILE_RATIO`, :data:`EXEC_PER_COMPILE`,
:data:`OPT_SPEEDUP`), and synthesizes the invocation interleave with a
deterministic weighted round-robin (:mod:`repro.instances._seq`).  The
resulting instance is a faithful *shape* of the logged workload — real
functions, real compile times, real hot set — with modeled execution
costs.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.model import FunctionProfile, ModelError, OCSPInstance
from ._seq import weighted_round_robin
from .format import InstanceBundle, InstanceError

__all__ = [
    "BASELINE_COMPILE_RATIO",
    "EXEC_PER_COMPILE",
    "OPT_SPEEDUP",
    "HOT_CALLS",
    "WARM_CALLS",
    "bundle_from_v8_log",
]

# Baseline (Ignition/Sparkplug-style) compile time as a fraction of the
# measured optimizing compile time.
BASELINE_COMPILE_RATIO = 0.1
# Per-invocation optimized execution time as a fraction of the
# optimizing compile time (a compile amortizes over ~50 calls).
EXEC_PER_COMPILE = 0.02
# Baseline-over-optimized execution slowdown.
OPT_SPEEDUP = 4.0
# Synthesized invocation counts: functions that reached the optimizer
# vs functions only marked hot.
HOT_CALLS = 64
WARM_CALLS = 8

_MARKING_RE = re.compile(
    r"\[marking\s+(?:0x[0-9a-fA-F]+\s+)?<JSFunction\s+([^\s>(]+)"
    r"[^>]*>\s+for optimized recompilation"
)
_OPTIMIZING_RE = re.compile(
    r"\[optimizing\s+(?:0x[0-9a-fA-F]+\s+)?<JSFunction\s+([^\s>(]+)"
    r"[^>]*>\s+-\s+took\s+([0-9.]+),\s*([0-9.]+),\s*([0-9.]+)\s*ms\]"
)


def bundle_from_v8_log(
    source: Union[str, Path],
    name: Optional[str] = None,
    from_file: bool = True,
) -> InstanceBundle:
    """Build an instance bundle from a V8 ``--trace-opt``-style log.

    Args:
        source: path to the log (or its text when ``from_file=False``).
        name: instance label (default: the file's stem, or ``"v8-log"``).
        from_file: treat ``source`` as a path (default) or as raw text.

    Raises:
        InstanceError: if the log contains no recognizable event or a
            parsed value is malformed.
        OSError: if the file cannot be read.
    """
    if from_file:
        path = Path(source)
        text = path.read_text(encoding="utf-8", errors="replace")
        label = name or path.stem
    else:
        text = str(source)
        label = name or "v8-log"

    first_seen: List[str] = []
    opt_compile_ms: Dict[str, float] = {}
    for line in text.splitlines():
        match = _MARKING_RE.search(line)
        if match:
            fname = match.group(1)
            if fname not in first_seen:
                first_seen.append(fname)
            continue
        match = _OPTIMIZING_RE.search(line)
        if match:
            fname = match.group(1)
            if fname not in first_seen:
                first_seen.append(fname)
            took = sum(float(match.group(i)) for i in (2, 3, 4))
            if took <= 0.0:
                raise InstanceError(
                    f"v8 log: optimizing time for {fname!r} must be "
                    f"positive, got {took!r}"
                )
            # First measurement wins: recompiles after deopt re-time the
            # same work, and determinism beats averaging here.
            opt_compile_ms.setdefault(fname, took)
    if not first_seen:
        raise InstanceError(
            "v8 log: no '[marking ...]' or '[optimizing ... took ...]' "
            "events found — is this a --trace-opt log?"
        )

    profiles: Dict[str, FunctionProfile] = {}
    weights = []
    for fname in first_seen:
        took = opt_compile_ms.get(fname)
        if took is None:
            # Marked hot but never finished optimizing: a single
            # baseline level, costed like a typical baseline compile.
            base = 1.0 * BASELINE_COMPILE_RATIO
            exec_base = base * EXEC_PER_COMPILE * OPT_SPEEDUP
            profiles[fname] = FunctionProfile(
                name=fname,
                compile_times=(base,),
                exec_times=(exec_base,),
            )
            weights.append((fname, WARM_CALLS))
            continue
        c1 = took
        c0 = c1 * BASELINE_COMPILE_RATIO
        e1 = c1 * EXEC_PER_COMPILE
        e0 = e1 * OPT_SPEEDUP
        try:
            profiles[fname] = FunctionProfile(
                name=fname, compile_times=(c0, c1), exec_times=(e0, e1)
            )
        except ModelError as exc:  # defensive: ratios keep monotonicity
            raise InstanceError(f"v8 log: {fname!r}: {exc}") from exc
        weights.append((fname, HOT_CALLS))

    calls = weighted_round_robin(weights)
    instance = OCSPInstance(profiles=profiles, calls=calls, name=label)
    return InstanceBundle(instance=instance, source="v8-log", time_unit="ms")
