"""Cost-benefit models used by adaptive runtime systems (Sections 2, 6.2.2).

A cost-benefit model supplies the runtime's *beliefs* about two things:

1. **times** — compile and per-invocation execution time of a method at
   each level.  Jikes RVM estimates these "through some simple linear
   functions of the size of the function" trained offline (Section 8);
   such static estimates are "often quite rough".
2. **hotness** — how often the method will run in the future.  Jikes
   RVM's adaptive system extrapolates from sampling under the
   assumption that "a hot method in the past will remain hot in the
   future" (Section 9), which systematically over-assigns expensive
   optimization levels to merely warm methods.

The paper's oracle experiment (Section 6.2.2) "simply replace[s] the
estimated time with the actual time" — times only; the hotness
prediction machinery is untouched.  We model accordingly:
:class:`EstimatedModel` distorts times with correlated noise and shares
the optimistic hotness predictor; :class:`OracleModel` reports exact
times but keeps the same predictor.  Both substitutions are documented
in DESIGN.md.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Optional

from ..core.model import FunctionProfile, OCSPInstance
from ..core.online import perturb_times

__all__ = [
    "CostBenefitModel",
    "OracleModel",
    "EstimatedModel",
    "DEFAULT_ESTIMATION_ERROR",
    "DEFAULT_LEVEL_BIAS",
    "DEFAULT_HOTNESS_OPTIMISM",
    "DEFAULT_HOTNESS_SIGMA",
]

DEFAULT_ESTIMATION_ERROR = 0.6
"""Relative error of the default model's time estimates."""

DEFAULT_LEVEL_BIAS = 0.6
"""Per-level pessimism of the default model about optimization payoff:
the estimated execution time at level ``j`` is inflated by
``(1 + bias)**j``.  Offline-trained size-based estimators are fit to
average code and systematically understate how much the optimizing
levels help the code that matters, so the default model assigns lower
"suitable" levels than the oracle — which is why fixing the times alone
(Figure 6) lowers the reachable bound and widens every scheme's gap.
"""

DEFAULT_HOTNESS_OPTIMISM = 3.0
"""Median factor by which the hotness predictor over-extrapolates a
method's future invocation count ("hot stays hot")."""

DEFAULT_HOTNESS_SIGMA = 1.2
"""Lognormal spread of the hotness prediction across methods."""

DEFAULT_HOTNESS_FLOOR = 0.003
"""The predictor's prior: any loaded method is assumed to run at least
this fraction of the program's calls.  This is what makes offline-trained
models assign expensive optimization levels to methods that turn out to
be cold — harmless for the achievable bound (those methods barely
execute) but ruinous for schemes that eagerly compile everything at its
assigned level."""


class CostBenefitModel(ABC):
    """The runtime's view of costs and future hotness.

    All level decisions in :mod:`repro.vm` and the experiment drivers go
    through one of these, so swapping the default model for the oracle
    reproduces the paper's Figure 5 → Figure 6 change.

    Args:
        instance: the workload the model is attached to (used only to
            key the deterministic prediction noise and to size the
            hotness floor).
        hotness_optimism: median over-extrapolation factor of the
            hotness predictor.
        hotness_sigma: lognormal spread of the prediction factor.
        hotness_floor: prior fraction of the program's calls any loaded
            method is assumed to reach.  ``optimism=1, sigma=0,
            floor=0`` makes the predictor exact.
        seed: RNG seed for all model noise.
    """

    def __init__(
        self,
        instance: OCSPInstance,
        hotness_optimism: float = DEFAULT_HOTNESS_OPTIMISM,
        hotness_sigma: float = DEFAULT_HOTNESS_SIGMA,
        hotness_floor: float = DEFAULT_HOTNESS_FLOOR,
        seed: int = 0,
    ):
        if hotness_optimism <= 0:
            raise ValueError("hotness_optimism must be positive")
        if hotness_sigma < 0:
            raise ValueError("hotness_sigma must be non-negative")
        if hotness_floor < 0:
            raise ValueError("hotness_floor must be non-negative")
        self._instance_name = instance.name
        self._hotness_optimism = hotness_optimism
        self._hotness_sigma = hotness_sigma
        self._hotness_floor_calls = hotness_floor * instance.num_calls
        self._seed = seed
        self._hotness_cache: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Times (subclass responsibility)
    # ------------------------------------------------------------------
    @abstractmethod
    def compile_time(self, fname: str, level: int) -> float:
        """Estimated compilation time of ``fname`` at ``level``."""

    @abstractmethod
    def exec_time(self, fname: str, level: int) -> float:
        """Estimated per-invocation execution time at ``level``."""

    @abstractmethod
    def num_levels(self, fname: str) -> int:
        """Number of levels available for ``fname``."""

    # ------------------------------------------------------------------
    # Hotness prediction (shared mechanism)
    # ------------------------------------------------------------------
    def _hotness_noise(self, fname: str) -> float:
        """Deterministic per-method standard-normal draw."""
        cached = self._hotness_cache.get(fname)
        if cached is not None:
            return cached
        rng = random.Random(
            repr((self._instance_name, self._seed, "hotness", fname))
        )
        z = rng.gauss(0.0, 1.0)
        self._hotness_cache[fname] = z
        return z

    def predicted_calls(self, fname: str, actual_calls: int) -> float:
        """The model's belief about ``fname``'s invocation count.

        Prediction quality improves with observed hotness: a method the
        sampler sees constantly is well characterized, while a barely-
        seen method's future is a guess dominated by the prior.  With
        ``w = 1 / (1 + (n/floor)^2)`` (1 for cold methods, falling fast
        once a method is demonstrably hot) the belief is::

            (n + w*floor) * optimism**w * exp(sigma * w * z_f)

        — exact for hot methods, optimistic and noisy for cold ones.
        """
        floor = self._hotness_floor_calls
        if floor <= 0 and self._hotness_sigma == 0 and self._hotness_optimism == 1:
            return float(actual_calls)
        w = 1.0 / (1.0 + (actual_calls / floor) ** 2) if floor > 0 else 0.0
        if w == 0.0:
            return float(actual_calls)
        z = self._hotness_noise(fname)
        factor = (self._hotness_optimism ** w) * math.exp(
            self._hotness_sigma * w * z
        )
        return (actual_calls + w * floor) * factor

    def hotness_factor(self, fname: str) -> float:
        """The cold-end prediction factor (``w = 1``); informational."""
        z = self._hotness_noise(fname)
        return self._hotness_optimism * math.exp(self._hotness_sigma * z)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def most_cost_effective_level(self, fname: str, n_calls: float) -> int:
        """Level minimizing believed ``c[l] + n_calls * e[l]`` (ties to
        the deeper level, which the predictor favours)."""
        best_level = 0
        best_cost = self.compile_time(fname, 0) + n_calls * self.exec_time(fname, 0)
        for level in range(1, self.num_levels(fname)):
            cost = self.compile_time(fname, level) + n_calls * self.exec_time(
                fname, level
            )
            if cost <= best_cost:
                best_level = level
                best_cost = cost
        return best_level

    def suitable_level(self, fname: str, actual_calls: int) -> int:
        """The "suitable" optimization level the runtime would assign:
        the most cost-effective level under the *predicted* hotness."""
        return self.most_cost_effective_level(
            fname, self.predicted_calls(fname, actual_calls)
        )

    def estimated_future_calls(
        self, fname: str, current_level: int, samples: int, sample_period: float
    ) -> float:
        """Turn a sample count into an invocation estimate.

        Jikes RVM's sampler is timer-based: ``samples * sample_period``
        approximates the time spent inside ``fname`` so far, and the
        adaptive system assumes a method's future equals its past.  The
        paper's ``k`` in the recompilation test denotes that estimate;
        dividing by the believed per-invocation time converts it to
        invocations so the test is unit-correct.
        """
        if samples <= 0:
            return 0.0
        believed_exec = self.exec_time(fname, current_level)
        if believed_exec <= 0:
            return 0.0
        return samples * sample_period / believed_exec

    def recompilation_level(
        self, fname: str, current_level: int, future_calls: float
    ) -> Optional[int]:
        """Jikes RVM's recompilation test (Section 6.2.1).

        The cost of (re)compiling at level ``j`` is ``e_j * k + c_j``
        where ``k`` estimates the method's future invocations (see
        :meth:`estimated_future_calls`).  With ``l`` the current level
        and ``m`` the minimal-cost level above ``l``: recompile at ``m``
        iff ``e_m * k + c_m < e_l * k``.

        Returns:
            The level to recompile at, or ``None`` if staying put wins.
        """
        levels = self.num_levels(fname)
        if current_level >= levels - 1:
            return None
        best_m = None
        best_cost = float("inf")
        for j in range(current_level + 1, levels):
            cost = (
                self.exec_time(fname, j) * future_calls
                + self.compile_time(fname, j)
            )
            if cost < best_cost:
                best_cost = cost
                best_m = j
        stay_cost = self.exec_time(fname, current_level) * future_calls
        if best_m is not None and best_cost < stay_cost:
            return best_m
        return None


class OracleModel(CostBenefitModel):
    """Actual times, default hotness predictor (the paper's oracle).

    "In our oracle cost-benefit model, we simply replace the estimated
    time with the actual time.  The model is not necessarily the
    optimal model, but it is the best the default cost-benefit model
    can do." (Section 6.2.2)

    Pass ``hotness_optimism=1.0, hotness_sigma=0.0`` for a fully honest
    model (exact times *and* exact future counts).
    """

    def __init__(
        self,
        instance: OCSPInstance,
        hotness_optimism: float = DEFAULT_HOTNESS_OPTIMISM,
        hotness_sigma: float = DEFAULT_HOTNESS_SIGMA,
        hotness_floor: float = DEFAULT_HOTNESS_FLOOR,
        seed: int = 0,
    ):
        super().__init__(
            instance,
            hotness_optimism=hotness_optimism,
            hotness_sigma=hotness_sigma,
            hotness_floor=hotness_floor,
            seed=seed,
        )
        self._profiles = instance.profiles

    def compile_time(self, fname: str, level: int) -> float:
        return self._profiles[fname].compile_times[level]

    def exec_time(self, fname: str, level: int) -> float:
        return self._profiles[fname].exec_times[level]

    def num_levels(self, fname: str) -> int:
        return self._profiles[fname].num_levels


class EstimatedModel(CostBenefitModel):
    """The default model: noisy time estimates plus the optimistic
    hotness predictor.

    Args:
        instance: the true instance.
        rel_error: relative magnitude of the (lognormal, per-function
            correlated) time-estimation error; 0 reproduces the oracle's
            times.
        hotness_optimism / hotness_sigma / seed: see the base class.
    """

    def __init__(
        self,
        instance: OCSPInstance,
        rel_error: float = DEFAULT_ESTIMATION_ERROR,
        level_bias: float = DEFAULT_LEVEL_BIAS,
        hotness_optimism: float = DEFAULT_HOTNESS_OPTIMISM,
        hotness_sigma: float = DEFAULT_HOTNESS_SIGMA,
        hotness_floor: float = DEFAULT_HOTNESS_FLOOR,
        seed: int = 0,
    ):
        super().__init__(
            instance,
            hotness_optimism=hotness_optimism,
            hotness_sigma=hotness_sigma,
            hotness_floor=hotness_floor,
            seed=seed,
        )
        if level_bias < 0:
            raise ValueError("level_bias must be non-negative")
        rng = random.Random(repr((instance.name, seed, "times")))
        # Correlated noise: a size-based linear estimator is wrong about
        # magnitudes but mostly consistent across levels of one method.
        self._estimates: Dict[str, FunctionProfile] = {}
        for fname, prof in sorted(instance.profiles.items()):
            noisy = perturb_times(prof, rel_error, rng, correlated=True)
            if level_bias > 0:
                biased_exec = [
                    e * (1.0 + level_bias) ** j
                    for j, e in enumerate(noisy.exec_times)
                ]
                # Pessimism must not break monotonicity outright.
                for j in range(1, len(biased_exec)):
                    if biased_exec[j] > biased_exec[j - 1]:
                        biased_exec[j] = biased_exec[j - 1]
                noisy = noisy.with_times(exec_times=biased_exec)
            self._estimates[fname] = noisy

    def compile_time(self, fname: str, level: int) -> float:
        return self._estimates[fname].compile_times[level]

    def exec_time(self, fname: str, level: int) -> float:
        return self._estimates[fname].exec_times[level]

    def num_levels(self, fname: str) -> int:
        return self._estimates[fname].num_levels
