"""Priority-ordered compilation queues (extension).

The paper's runtime model — and Jikes RVM's implementation — serves
compile requests FIFO.  Production JITs (e.g. HotSpot) order their
queues instead: first-compiles before recompiles, hotter methods
first.  This module adds a dispatch-policy dimension to the reactive
co-simulation so the question "how much of the reactive gap is *queue
policy* rather than *late discovery*?" can be measured.

Unlike :class:`~repro.vm.runtime.RuntimeSimulator` (which can resolve
FIFO dispatch greedily at enqueue time), priority dispatch must be
simulated event by event: a compiler thread that frees at time ``T``
picks the best *already-arrived* request, and may stay idle until the
next arrival.  There is no preemption.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..core.model import OCSPInstance
from ..core.schedule import CompileTask, Schedule
from .runtime import RuntimeRunResult, RuntimeScheme, default_sample_period

__all__ = ["PriorityRuntimeSimulator", "PRIORITY_POLICIES", "run_with_policy"]


def _fifo_key(level: int, observed_calls: int, seq: int) -> Tuple:
    return (seq,)


def _first_compiles_key(level: int, observed_calls: int, seq: int) -> Tuple:
    # Blocking first-compiles jump the queue; recompiles stay FIFO.
    return (0 if level == 0 else 1, seq)


def _hotness_key(level: int, observed_calls: int, seq: int) -> Tuple:
    # First-compiles first, then hottest methods, then FIFO.
    return (0 if level == 0 else 1, -observed_calls, seq)


PRIORITY_POLICIES: Dict[str, Callable[[int, int, int], Tuple]] = {
    "fifo": _fifo_key,
    "first_compiles": _first_compiles_key,
    "hotness": _hotness_key,
}


class PriorityRuntimeSimulator:
    """Reactive co-simulation with a priority-ordered compile queue.

    Args:
        instance: the workload.
        scheme: the reactive policy (same hooks as the FIFO simulator).
        policy: one of :data:`PRIORITY_POLICIES` (lower keys dispatch
            first).
        compile_threads: compiler threads.
        sample_period: sampler interval (``None`` → derived).
        tracer: optional :class:`repro.observability.Tracer` (or scope);
            records enqueues, compile spans, calls, bubbles, samples.
        metrics: optional :class:`repro.observability.MetricsRegistry`;
            records ``priorityqueue.enqueued`` / ``deduped`` /
            ``dispatched`` per event, ``priorityqueue.reheapifies``
            for each dispatch that had to fall back to a linear scan of
            the ready pool (multi-thread only; see
            :meth:`_dispatch_one`), and bulk ``priorityqueue.calls`` /
            ``samples`` at the end of :meth:`run`.  ``None`` (the
            default) costs one branch per event and never changes the
            numbers.
    """

    def __init__(
        self,
        instance: OCSPInstance,
        scheme: RuntimeScheme,
        policy: str = "hotness",
        compile_threads: int = 1,
        sample_period: Optional[float] = None,
        tracer=None,
        metrics=None,
    ):
        if policy not in PRIORITY_POLICIES:
            raise ValueError(
                f"policy must be one of {sorted(PRIORITY_POLICIES)}, got {policy!r}"
            )
        if compile_threads < 1:
            raise ValueError("compile_threads must be >= 1")
        self.instance = instance
        self.scheme = scheme
        self.policy = PRIORITY_POLICIES[policy]
        self.compile_threads = compile_threads
        self.sample_period = (
            sample_period
            if sample_period is not None
            else default_sample_period(instance)
        )
        if self.sample_period <= 0:
            raise ValueError("sample_period must be positive")
        self.tracer = tracer
        self.metrics = metrics
        self._reset()

    def _reset(self) -> None:
        # (free_time, thread_id) so traced compile spans know their
        # track; timing is unchanged vs a bare float heap.
        self._threads: List[Tuple[float, int]] = [
            (0.0, tid) for tid in range(self.compile_threads)
        ]
        heapq.heapify(self._threads)
        # Pending requests live in two heaps so a dispatch is O(log n)
        # instead of the old O(n) scan + heapify of one flat list:
        # ``_unarrived`` orders by arrival time and feeds ``_ready``
        # (ordered by priority key) as the dispatch clock passes each
        # arrival.  ``_ready_arrivals`` tracks the ready pool's earliest
        # arrival lazily — entries whose seq is in ``_done`` are stale
        # (already dispatched) and skipped at the root.
        self._unarrived: List[Tuple[float, int, Tuple, str, int]] = []
        self._ready: List[Tuple[Tuple, int, float, str, int]] = []
        self._ready_arrivals: List[Tuple[float, int]] = []
        self._done: set = set()
        self._seq = itertools.count()
        self._requested_level: Dict[str, int] = {}
        self._finish_events: Dict[str, List[Tuple[float, int]]] = {}
        self._dispatched: List[CompileTask] = []
        self._enqueue_times: List[float] = []
        self._observed: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # API for schemes (mirrors RuntimeSimulator)
    # ------------------------------------------------------------------
    def enqueue(self, fname: str, level: int, time: float) -> None:
        """Submit a compile request at ``time``."""
        prof = self.instance.profiles[fname]
        if not 0 <= level < prof.num_levels:
            raise ValueError(f"level {level} out of range for {fname!r}")
        prev = self._requested_level.get(fname, -1)
        if level <= prev:
            if self.metrics is not None:
                self.metrics.counter("priorityqueue.deduped").inc()
            return
        self._requested_level[fname] = level
        if self.metrics is not None:
            self.metrics.counter("priorityqueue.enqueued").inc()
        key = self.policy(level, self._observed.get(fname, 0), next(self._seq))
        heapq.heappush(self._unarrived, (time, next(self._seq), key, fname, level))
        self._enqueue_times.append(time)
        if self.tracer is not None:
            self.tracer.instant(
                f"enqueue {fname} L{level}",
                "queue",
                time,
                category="enqueue",
                args={"function": fname, "level": level},
            )

    def requested_level(self, fname: str) -> int:
        return self._requested_level.get(fname, -1)

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------
    def _dispatch_one(self, horizon: Optional[float]) -> bool:
        """Dispatch a single request if one can start by ``horizon``.

        The dispatch moment is when the earliest thread frees (or the
        earliest pending arrival, if later); the request chosen is the
        highest-priority one arrived by that moment.  No new arrivals
        can occur meanwhile — the execution thread is the only producer
        and it is stalled or between calls while this runs.

        Returns:
            True if a request was dispatched.
        """
        if not self._unarrived and not self._ready:
            return False
        thread_free = self._threads[0][0]
        ready_arrivals = self._ready_arrivals
        done = self._done
        while ready_arrivals and ready_arrivals[0][1] in done:
            heapq.heappop(ready_arrivals)
        earliest_arrival = (
            ready_arrivals[0][0] if ready_arrivals else self._unarrived[0][0]
        )
        if self._unarrived and self._unarrived[0][0] < earliest_arrival:
            earliest_arrival = self._unarrived[0][0]
        dispatch_at = max(thread_free, earliest_arrival)
        if horizon is not None and dispatch_at > horizon:
            return False
        while self._unarrived and self._unarrived[0][0] <= dispatch_at:
            time, seq, key, f, lvl = heapq.heappop(self._unarrived)
            heapq.heappush(self._ready, (key, seq, time, f, lvl))
            heapq.heappush(ready_arrivals, (time, seq))
        # Highest-priority request that has arrived by dispatch_at.  The
        # ready root almost always qualifies (always, with one compiler
        # thread: the dispatch clock only moves forward); with several
        # threads a later dispatch moment can fall before the root's
        # arrival, and only then is the old linear scan + re-heapify
        # needed — ``priorityqueue.reheapifies`` counts exactly those.
        if self._ready[0][2] <= dispatch_at:
            chosen = heapq.heappop(self._ready)
        else:
            arrived = [item for item in self._ready if item[2] <= dispatch_at]
            chosen = min(arrived)
            self._ready.remove(chosen)
            heapq.heapify(self._ready)
            if self.metrics is not None:
                self.metrics.counter("priorityqueue.reheapifies").inc()
        done.add(chosen[1])
        if self.metrics is not None:
            self.metrics.counter("priorityqueue.dispatched").inc()
        _key, _seq, arrival, fname, level = chosen
        _free, tid = heapq.heappop(self._threads)
        c = self.instance.profiles[fname].compile_times[level]
        finish = dispatch_at + c
        heapq.heappush(self._threads, (finish, tid))
        self._dispatched.append(CompileTask(fname, level))
        self._finish_events.setdefault(fname, []).append((finish, level))
        if self.tracer is not None:
            self.tracer.span(
                f"compile {fname} L{level}",
                f"compiler-{tid}",
                dispatch_at,
                finish,
                category="compile",
                args={
                    "function": fname,
                    "level": level,
                    "queue_wait": dispatch_at - arrival,
                },
            )
        return True

    def _dispatch_until(self, horizon: Optional[float]) -> None:
        """Dispatch every request whose moment arrives by ``horizon``."""
        while self._dispatch_one(horizon):
            pass

    def _first_ready(self, fname: str) -> float:
        """Finish time of ``fname``'s earliest compile, dispatching only
        as far as needed (the caller guarantees a request exists)."""
        while fname not in self._finish_events:
            if not self._dispatch_one(None):  # pragma: no cover
                raise RuntimeError(f"no compile request for {fname!r}")
        return min(f for f, _lvl in self._finish_events[fname])

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def run(self) -> RuntimeRunResult:
        """Replay the call sequence under the priority queue."""
        self._reset()
        instance = self.instance
        scheme = self.scheme
        period = self.sample_period

        tracer = self.tracer
        invocations: Dict[str, int] = {}
        samples: Dict[str, int] = {}
        samples_taken = 0
        calls_at_level: Dict[int, int] = {}
        total_bubble = 0.0
        total_exec = 0.0
        t = 0.0
        # Index-based sampler ticks; see RuntimeSimulator.run.
        tick = 1

        for fname in instance.calls:
            invocation = invocations.get(fname, 0) + 1
            invocations[fname] = invocation
            self._observed[fname] = invocation
            if invocation == 1:
                self.enqueue(fname, scheme.initial_level(fname), t)
            scheme.on_call_start(self, fname, invocation, t)

            self._dispatch_until(t)
            first_ready = self._first_ready(fname)
            start = t if t >= first_ready else first_ready
            # Dispatch anything whose moment arrives during the bubble.
            self._dispatch_until(start)
            total_bubble += start - t
            best = -1
            for finish_time, level in self._finish_events[fname]:
                if finish_time <= start and level > best:
                    best = level
            exec_time = instance.profiles[fname].exec_times[best]
            finish = start + exec_time
            total_exec += exec_time
            calls_at_level[best] = calls_at_level.get(best, 0) + 1
            if tracer is not None:
                if start > t:
                    tracer.span(
                        "bubble", "execute", t, start,
                        category="bubble",
                        args={"function": fname, "bubble": start - t},
                    )
                    tracer.counter("bubble_total", "bubbles", start, total_bubble)
                tracer.span(
                    fname, "execute", start, finish,
                    category="call",
                    args={"level": best, "invocation": invocation},
                )

            if tick * period <= finish:
                if tick * period <= start:
                    k = int(start / period) + 1
                    while (k - 1) * period > start:
                        k -= 1
                    while k * period <= start:
                        k += 1
                    if k > tick:
                        tick = k
                t_tick = tick * period
                while t_tick <= finish:
                    ks = samples.get(fname, 0) + 1
                    samples[fname] = ks
                    samples_taken += 1
                    scheme.on_sample(self, fname, ks, t_tick)
                    if tracer is not None:
                        tracer.instant(
                            f"sample {fname}", "sampler", t_tick,
                            category="sample",
                            args={"function": fname, "k": ks},
                        )
                    tick += 1
                    t_tick = tick * period
            t = finish

        if self.metrics is not None:
            self.metrics.counter("priorityqueue.calls").inc(
                len(instance.calls)
            )
            self.metrics.counter("priorityqueue.samples").inc(samples_taken)
        return RuntimeRunResult(
            schedule=Schedule(tuple(self._dispatched)),
            enqueue_times=tuple(sorted(self._enqueue_times)),
            makespan=t,
            total_bubble_time=total_bubble,
            total_exec_time=total_exec,
            calls_at_level=calls_at_level,
            samples_taken=samples_taken,
        )


def run_with_policy(
    instance: OCSPInstance,
    scheme: RuntimeScheme,
    policy: str = "hotness",
    compile_threads: int = 1,
    sample_period: Optional[float] = None,
    tracer=None,
    metrics=None,
) -> RuntimeRunResult:
    """Convenience wrapper: replay ``instance`` under ``scheme`` with
    the given queue policy."""
    return PriorityRuntimeSimulator(
        instance,
        scheme,
        policy=policy,
        compile_threads=compile_threads,
        sample_period=sample_period,
        tracer=tracer,
        metrics=metrics,
    ).run()
