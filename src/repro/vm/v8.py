"""The V8 compilation-scheduling scheme (Section 6.2.4).

V8 (at the time of the paper) has two optimization levels: it compiles a
function at the low level at its first encounter and recompiles it at
the high level at its *second* invocation.  The paper applies this
scheme to the Java call sequences using the lowest two Jikes RVM levels
as V8's low/high pair; :func:`run_v8` accepts the (low, high) pair so
the same projection can be reproduced.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.model import OCSPInstance
from .runtime import RuntimeRunResult, RuntimeScheme, RuntimeSimulator

__all__ = ["V8Scheme", "run_v8"]


class V8Scheme(RuntimeScheme):
    """Count-based two-level promotion: low at call 1, high at call 2.

    Args:
        low: level used for the blocking first-encounter compile.
        high: level requested when the second invocation arrives.
    """

    def __init__(self, low: int = 0, high: int = 1):
        if high <= low:
            raise ValueError("high level must exceed low level")
        self.low = low
        self.high = high

    def initial_level(self, fname: str) -> int:
        return self.low

    def on_call_start(
        self,
        runtime: RuntimeSimulator,
        fname: str,
        invocation: int,
        time: float,
    ) -> None:
        if invocation == 2:
            prof = runtime.instance.profiles[fname]
            if self.high < prof.num_levels:
                runtime.enqueue(fname, self.high, time)


def run_v8(
    instance: OCSPInstance,
    levels: Tuple[int, int] = (0, 1),
    compile_threads: int = 1,
    sample_period: Optional[float] = None,
    tracer=None,
    faults=None,
) -> RuntimeRunResult:
    """Replay ``instance`` under the V8 scheme.

    Args:
        instance: the workload.
        levels: the (low, high) level pair; the paper uses the lowest
            two levels of the 4-level Jikes JIT.
        compile_threads: compiler threads serving the queue.
        sample_period: unused by the scheme itself (no sampler hooks)
            but kept for interface uniformity.
        tracer: optional :class:`repro.observability.Tracer` (or scope).
        faults: optional :class:`repro.faults.FaultInjector`; see
            :class:`~repro.vm.runtime.RuntimeSimulator`.
    """
    simulator = RuntimeSimulator(
        instance,
        V8Scheme(*levels),
        compile_threads=compile_threads,
        sample_period=sample_period,
        tracer=tracer,
        faults=faults,
    )
    return simulator.run()
