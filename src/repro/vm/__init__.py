"""Models of real runtime systems' compilation scheduling.

* :mod:`repro.vm.costbenefit` — cost-benefit models (default estimated
  vs oracle, Section 6.2.2);
* :mod:`repro.vm.runtime` — the reactive co-simulator (queue, sampler,
  compiler threads);
* :mod:`repro.vm.jikes` — the Jikes RVM adaptive scheme (Section 6.2.1);
* :mod:`repro.vm.v8` — the V8 count-based scheme (Section 6.2.4).
"""

from .costbenefit import (
    DEFAULT_ESTIMATION_ERROR,
    DEFAULT_HOTNESS_FLOOR,
    DEFAULT_HOTNESS_OPTIMISM,
    DEFAULT_HOTNESS_SIGMA,
    CostBenefitModel,
    EstimatedModel,
    OracleModel,
)
from .hotspot import DEFAULT_THRESHOLDS, TieredScheme, run_tiered
from .jikes import JikesScheme, run_jikes
from .priorityqueue import PRIORITY_POLICIES, PriorityRuntimeSimulator, run_with_policy
from .runtime import (
    RuntimeRunResult,
    RuntimeScheme,
    RuntimeSimulator,
    default_sample_period,
)
from .v8 import V8Scheme, run_v8

__all__ = [
    "CostBenefitModel",
    "EstimatedModel",
    "OracleModel",
    "DEFAULT_ESTIMATION_ERROR",
    "DEFAULT_HOTNESS_FLOOR",
    "DEFAULT_HOTNESS_OPTIMISM",
    "DEFAULT_HOTNESS_SIGMA",
    "RuntimeScheme",
    "RuntimeSimulator",
    "RuntimeRunResult",
    "default_sample_period",
    "JikesScheme",
    "TieredScheme",
    "run_tiered",
    "PriorityRuntimeSimulator",
    "run_with_policy",
    "PRIORITY_POLICIES",
    "DEFAULT_THRESHOLDS",
    "run_jikes",
    "V8Scheme",
    "run_v8",
]
