"""Event-driven co-simulation of an adaptive runtime system.

Real runtime systems do not plan a compilation schedule up front: they
*react*.  Methods are enqueued for baseline compilation when first
encountered, a sampler watches the running code, and recompilation
requests join a FIFO queue served by the compiler thread(s)
(Section 2).  The compilation order — and hence the make-span — emerges
from those reactions.

:class:`RuntimeSimulator` replays a call sequence through such a
reactive system.  A :class:`RuntimeScheme` decides *what* to enqueue
and *when* (Jikes RVM's sampling scheme and V8's count-based scheme are
provided); the simulator handles timing: queue waits, compiler-thread
occupancy, execution bubbles, and which compiled version each call
runs.  Enqueue times are monotone (they follow execution), so FIFO
dispatch can be resolved greedily with no global event queue.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.model import OCSPInstance
from ..core.schedule import CompileTask, Schedule

__all__ = [
    "RuntimeScheme",
    "RuntimeRunResult",
    "RuntimeSimulator",
    "default_sample_period",
]


def default_sample_period(instance: OCSPInstance, ticks: int = 1000) -> float:
    """A sampling period giving roughly ``ticks`` samples per run.

    Jikes RVM samples on a timer interrupt; in our abstract time units we
    size the period so a run sees on the order of ``ticks`` samples of
    level-0 execution.
    """
    total_base_exec = sum(
        instance.profiles[f].exec_times[0] for f in instance.calls
    )
    if total_base_exec <= 0:
        return 1.0
    return total_base_exec / ticks


@dataclass(frozen=True)
class RuntimeRunResult:
    """Outcome of a reactive-runtime replay.

    Attributes:
        schedule: *installed* compilation tasks in the order they were
            enqueued (equals dequeue order under FIFO dispatch).  Under
            fault injection, failed attempts occupy compiler threads
            but appear here only through their successful retry (at the
            level that actually installed).
        enqueue_times: when each task's originating request entered the
            queue.
        makespan: end of the last invocation.
        total_bubble_time: execution-thread waiting time.
        total_exec_time: sum of invocation run times.
        calls_at_level: histogram of the level each invocation ran at.
        samples_taken: total sampler ticks that observed a function
            (a duplicated tick counts twice, a dropped tick not at all).
        fault_summary: the fault injector's tally
            (:meth:`repro.faults.FaultInjector.summary`) when the run
            was fault-injected, else ``None``.
    """

    schedule: Schedule
    enqueue_times: Tuple[float, ...]
    makespan: float
    total_bubble_time: float
    total_exec_time: float
    calls_at_level: Dict[int, int]
    samples_taken: int
    fault_summary: Optional[Dict[str, object]] = None


class RuntimeScheme(ABC):
    """Policy half of the co-simulation: decides compile requests."""

    @abstractmethod
    def initial_level(self, fname: str) -> int:
        """Level of the blocking first-encounter compilation."""

    def on_call_start(
        self,
        runtime: "RuntimeSimulator",
        fname: str,
        invocation: int,
        time: float,
    ) -> None:
        """Hook at each invocation start (``invocation`` is 1-based)."""

    def on_sample(
        self, runtime: "RuntimeSimulator", fname: str, k: int, time: float
    ) -> None:
        """Hook at each sampler tick that observed ``fname`` running;
        ``k`` is the total samples of ``fname`` so far."""


class RuntimeSimulator:
    """Timing half of the co-simulation.

    Args:
        instance: the workload (true times are used for all timing).
        scheme: the reactive policy.
        compile_threads: number of compiler threads serving the queue.
        sample_period: sampler tick interval; ``None`` derives one via
            :func:`default_sample_period`.  Ticks that land while the
            execution thread is stalled observe nothing.
        faults: optional :class:`repro.faults.FaultInjector`.  Failed
            compiles retry one level lower (with the spec's bounded
            backoff) and fall back to the function's current tier when
            out of retries; a first-encounter chain that exhausts its
            retries takes a guaranteed baseline (level-0) compile so
            execution never deadlocks.  Sampler ticks may be dropped or
            duplicated.  A null injector (every rate zero) is
            normalized to ``None``, keeping zero-fault-rate runs
            bitwise equal to fault-free ones.
    """

    def __init__(
        self,
        instance: OCSPInstance,
        scheme: RuntimeScheme,
        compile_threads: int = 1,
        sample_period: Optional[float] = None,
        tracer=None,
        faults=None,
    ):
        if compile_threads < 1:
            raise ValueError("compile_threads must be >= 1")
        self.instance = instance
        self.scheme = scheme
        self.compile_threads = compile_threads
        self.sample_period = (
            sample_period
            if sample_period is not None
            else default_sample_period(instance)
        )
        if self.sample_period <= 0:
            raise ValueError("sample_period must be positive")
        self.tracer = tracer
        self.faults = None if faults is None or faults.null else faults
        # Mutable co-simulation state (reset by run()).  The heap holds
        # (free_time, thread_id) so traced compile spans land on the
        # right per-thread track; the multiset of free times — and hence
        # every start/finish — is the same as with bare floats.
        self._thread_free: List[Tuple[float, int]] = []
        self._tasks: List[CompileTask] = []
        self._enqueue_times: List[float] = []
        self._finish_events: Dict[str, List[Tuple[float, int]]] = {}
        self._requested_level: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # API for schemes
    # ------------------------------------------------------------------
    def enqueue(self, fname: str, level: int, time: float) -> None:
        """Submit a compilation request at ``time`` (FIFO dispatch).

        Ignores requests that do not raise the function's highest
        requested level (a pending or finished request already covers
        them), mirroring Jikes RVM's queue behaviour.
        """
        prof = self.instance.profiles[fname]
        if not 0 <= level < prof.num_levels:
            raise ValueError(f"level {level} out of range for {fname!r}")
        prev = self._requested_level.get(fname, -1)
        if level <= prev:
            return
        self._requested_level[fname] = level
        if self.faults is not None:
            self._enqueue_faulty(fname, level, time, prof)
            return
        start_free, tid = heapq.heappop(self._thread_free)
        start = start_free if start_free > time else time
        finish = start + prof.compile_times[level]
        heapq.heappush(self._thread_free, (finish, tid))
        self._tasks.append(CompileTask(fname, level))
        self._enqueue_times.append(time)
        self._finish_events.setdefault(fname, []).append((finish, level))
        if self.tracer is not None:
            self.tracer.instant(
                f"enqueue {fname} L{level}",
                "queue",
                time,
                category="enqueue",
                args={"function": fname, "level": level},
            )
            self.tracer.span(
                f"compile {fname} L{level}",
                f"compiler-{tid}",
                start,
                finish,
                category="compile",
                args={
                    "function": fname,
                    "level": level,
                    "queue_wait": start - time,
                },
            )

    def _enqueue_faulty(self, fname: str, level: int, time: float, prof) -> None:
        """The degradation chain of one request under fault injection.

        Attempt the requested level; on failure retry one level lower
        after the spec's (doubling) backoff, up to ``retries`` retries.
        Failed attempts still occupy their compiler thread — that is
        the cost being modelled.  A chain that runs out of retries
        falls back to the function's current tier (no install); on a
        *first encounter* (nothing installed yet) it instead takes one
        guaranteed baseline compile at level 0 — the fail-safe tier a
        production JIT's interpreter/baseline compiler provides — so
        every called function keeps at least one installed version.
        """
        faults = self.faults
        spec = faults.spec
        events = self._finish_events.get(fname)
        must_install = events is None
        achieved = max(lvl for _, lvl in events) if events else -1
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"enqueue {fname} L{level}",
                "queue",
                time,
                category="enqueue",
                args={"function": fname, "level": level},
            )
        lvl = level
        release = time
        attempt = 1
        while True:
            if not must_install and lvl <= achieved:
                # Degraded below what is already installed (or pending):
                # keep running at the current tier.
                faults.note_fallback()
                if tracer is not None:
                    tracer.instant(
                        f"fallback {fname}",
                        "queue",
                        release,
                        category="fault",
                        args={"function": fname, "kept_level": achieved},
                    )
                return
            start_free, tid = heapq.heappop(self._thread_free)
            start = start_free if start_free > release else release
            factor = faults.compile_time_factor(fname, lvl, attempt)
            c = prof.compile_times[lvl]
            if factor != 1.0:
                c *= factor
            finish = start + c
            heapq.heappush(self._thread_free, (finish, tid))
            # The guaranteed fail-safe: a first-encounter chain past its
            # retry budget compiles at level 0 and cannot fail.
            guaranteed = must_install and attempt > spec.retries and lvl == 0
            failed = not guaranteed and faults.compile_fails(fname, lvl, attempt)
            if tracer is not None:
                tracer.span(
                    f"compile {fname} L{lvl}",
                    f"compiler-{tid}",
                    start,
                    finish,
                    category="compile",
                    args={
                        "function": fname,
                        "level": lvl,
                        "queue_wait": start - release,
                        "attempt": attempt,
                        "status": "failed" if failed else "ok",
                    },
                )
            if not failed:
                if must_install and attempt > spec.retries:
                    faults.note_forced_install()
                self._tasks.append(CompileTask(fname, lvl))
                self._enqueue_times.append(time)
                self._finish_events.setdefault(fname, []).append((finish, lvl))
                return
            faults.note_wasted(c)
            if tracer is not None:
                tracer.instant(
                    f"compile-fail {fname} L{lvl}",
                    f"compiler-{tid}",
                    finish,
                    category="fault",
                    args={"function": fname, "level": lvl, "attempt": attempt},
                )
            if attempt > spec.retries and not must_install:
                faults.note_fallback()
                return
            if attempt <= spec.retries:
                faults.note_retry()
                lvl = max(0, lvl - 1)
            else:
                lvl = 0  # next round is the guaranteed fail-safe
            if spec.backoff > 0.0:
                release = finish + spec.backoff * (2 ** (attempt - 1))
            else:
                release = finish
            attempt += 1

    def requested_level(self, fname: str) -> int:
        """Highest level requested so far for ``fname`` (-1 if none)."""
        return self._requested_level.get(fname, -1)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def run(self) -> RuntimeRunResult:
        """Replay the call sequence; returns timings and the emergent
        compilation schedule."""
        self._thread_free = [(0.0, tid) for tid in range(self.compile_threads)]
        heapq.heapify(self._thread_free)
        self._tasks = []
        self._enqueue_times = []
        self._finish_events = {}
        self._requested_level = {}

        instance = self.instance
        scheme = self.scheme
        period = self.sample_period
        tracer = self.tracer

        invocations: Dict[str, int] = {}
        samples: Dict[str, int] = {}
        samples_taken = 0
        calls_at_level: Dict[int, int] = {}
        total_bubble = 0.0
        total_exec = 0.0
        t = 0.0
        # Sampler tick ``i`` fires at ``i * period`` (i >= 1).  Indexing
        # ticks (rather than accumulating ``next_tick += period``) lets
        # non-observing ticks — bubbles, stretches between calls — be
        # skipped arithmetically in O(1) instead of looped over.
        tick = 1

        for fname in instance.calls:
            invocation = invocations.get(fname, 0) + 1
            invocations[fname] = invocation
            if invocation == 1:
                # First encounter: request the baseline compilation now.
                self.enqueue(fname, scheme.initial_level(fname), t)
            scheme.on_call_start(self, fname, invocation, t)

            events = self._finish_events[fname]
            first_ready = events[0][0]
            start = t if t >= first_ready else first_ready
            total_bubble += start - t
            best = -1
            for finish_time, level in events:
                if finish_time <= start and level > best:
                    best = level
            exec_time = instance.profiles[fname].exec_times[best]
            finish = start + exec_time
            total_exec += exec_time
            calls_at_level[best] = calls_at_level.get(best, 0) + 1
            if tracer is not None:
                if start > t:
                    tracer.span(
                        "bubble", "execute", t, start,
                        category="bubble",
                        args={"function": fname, "bubble": start - t},
                    )
                    tracer.counter("bubble_total", "bubbles", start, total_bubble)
                tracer.span(
                    fname, "execute", start, finish,
                    category="call",
                    args={"level": best, "invocation": invocation},
                )

            # Sampler ticks: those inside (start, finish] observe fname;
            # ticks inside the bubble observe a stalled thread and are
            # jumped over without iterating (the former per-period walk
            # made long bubbles O(duration / period)).
            if tick * period <= finish:
                if tick * period <= start:
                    # First tick strictly after `start`, computed
                    # arithmetically; the two nudge loops absorb float
                    # rounding of the division and run O(1) times.
                    k = int(start / period) + 1
                    while (k - 1) * period > start:
                        k -= 1
                    while k * period <= start:
                        k += 1
                    if k > tick:
                        tick = k
                t_tick = tick * period
                faults = self.faults
                while t_tick <= finish:
                    if faults is not None and faults.drop_tick(tick):
                        if tracer is not None:
                            tracer.instant(
                                f"tick-drop {fname}", "sampler", t_tick,
                                category="fault",
                                args={"function": fname, "tick": tick},
                            )
                        tick += 1
                        t_tick = tick * period
                        continue
                    deliveries = (
                        2
                        if faults is not None and faults.duplicate_tick(tick)
                        else 1
                    )
                    for _ in range(deliveries):
                        ks = samples.get(fname, 0) + 1
                        samples[fname] = ks
                        samples_taken += 1
                        scheme.on_sample(self, fname, ks, t_tick)
                        if tracer is not None:
                            tracer.instant(
                                f"sample {fname}", "sampler", t_tick,
                                category="sample",
                                args={"function": fname, "k": ks},
                            )
                    tick += 1
                    t_tick = tick * period
            t = finish

        return RuntimeRunResult(
            schedule=Schedule(tuple(self._tasks)),
            enqueue_times=tuple(self._enqueue_times),
            makespan=t,
            total_bubble_time=total_bubble,
            total_exec_time=total_exec,
            calls_at_level=calls_at_level,
            samples_taken=samples_taken,
            fault_summary=(
                self.faults.summary() if self.faults is not None else None
            ),
        )
