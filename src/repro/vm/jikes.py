"""The Jikes RVM compilation-scheduling scheme (Sections 2, 6.2.1).

The default scheme of Jikes RVM's adaptive optimization system:

* at the first invocation of a method, compile it at the lowest level;
* a timer-based sampler observes the running method; ``k`` counts how
  often a method has been seen on the call stack since program start;
* after every sampling period the runtime checks whether the sampled
  method would benefit from recompilation: with ``l`` its current level
  and ``m = argmin_{j>l} (e_j*k + c_j)``, recompile at ``m`` iff
  ``e_m*k + c_m < e_l*k``, using the cost-benefit model's estimates;
* requests join a FIFO queue served by the compilation thread.
"""

from __future__ import annotations

from typing import Optional

from ..core.model import OCSPInstance
from .costbenefit import CostBenefitModel, EstimatedModel
from .runtime import RuntimeRunResult, RuntimeScheme, RuntimeSimulator

__all__ = ["JikesScheme", "run_jikes"]


class JikesScheme(RuntimeScheme):
    """Reactive policy of the Jikes RVM adaptive system.

    Args:
        model: the cost-benefit model supplying time estimates (the
            default :class:`~repro.vm.costbenefit.EstimatedModel` for
            Figure 5, :class:`~repro.vm.costbenefit.OracleModel` for
            Figure 6).
    """

    def __init__(self, model: CostBenefitModel):
        self.model = model

    def initial_level(self, fname: str) -> int:
        return 0

    def on_sample(
        self, runtime: RuntimeSimulator, fname: str, k: int, time: float
    ) -> None:
        current = runtime.requested_level(fname)
        if current < 0:  # sampled before any request: cannot happen mid-call
            return
        future = self.model.estimated_future_calls(
            fname, current, k, runtime.sample_period
        )
        target = self.model.recompilation_level(fname, current, future)
        if target is not None:
            runtime.enqueue(fname, target, time)


def run_jikes(
    instance: OCSPInstance,
    model: Optional[CostBenefitModel] = None,
    compile_threads: int = 1,
    sample_period: Optional[float] = None,
    model_seed: int = 0,
    tracer=None,
    faults=None,
) -> RuntimeRunResult:
    """Replay ``instance`` under the Jikes RVM default scheme.

    Args:
        instance: the workload.
        model: cost-benefit model; defaults to the noisy
            :class:`EstimatedModel` (the paper's "default cost-benefit
            model").
        compile_threads: compiler threads serving the queue.
        sample_period: sampler interval (``None`` → derived).
        model_seed: seed for the default model's estimation noise.
        tracer: optional :class:`repro.observability.Tracer` (or scope).
        faults: optional :class:`repro.faults.FaultInjector`; see
            :class:`~repro.vm.runtime.RuntimeSimulator`.
    """
    if model is None:
        model = EstimatedModel(instance, seed=model_seed)
    simulator = RuntimeSimulator(
        instance,
        JikesScheme(model),
        compile_threads=compile_threads,
        sample_period=sample_period,
        tracer=tracer,
        faults=faults,
    )
    return simulator.run()
