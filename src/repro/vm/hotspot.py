"""A HotSpot-style tiered-compilation scheme (beyond the paper's two).

The paper evaluates Jikes RVM's sampling-driven scheme and V8's
count-based two-level scheme.  HotSpot-style tiering is the third
common design: invocation counters promote a method through tiers at
fixed thresholds (client compiler early, server compiler once hot).
Modeling it rounds out the comparison: threshold tiering reacts faster
than sampling but, like both, compiles in discovery order rather than
in a *planned* order — which is exactly the gap IAR exposes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.model import OCSPInstance
from .runtime import RuntimeRunResult, RuntimeScheme, RuntimeSimulator

__all__ = ["TieredScheme", "run_tiered", "DEFAULT_THRESHOLDS"]

DEFAULT_THRESHOLDS: Tuple[int, ...] = (1, 50, 2000)
"""Invocation counts that trigger each level: level 0 at the 1st call,
level 1 at the 50th, level 2 at the 2000th (shaped after HotSpot's
Tier1/Tier3/Tier4 thresholds, scaled to trace lengths)."""


class TieredScheme(RuntimeScheme):
    """Counter-based tier promotion.

    Args:
        thresholds: ``thresholds[j]`` is the invocation count at which
            level ``j`` is requested; must be strictly increasing and
            start at 1 (the first call must produce runnable code).
            Levels beyond a function's profile are skipped.
    """

    def __init__(self, thresholds: Sequence[int] = DEFAULT_THRESHOLDS):
        thresholds = tuple(thresholds)
        if not thresholds or thresholds[0] != 1:
            raise ValueError("thresholds must start at 1 (first call compiles)")
        if list(thresholds) != sorted(set(thresholds)):
            raise ValueError("thresholds must be strictly increasing")
        self.thresholds = thresholds

    def initial_level(self, fname: str) -> int:
        return 0

    def on_call_start(
        self,
        runtime: RuntimeSimulator,
        fname: str,
        invocation: int,
        time: float,
    ) -> None:
        levels = runtime.instance.profiles[fname].num_levels
        for level, threshold in enumerate(self.thresholds):
            if level == 0 or level >= levels:
                continue
            if invocation == threshold:
                runtime.enqueue(fname, level, time)


def run_tiered(
    instance: OCSPInstance,
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
    compile_threads: int = 1,
    sample_period: Optional[float] = None,
    tracer=None,
) -> RuntimeRunResult:
    """Replay ``instance`` under the HotSpot-style tiered scheme."""
    simulator = RuntimeSimulator(
        instance,
        TieredScheme(thresholds),
        compile_threads=compile_threads,
        sample_period=sample_period,
        tracer=tracer,
    )
    return simulator.run()
