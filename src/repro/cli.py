"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's workflow:

* ``generate`` — produce a trace file (a Table-1 preset or a custom
  synthetic spec);
* ``schedule`` — run a scheduling algorithm on a trace, writing the
  schedule;
* ``evaluate`` — simulate a schedule against a trace (make-span,
  bubbles, normalized gap);
* ``diagnose`` — decompose a schedule's gap above the lower bound;
* ``trace`` — record a scheme's run as a Chrome trace-event JSON file
  (open it at https://ui.perfetto.dev or ``chrome://tracing``);
* ``study`` — regenerate the paper's tables and figures, optionally
  through the content-addressed result cache (``--cache-dir``) with
  crash-resume (``--resume``), per-unit timeouts, and bounded retries;
* ``cache`` — inspect and maintain a result cache
  (``stats``/``gc``/``clear``);
* ``bench`` — the continuous-performance harness: ``run`` a benchmark
  suite (wall time + deterministic work counters), ``compare`` fresh
  results against committed ``BENCH_*.json`` baselines (counters gate
  exactly, timing drift warns), ``report`` renders Markdown/JSON;
* ``faults`` — fault-injection studies: ``sweep`` produces degradation
  curves (make-span vs fault rate per scheme; see
  ``docs/ROBUSTNESS.md``), and ``--faults SPEC`` on
  ``evaluate``/``diagnose``/``study`` runs those commands degraded;
* ``serve`` — the multi-tenant online decision service: ``run``
  starts the asyncio JSONL server (with the wall-clock telemetry plane
  and ``/healthz``/``/statusz``/``/metricsz``/``/flightz`` admin
  endpoints on the same port), ``replay`` load-drives it with
  interleaved DaCapo traces and reports decisions/sec + p99 latency
  (deterministic decision logs, bitwise identical with telemetry on or
  off; see ``docs/SERVICE.md``);
* ``top`` — one-shot or ``--interval`` terminal view of a live
  server's ``/statusz``: uptime, queue depth, per-tenant SLOs;
* ``telemetry`` — ``inspect`` reads a flight-recorder bundle (the
  black-box dump a server writes on crash, SIGUSR1, ``/flightz/dump``,
  or drain);
* ``instances`` — the versioned on-disk instance format:
  ``export`` writes a trace/benchmark as a canonical bundle,
  ``import`` builds bundles from external sources (V8 ``--trace-opt``
  logs, JVM ``-XX:+PrintCompilation`` logs, SCC due-date instance
  sets), ``validate`` fully checks bundles (format version, schema,
  content fingerprint), ``list`` summarizes a bundle directory; the
  ``--instance`` flag on ``evaluate``/``diagnose``/``study``/``faults
  sweep`` runs those commands on a bundle (see ``docs/INSTANCES.md``);
* ``walkthrough`` — the Figures 1–2 worked example.

Malformed inputs (bad trace/schedule files, bad fault specs) exit with
code 2 and a one-line ``repro: error: ...`` diagnostic; pass ``--debug``
before the subcommand to see the full traceback instead.

Every command reads/writes the JSON formats of
:mod:`repro.workloads.traces`, so pipelines compose:

.. code-block:: console

   $ python -m repro generate --benchmark antlr --scale 0.01 -o antlr.json
   $ python -m repro schedule antlr.json --algorithm iar -o antlr.iar.json
   $ python -m repro evaluate antlr.json antlr.iar.json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional, Sequence

from .analysis import (
    astar_scaling,
    average_row,
    diagnose,
    format_errors,
    format_figure,
    format_table,
    run_parallel,
    table1,
)
from .core import (
    Schedule,
    greedy_budget_schedule,
    hotness_first_schedule,
    iar_schedule,
    lower_bound,
    ondemand_promotion_schedule,
    simulate,
)
from .core.engine import ENGINES, set_default_engine
from .core.single_level import base_level_schedule, optimizing_level_schedule
from .faults.spec import DIMENSIONS, FaultSpecError
from .vm.jikes import run_jikes
from .vm.v8 import run_v8
from .workloads import WorkloadSpec, dacapo, generate, traces

__all__ = ["main", "build_parser"]

_FIGURE_SERIES = ["lower_bound", "iar", "default", "base_level", "optimizing_level"]

# One seed contract for every command (the historical split — ``trace``
# defaulting to None but ``generate`` to 0, with an explicit 0 silently
# coerced to the preset default — is documented and tested away):
# omitted → the per-benchmark stable constant for Table 1 presets and 0
# for synthetic specs; an explicit integer (including 0) is always used
# as given.
_SEED_HELP = (
    "RNG seed; omitted = per-benchmark stable default (0 for synthetic "
    "specs), and an explicit 0 is honored as 0"
)


_ENGINE_HELP = (
    "make-span engine: 'reference' (pure-Python oracle), 'fast' "
    "(incremental), or 'vector' (numpy structure-of-arrays; falls back "
    "to pure Python without numpy) — all bitwise identical (default: "
    "$REPRO_ENGINE or the command's historical engine)"
)


def _add_engine_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--engine", choices=ENGINES, default=None, help=_ENGINE_HELP)


def _apply_engine(args: argparse.Namespace) -> None:
    """Make ``--engine`` the session default, inherited by worker
    processes through ``$REPRO_ENGINE``."""
    engine = getattr(args, "engine", None)
    if engine is not None:
        set_default_engine(engine)
        os.environ["REPRO_ENGINE"] = engine


def _schedulers() -> Dict[str, Callable]:
    return {
        "iar": iar_schedule,
        "base": base_level_schedule,
        "opt": optimizing_level_schedule,
        "hotness": hotness_first_schedule,
        "budget": greedy_budget_schedule,
        "ondemand": ondemand_promotion_schedule,
        "jikes": lambda inst: run_jikes(inst).schedule,
        "v8": lambda inst: run_v8(inst).schedule,
    }


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and ``--help`` docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Compilation scheduling for JIT-based runtime systems "
            "(ASPLOS 2014 reproduction)"
        ),
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="show full tracebacks instead of one-line error diagnostics",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a trace file")
    gen.add_argument("--benchmark", choices=sorted(dacapo.BENCHMARKS), default=None)
    gen.add_argument("--scale", type=float, default=0.01)
    gen.add_argument("--functions", type=int, default=100)
    gen.add_argument("--calls", type=int, default=10_000)
    gen.add_argument("--levels", type=int, default=4)
    gen.add_argument("--seed", type=int, default=None, help=_SEED_HELP)
    gen.add_argument("-o", "--output", required=True)

    sch = sub.add_parser("schedule", help="schedule a trace")
    sch.add_argument("trace")
    sch.add_argument(
        "--algorithm", choices=sorted(_schedulers()), default="iar"
    )
    sch.add_argument("-o", "--output", required=True)

    ev = sub.add_parser("evaluate", help="simulate a schedule on a trace")
    ev.add_argument("trace", nargs="?", default=None)
    ev.add_argument("schedule")
    ev.add_argument(
        "--instance",
        default=None,
        metavar="BUNDLE",
        help=(
            "evaluate against an instance bundle directory instead of a "
            "trace file (prints due-date objectives when the bundle "
            "carries due dates)"
        ),
    )
    ev.add_argument(
        "--threads",
        type=int,
        default=None,
        help=(
            "compile threads (default: the bundle's machine environment "
            "with --instance, else 1)"
        ),
    )
    _add_engine_arg(ev)
    ev.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "also simulate under this fault spec (key=value,... — see "
            "docs/ROBUSTNESS.md) and report the degradation"
        ),
    )

    diag = sub.add_parser("diagnose", help="decompose a schedule's gap")
    diag.add_argument("trace", nargs="?", default=None)
    diag.add_argument("schedule")
    diag.add_argument(
        "--instance",
        default=None,
        metavar="BUNDLE",
        help="diagnose against an instance bundle directory instead of a "
        "trace file",
    )
    diag.add_argument("--top", type=int, default=10)
    _add_engine_arg(diag)
    diag.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "also attribute the extra gap a fault spec induces "
            "(key=value,... — see docs/ROBUSTNESS.md)"
        ),
    )
    diag.add_argument(
        "--intervals",
        type=int,
        default=0,
        help="also attribute the gap to N equal timeline slices",
    )
    diag.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help=(
            "write the full decomposition (all functions and intervals, "
            "not just --top) as JSON to PATH ('-' = stdout, suppressing "
            "the tables)"
        ),
    )

    tr = sub.add_parser(
        "trace", help="record a scheme's run as a Chrome trace file"
    )
    tr.add_argument("benchmark", choices=sorted(dacapo.BENCHMARKS))
    tr.add_argument(
        "--scheme", choices=["iar", "jikes", "v8"], default="iar"
    )
    tr.add_argument("--scale", type=float, default=0.01)
    tr.add_argument("--seed", type=int, default=None, help=_SEED_HELP)
    tr.add_argument("--threads", type=int, default=1)
    tr.add_argument(
        "--format", choices=["chrome", "jsonl"], default="chrome"
    )
    tr.add_argument("-o", "--out", required=True)

    study = sub.add_parser("study", help="regenerate the paper's evaluation")
    study.add_argument("--scale", type=float, default=0.01)
    study.add_argument(
        "--instance",
        default=None,
        metavar="BUNDLE",
        help=(
            "run the figure/table drivers on this instance bundle instead "
            "of the DaCapo suite (the preset-only table1/astar sections "
            "are skipped)"
        ),
    )
    _add_engine_arg(study)
    study.add_argument(
        "--figure",
        choices=["table1", "fig5", "fig6", "fig7", "fig8", "table2", "astar", "all"],
        default="all",
    )
    study.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the figure/table drivers (benchmarks fan "
            "out per process; results are identical to --jobs 1); "
            "0 = one per CPU"
        ),
    )
    study.add_argument(
        "--trace-dir",
        default=None,
        help=(
            "also dump a Chrome trace file per benchmark for the "
            "figure 5/6/8 runs into this directory"
        ),
    )
    study.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "run the figure 5/6/8 schemes degraded under this fault "
            "spec (key=value,... — see docs/ROBUSTNESS.md)"
        ),
    )
    study.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "content-addressed result store: (driver, benchmark) cells "
            "already in the cache are served from it, newly computed "
            "rows are written back"
        ),
    )
    study.add_argument(
        "--resume",
        action="store_true",
        help=(
            "reuse completed units from the previous run's checkpoint "
            "journal in --cache-dir (a killed run continues where it "
            "stopped)"
        ),
    )
    study.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-unit wall-clock budget in seconds (parallel runs only)",
    )
    study.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="failed/timed-out attempts retried per unit (default: 2)",
    )
    study.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any (driver, benchmark) unit failed",
    )
    study.add_argument(
        "--json-out",
        default=None,
        help=(
            "also write all rows, errors, unit statuses, and the runner "
            "metrics snapshot (with histogram p50/p90/p99) as JSON"
        ),
    )

    bench = sub.add_parser(
        "bench", help="run/compare the continuous-performance benchmarks"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    brun = bench_sub.add_parser(
        "run", help="run a suite, writing one BENCH_<name>.json per benchmark"
    )
    brun.add_argument("--suite", default="quick")
    _add_engine_arg(brun)
    brun.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale (default: $REPRO_SCALE or 0.01)",
    )
    brun.add_argument(
        "--repeats", type=int, default=None,
        help="timed repeats per benchmark (default: per-benchmark spec)",
    )
    brun.add_argument(
        "--warmups", type=int, default=None,
        help="untimed warmups per benchmark (default: per-benchmark spec)",
    )
    brun.add_argument(
        "--out",
        default="benchmarks/results",
        help="directory for fresh result documents",
    )
    brun.add_argument(
        "--update-baselines",
        action="store_true",
        help="write into --baseline-dir instead (refreshing the committed "
        "baselines after an intentional change)",
    )
    brun.add_argument("--baseline-dir", default="benchmarks/baselines")
    for action, helptext in (
        ("compare", "gate fresh results against the committed baselines"),
        ("report", "render a comparison without gating (always exits 0)"),
    ):
        bcmp = bench_sub.add_parser(action, help=helptext)
        bcmp.add_argument("--results", default="benchmarks/results")
        bcmp.add_argument("--baselines", default="benchmarks/baselines")
        bcmp.add_argument(
            "--json", default=None, metavar="PATH",
            help="write the machine-readable report to PATH",
        )
        bcmp.add_argument(
            "--markdown", default=None, metavar="PATH",
            help="write the Markdown report to PATH ('-' = stdout)",
        )

    faults = sub.add_parser(
        "faults", help="fault-injection and graceful-degradation studies"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    fsw = faults_sub.add_parser(
        "sweep",
        help="degradation curves: normalized make-span vs fault rate",
    )
    fsw.add_argument("--scale", type=float, default=0.01)
    fsw.add_argument(
        "--instance",
        default=None,
        metavar="BUNDLE",
        help="sweep this instance bundle instead of the DaCapo suite",
    )
    fsw.add_argument(
        "--rates",
        default="0,0.05,0.1,0.2,0.4",
        help="comma-separated fault rates to sweep",
    )
    fsw.add_argument(
        "--dimension",
        choices=list(DIMENSIONS),
        default="compile_fail",
        help="the fault dimension the sweep varies",
    )
    fsw.add_argument(
        "--spec",
        default="",
        help=(
            "base fault spec (key=value,...); the swept dimension's rate "
            "is overridden point by point, everything else stays fixed"
        ),
    )
    fsw.add_argument(
        "--seed",
        type=int,
        default=None,
        help="fault seed (overrides the base spec's seed)",
    )
    fsw.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (benchmarks fan out; 0 = one per CPU)",
    )
    fsw.add_argument("--cache-dir", default=None)
    fsw.add_argument("--resume", action="store_true")
    fsw.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any benchmark unit failed",
    )
    fsw.add_argument(
        "--json-out",
        default=None,
        help="write rows and curves as deterministic JSON",
    )

    serve = sub.add_parser(
        "serve", help="the multi-tenant online decision service"
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)
    srun = serve_sub.add_parser(
        "run", help="start the asyncio JSONL decision server"
    )
    srun.add_argument("--host", default="127.0.0.1")
    srun.add_argument(
        "--port", type=int, default=0,
        help="listen port (default: 0 = kernel-assigned, printed on start)",
    )
    srun.add_argument(
        "--no-telemetry", action="store_true",
        help="disable the wall-clock telemetry plane (admin endpoints "
        "answer 409/empty; decision logs are bitwise identical either "
        "way)",
    )
    srun.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the final status (summary, SLOs, telemetry "
        "snapshot) as JSON when the server stops",
    )
    srep = serve_sub.add_parser(
        "replay",
        help="load-drive the service with interleaved DaCapo traces",
    )
    srep.add_argument(
        "--tenants", type=int, default=8,
        help="concurrent tenants (each replays its own DaCapo trace)",
    )
    srep.add_argument(
        "--events", type=int, default=1000,
        help="total call events across all tenants",
    )
    srep.add_argument("--scale", type=float, default=0.02)
    srep.add_argument(
        "--seed", type=int, default=0,
        help="stream seed: same seed, same event interleave, same "
        "decision log — bitwise",
    )
    srep.add_argument(
        "--mode", choices=["inproc", "socket"], default="inproc",
        help="'inproc' replays straight through the engine; 'socket' "
        "drives a real loopback server (same decision log, bitwise)",
    )
    srep.add_argument(
        "--events-file", default=None, metavar="PATH",
        help="replay this JSONL event file instead of generating one",
    )
    srep.add_argument(
        "--save-events", default=None, metavar="PATH",
        help="also write the generated event stream as JSONL",
    )
    srep.add_argument(
        "--decisions-out", default=None, metavar="PATH",
        help="write the decision log (canonical JSONL, sorted by seq); "
        "doubles as the resume journal",
    )
    srep.add_argument(
        "--resume", action="store_true",
        help="keep decisions already journaled in --decisions-out and "
        "emit only the missing ones (no duplicates; final file bitwise "
        "equals an uninterrupted run)",
    )
    srep.add_argument(
        "--window", type=int, default=32,
        help="socket mode: pipelined in-flight requests per tenant",
    )
    srep.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the replay report (rates, latency stats) as JSON",
    )
    srep.add_argument(
        "--telemetry", action="store_true",
        help="attach the wall-clock telemetry plane (per-tenant SLOs "
        "in the report; the decision log stays bitwise identical)",
    )
    for sp in (srun, srep):
        sp.add_argument(
            "--flight-dir", default=None, metavar="DIR",
            help="write flight-recorder bundles here (on crash, "
            "SIGUSR1, /flightz/dump, and drain); requires telemetry",
        )
        sp.add_argument(
            "--flight-capacity", type=int, default=256,
            help="flight-recorder ring size per shard (last N "
            "request+decision pairs)",
        )
        sp.add_argument(
            "--slo-window", type=float, default=60.0,
            help="sliding-window seconds for live per-tenant SLOs",
        )
        sp.add_argument(
            "--faults", default=None, metavar="SPEC",
            help="fault spec (key=value,...) injected on the serving "
            "path; zero-rate specs are bitwise equal to no spec",
        )
        sp.add_argument(
            "--shards", type=int, default=8,
            help="tenant-map shards (a scaling knob; never changes a "
            "decision)",
        )
        sp.add_argument(
            "--optimism", type=float, default=1.0,
            help="policy knob: predicted future calls per observed call",
        )
        sp.add_argument(
            "--max-functions", type=int, default=4096,
            help="per-tenant hotness budget (LRU-evicted beyond it)",
        )
        sp.add_argument(
            "--max-tenants", type=int, default=1024,
            help="per-shard tenant budget (LRU-evicted beyond it)",
        )
        sp.add_argument(
            "--no-decision-cache", action="store_true",
            help="disable the shared cross-tenant decision cache",
        )
        sp.add_argument(
            "--batch-max", type=int, default=64,
            help="decision requests served per batched round",
        )
        sp.add_argument(
            "--queue-limit", type=int, default=1024,
            help="bounded request queue (backpressure bound)",
        )
        sp.add_argument(
            "--admission-limit", type=int, default=4096,
            help="queued requests beyond which new ones are refused "
            "with a retryable 'overloaded' error",
        )

    top = sub.add_parser(
        "top",
        help="terminal view of a live server's /statusz (uptime, "
        "queue, per-tenant SLOs)",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, required=True)
    top.add_argument(
        "--interval", type=float, default=None, metavar="SECONDS",
        help="refresh every SECONDS (default: one shot)",
    )
    top.add_argument(
        "--count", type=int, default=0,
        help="with --interval: stop after N refreshes (0 = forever)",
    )
    top.add_argument(
        "--json", action="store_true",
        help="print the raw /statusz JSON instead of the table",
    )

    telemetry = sub.add_parser(
        "telemetry", help="read wall-clock telemetry artifacts"
    )
    telemetry_sub = telemetry.add_subparsers(
        dest="telemetry_command", required=True
    )
    tins = telemetry_sub.add_parser(
        "inspect",
        help="read a flight-recorder JSONL bundle (header, per-tenant "
        "and per-action tallies, most recent entries)",
    )
    tins.add_argument("path", help="a flight-*.jsonl bundle")
    tins.add_argument(
        "--last", type=int, default=10,
        help="show the last N entries (default 10; 0 = none)",
    )
    tins.add_argument(
        "--json", action="store_true",
        help="print the whole bundle as one JSON document",
    )

    cache = sub.add_parser(
        "cache", help="inspect/maintain a result cache directory"
    )
    cache.add_argument("action", choices=["stats", "gc", "clear"])
    cache.add_argument("--cache-dir", required=True)
    cache.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="gc: also drop entries older than this many days",
    )
    cache.add_argument(
        "--current-code-only",
        action="store_true",
        help="gc: also drop entries written under a different code-version salt",
    )

    imp = sub.add_parser(
        "import-trace", help="build a trace from a profiler call log + cost CSV"
    )
    imp.add_argument("call_log")
    imp.add_argument("cost_table")
    imp.add_argument("--name", default="imported")
    imp.add_argument("-o", "--output", required=True)

    inst = sub.add_parser(
        "instances", help="the versioned on-disk instance format"
    )
    inst_sub = inst.add_subparsers(dest="instances_command", required=True)
    iexp = inst_sub.add_parser(
        "export",
        help="write a trace/benchmark/bundle as a canonical bundle "
        "(byte-identical for identical content)",
    )
    iexp.add_argument(
        "source",
        nargs="?",
        default=None,
        help="a trace JSON file or an existing bundle to re-export",
    )
    iexp.add_argument(
        "--benchmark", choices=sorted(dacapo.BENCHMARKS), default=None
    )
    iexp.add_argument("--scale", type=float, default=0.01)
    iexp.add_argument("--seed", type=int, default=None, help=_SEED_HELP)
    iexp.add_argument(
        "--name", default=None, help="rename the exported instance"
    )
    iexp.add_argument("-o", "--output", required=True, metavar="DIR")
    iimp = inst_sub.add_parser(
        "import", help="build a bundle from an external workload source"
    )
    iimp.add_argument(
        "source", help="log file (v8/jvm) or SCC prefix/directory"
    )
    iimp.add_argument(
        "--format",
        dest="fmt",
        required=True,
        choices=["v8", "jvm", "scc"],
        help="source kind: V8 --trace-opt log, JVM -XX:+PrintCompilation "
        "log, or an SCC due-date instance set",
    )
    iimp.add_argument("--name", default=None, help="instance label")
    iimp.add_argument("-o", "--output", required=True, metavar="DIR")
    ival = inst_sub.add_parser(
        "validate",
        help="fully validate bundles (schema, monotone costs, counts, "
        "content fingerprint); exits 2 on the first problem",
    )
    ival.add_argument("paths", nargs="+", metavar="BUNDLE")
    ilist = inst_sub.add_parser(
        "list", help="summarize every bundle under a directory"
    )
    ilist.add_argument("root")
    ilist.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the summaries as JSON to PATH ('-' = stdout)",
    )

    sub.add_parser("walkthrough", help="the Figures 1-2 worked example")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.benchmark:
        # None → dacapo.load's per-benchmark stable constant; an
        # explicit seed (including 0) is passed through untouched.
        instance = dacapo.load(args.benchmark, scale=args.scale, seed=args.seed)
    else:
        seed = 0 if args.seed is None else args.seed
        spec = WorkloadSpec(
            name=f"cli-{seed}",
            num_functions=args.functions,
            num_calls=args.calls,
            num_levels=args.levels,
        )
        instance = generate(spec, seed=seed)
    traces.save(instance, args.output)
    print(
        f"wrote {args.output}: {instance.num_calls} calls over "
        f"{instance.num_functions} functions"
    )
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    instance = traces.load(args.trace)
    schedule = _schedulers()[args.algorithm](instance)
    traces.save_schedule(schedule, args.output)
    print(f"wrote {args.output}: {len(schedule)} compile tasks ({args.algorithm})")
    return 0


def _load_trace_or_bundle(args: argparse.Namespace, command: str):
    """Resolve the TRACE positional vs ``--instance`` into
    ``(instance, bundle-or-None)``; exactly one source must be given."""
    if (args.trace is None) == (args.instance is None):
        raise ValueError(
            f"{command}: give either a TRACE file or --instance BUNDLE "
            f"(exactly one)"
        )
    if args.instance is not None:
        from .instances import read_bundle

        bundle = read_bundle(args.instance)
        return bundle.instance, bundle
    return traces.load(args.trace), None


def _cmd_evaluate(args: argparse.Namespace) -> int:
    _apply_engine(args)
    instance, bundle = _load_trace_or_bundle(args, "evaluate")
    schedule = traces.load_schedule(args.schedule, instance=instance)
    threads = args.threads
    if threads is None:
        threads = bundle.compile_threads if bundle is not None else 1
    due = bundle.due_dates if bundle is not None else None
    result = simulate(
        instance,
        schedule,
        compile_threads=threads,
        engine=args.engine,
        record_timeline=due is not None,
    )
    lb = lower_bound(instance)
    print(f"make-span:        {result.makespan:.1f}")
    print(f"lower bound:      {lb:.1f}")
    print(f"normalized:       {result.makespan / lb:.3f}")
    print(f"bubbles:          {result.total_bubble_time:.1f}")
    print(f"execution:        {result.total_exec_time:.1f}")
    print(f"calls per level:  {dict(sorted(result.calls_at_level.items()))}")
    if due is not None:
        from .core import objectives_from_timeline

        obj = objectives_from_timeline(result, due)
        print()
        print(f"due-date objectives ({obj.num_jobs} dued functions):")
        print(f"  max tardiness:       {obj.max_tardiness:.1f}")
        print(f"  weighted tardiness:  {obj.total_weighted_tardiness:.1f}")
        print(f"  weighted completion: {obj.weighted_completion:.1f}")
        print(f"  late functions:      {obj.num_late} of {obj.num_jobs}")
    if args.faults is not None:
        from .faults import simulate_with_faults

        faulted, plan = simulate_with_faults(
            instance, schedule, args.faults,
            compile_threads=threads, validate=False,
            engine=args.engine,
        )
        print()
        print(f"with faults ({args.faults}):")
        print(f"  make-span:      {faulted.makespan:.1f}")
        print(f"  normalized:     {faulted.makespan / lb:.3f}")
        print(
            f"  degradation:    {faulted.makespan / result.makespan:.3f}x "
            f"(+{faulted.makespan - result.makespan:.1f})"
        )
        summary = plan.summary()
        print(
            f"  faults:         {plan.failures} failed attempts, "
            f"{plan.retries} retries, {plan.fallbacks} fallbacks, "
            f"{plan.forced_installs} forced installs, {plan.stalls} stalls"
        )
        print(
            f"  wasted compile: {summary['wasted_compile_time']:.1f}"
        )
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    _apply_engine(args)
    instance, _bundle = _load_trace_or_bundle(args, "diagnose")
    schedule = traces.load_schedule(args.schedule, instance=instance)
    report = diagnose(instance, schedule, intervals=args.intervals)
    if args.json is not None:
        import json as _json

        text = _json.dumps(report.as_dict(), indent=2)
        if args.json == "-":
            print(text)
            return 0
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.json}")
    print(f"make-span {report.makespan:.1f} = lower bound {report.lower_bound:.1f}"
          f" + bubbles {report.bubbles:.1f}"
          f" + pre-upgrade excess {report.excess_before_upgrade:.1f}"
          f" + never-upgraded excess {report.excess_never_upgraded:.1f}")
    print()
    print(format_table(report.rows(args.top), title="worst offenders"))
    if report.per_interval:
        print()
        print(format_table(report.interval_rows(), title="gap by interval"))
    if args.faults is not None:
        from .faults import simulate_with_faults

        faulted, plan = simulate_with_faults(
            instance, schedule, args.faults, validate=False
        )
        fault_gap = faulted.makespan - report.makespan
        summary = plan.summary()
        print()
        print(f"fault attribution ({args.faults}):")
        print(f"  fault-free make-span: {report.makespan:.1f}")
        print(f"  faulted make-span:    {faulted.makespan:.1f}")
        print(f"  fault-induced gap:    {fault_gap:.1f}")
        print(
            f"  events: {plan.failures} failed attempts, {plan.retries} "
            f"retries, {plan.fallbacks} fallbacks, {plan.forced_installs} "
            f"forced installs, {plan.stalls} stalls"
        )
        print(
            f"  wasted compile time:  {summary['wasted_compile_time']:.1f}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .analysis import format_trace_summary
    from .observability import Tracer, write_chrome_trace, write_jsonl

    instance = dacapo.load(args.benchmark, scale=args.scale, seed=args.seed)
    tracer = Tracer()
    if args.scheme == "iar":
        schedule = iar_schedule(instance)
        result = simulate(
            instance,
            schedule,
            compile_threads=args.threads,
            validate=False,
            tracer=tracer,
        )
        makespan = result.makespan
    elif args.scheme == "jikes":
        makespan = run_jikes(
            instance, compile_threads=args.threads, tracer=tracer
        ).makespan
    else:  # v8
        makespan = run_v8(
            instance, compile_threads=args.threads, tracer=tracer
        ).makespan
    if args.format == "chrome":
        count = write_chrome_trace(tracer, args.out)
    else:
        count = write_jsonl(tracer, args.out)
    print(format_trace_summary(tracer))
    print(f"make-span: {makespan:.1f}")
    print(f"wrote {args.out}: {count} events ({args.format})")
    return 0


_STUDY_DRIVERS = {
    "fig5": ("figure5", "Figure 5"),
    "fig6": ("figure6", "Figure 6"),
    "fig7": ("figure7", "Figure 7"),
    "fig8": ("figure8", "Figure 8"),
    "table2": ("table2", "Table 2"),
}


def _cmd_study(args: argparse.Namespace) -> int:
    _apply_engine(args)
    wanted = args.figure
    jobs = None if args.jobs == 0 else args.jobs
    run = None
    registry = None
    bundle = None
    if args.instance is not None:
        from .instances import read_bundle

        bundle = read_bundle(args.instance)
        if wanted in ("table1", "astar"):
            raise ValueError(
                f"study: --figure {wanted} uses the Table 1 presets and "
                f"cannot run on --instance"
            )
    if wanted in ("table1", "all") and bundle is None:
        print(format_table(table1(scale=args.scale), title="Table 1", precision=1))
        print()
    if wanted in _STUDY_DRIVERS or wanted == "all":
        if bundle is not None:
            suite = {bundle.name: bundle.instance}
        else:
            suite = dacapo.load_suite(scale=args.scale)
        keys = list(_STUDY_DRIVERS) if wanted == "all" else [wanted]
        drivers = [_STUDY_DRIVERS[key][0] for key in keys]
        driver_kwargs: Dict[str, Dict[str, object]] = {}
        for name in ("figure5", "figure6", "figure8"):
            if name not in drivers:
                continue
            kwargs: Dict[str, object] = {}
            if args.trace_dir is not None:
                kwargs["trace_dir"] = args.trace_dir
            if args.faults is not None:
                # Canonicalize up front: parse errors surface before any
                # work, and the spec fingerprints stably in the cache.
                from .faults import parse_fault_spec

                kwargs["faults"] = parse_fault_spec(args.faults).canonical()
            if kwargs:
                driver_kwargs[name] = kwargs
        from .observability import MetricsRegistry

        registry = MetricsRegistry()
        run = run_parallel(
            suite,
            drivers,
            jobs=jobs,
            driver_kwargs=driver_kwargs,
            cache=args.cache_dir,
            resume=args.resume,
            timeout=args.timeout,
            max_retries=args.max_retries,
            metrics=registry,
        )
        for key in keys:
            driver, title = _STUDY_DRIVERS[key]
            rows = run.rows[driver]
            if not rows:
                continue  # every benchmark of this driver failed
            if driver == "figure7":
                # Speed-up factors: a plain average is the convention.
                series = [c for c in rows[0] if c.startswith("cores_")]
                mean = "arith"
            elif driver == "table2":
                print(format_table(rows, title=title, precision=4))
                print()
                continue
            else:
                # Normalized make-spans are ratios: geometric mean.
                series = _FIGURE_SERIES
                mean = "geo"
            rows = list(rows)
            rows.insert(0, average_row(rows, series, mean=mean))
            print(format_figure(rows, series, title=title))
            print()
        if args.cache_dir is not None:
            counts = run.status_counts()
            summary = ", ".join(
                f"{counts[s]} {s}" for s in sorted(counts)
            )
            print(
                f"units: {len(run.statuses)} total ({summary}); "
                f"cache: {run.cache_hits} hits / {run.cache_misses} misses"
            )
        warnings = format_errors(run.errors)
        if warnings:
            print(warnings, file=sys.stderr)
    if wanted in ("astar", "all") and bundle is None:
        print(
            format_table(
                astar_scaling(max_frontier=200_000),
                title="A*-search feasibility",
                precision=1,
            )
        )
    if args.json_out is not None and run is not None:
        import json as _json

        with open(args.json_out, "w", encoding="utf-8") as fh:
            _json.dump(
                {
                    "rows": run.rows,
                    "errors": list(run.errors),
                    "statuses": run.statuses,
                    "cache_hits": run.cache_hits,
                    "cache_misses": run.cache_misses,
                    "metrics": (
                        registry.snapshot() if registry is not None else {}
                    ),
                },
                fh,
                indent=2,
            )
        print(f"wrote {args.json_out}")
    if args.strict and run is not None and not run.ok:
        return 1
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import dataclasses
    import json as _json

    from .faults import parse_fault_spec
    from .faults.sweep import degradation_curves
    from .observability import MetricsRegistry

    base = parse_fault_spec(args.spec)
    if args.seed is not None:
        base = dataclasses.replace(base, seed=args.seed)
    try:
        rates = tuple(
            float(item) for item in args.rates.split(",") if item.strip()
        )
    except ValueError:
        raise FaultSpecError(
            f"fault spec: --rates must be comma-separated numbers, "
            f"got {args.rates!r}"
        ) from None
    if not rates:
        raise FaultSpecError("fault spec: --rates is empty")
    # Validate the swept rates up front (e.g. compile_fail > 1).
    for rate in rates:
        base.scaled(args.dimension, rate)

    if args.instance is not None:
        from .instances import read_bundle

        bundle = read_bundle(args.instance)
        suite = {bundle.name: bundle.instance}
    else:
        suite = dacapo.load_suite(scale=args.scale)
    spec_str = base.canonical()
    jobs = None if args.jobs == 0 else args.jobs
    registry = MetricsRegistry()
    run = run_parallel(
        suite,
        ("faults_sweep",),
        jobs=jobs,
        driver_kwargs={
            "faults_sweep": {
                "spec": spec_str,
                "rates": rates,
                "dimension": args.dimension,
            }
        },
        cache=args.cache_dir,
        resume=args.resume,
        metrics=registry,
    )
    rows = run.rows["faults_sweep"]
    curves = degradation_curves(rows) if rows else []
    print(
        format_figure(
            curves,
            _FIGURE_SERIES,
            label_key="fault_rate",
            title=(
                f"degradation vs {args.dimension} rate "
                f"(geomean over {len(suite)} benchmarks)"
            ),
        )
    )
    warnings = format_errors(run.errors)
    if warnings:
        print(warnings, file=sys.stderr)
    if args.json_out is not None:
        doc = {
            "dimension": args.dimension,
            "spec": spec_str,
            "rates": list(rates),
            "rows": rows,
            "curves": curves,
        }
        with open(args.json_out, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    if args.strict and not run.ok:
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .store import CODE_VERSION, ResultStore

    store = ResultStore(args.cache_dir)
    if args.action == "stats":
        stats = store.stats().as_dict()
        print(f"root:        {stats['root']}")
        print(f"entries:     {stats['entries']}")
        print(f"total bytes: {stats['total_bytes']}")
        for driver, count in stats["by_driver"].items():
            print(f"  {driver}: {count}")
        return 0
    if args.action == "gc":
        removed = store.gc(
            max_age_days=args.max_age_days,
            code_version=CODE_VERSION if args.current_code_only else None,
        )
        print(f"gc: removed {removed} file(s)")
        return 0
    removed = store.clear()
    print(f"clear: removed {removed} entrie(s)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import (
        DEFAULT_SCALE,
        compare_dirs,
        render_markdown,
        render_text,
        run_suite,
        to_json_text,
        worst_status,
        write_baseline,
    )

    if args.bench_command == "run":
        _apply_engine(args)
        scale = args.scale
        if scale is None:
            scale = float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))
        out_dir = args.baseline_dir if args.update_baselines else args.out
        try:
            results = run_suite(
                args.suite,
                scale=scale,
                warmups=args.warmups,
                repeats=args.repeats,
                progress=lambda name: print(f"running {name} ..."),
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        for result in results:
            path = write_baseline(out_dir, result)
            timing = result.timing
            print(
                f"  {result.name:<24} median {timing.median_s * 1e3:8.2f} ms "
                f"(iqr {timing.iqr_s * 1e3:.2f} ms, "
                f"{len(result.counters)} counters) -> {path}"
            )
        kind = "baselines" if args.update_baselines else "results"
        print(
            f"wrote {len(results)} {kind} to {out_dir} "
            f"(suite={args.suite}, scale={scale})"
        )
        return 0

    # compare / report share the pipeline; only the gating differs.
    comparisons = compare_dirs(args.results, args.baselines)
    if args.markdown == "-":
        print(render_markdown(comparisons))
    else:
        print(render_text(comparisons))
        if args.markdown is not None:
            with open(args.markdown, "w", encoding="utf-8") as fh:
                fh.write(render_markdown(comparisons))
            print(f"wrote {args.markdown}")
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(to_json_text(comparisons))
        print(f"wrote {args.json}")
    if args.bench_command == "report":
        return 0
    overall = worst_status(comparisons)
    if os.environ.get("GITHUB_ACTIONS") == "true":
        for comparison in comparisons:
            if comparison.status == "warn":
                notes = "; ".join(comparison.notes)
                print(f"::warning title=bench {comparison.name}::{notes}")
    return 1 if overall == "fail" else 0


def _cmd_import_trace(args: argparse.Namespace) -> int:
    from .workloads.call_log import instance_from_logs

    instance = instance_from_logs(args.call_log, args.cost_table, name=args.name)
    traces.save(instance, args.output)
    print(
        f"wrote {args.output}: {instance.num_calls} calls over "
        f"{instance.num_functions} functions"
    )
    return 0


def _print_bundle_summary(path, summary: Dict[str, object]) -> None:
    print(
        f"wrote {path}: {summary['functions']} functions, "
        f"{summary['calls']} calls, {summary['levels']} levels, "
        f"{summary['due_dates']} due dates ({summary['source']})"
    )
    print(f"fingerprint: {summary['fingerprint']}")


def _cmd_instances(args: argparse.Namespace) -> int:
    import dataclasses

    from . import instances as inst

    if args.instances_command == "export":
        if (args.source is None) == (args.benchmark is None):
            raise ValueError(
                "instances export: give either a trace/bundle SOURCE or "
                "--benchmark (exactly one)"
            )
        if args.benchmark is not None:
            instance = dacapo.load(
                args.benchmark, scale=args.scale, seed=args.seed
            )
            bundle = inst.InstanceBundle(instance=instance, source="synthetic")
        else:
            source = args.source
            from pathlib import Path as _Path

            p = _Path(source)
            if p.is_dir() or p.name == inst.MANIFEST_FILE:
                bundle = inst.read_bundle(source)
            else:
                bundle = inst.InstanceBundle(
                    instance=traces.load(source), source="trace"
                )
        if args.name is not None:
            bundle = dataclasses.replace(
                bundle,
                instance=dataclasses.replace(bundle.instance, name=args.name),
            )
        path = inst.write_bundle(bundle, args.output)
        _print_bundle_summary(path, bundle.summary())
        return 0

    if args.instances_command == "import":
        importer = {
            "v8": inst.bundle_from_v8_log,
            "jvm": inst.bundle_from_jvm_log,
            "scc": inst.bundle_from_scc,
        }[args.fmt]
        bundle = importer(args.source, name=args.name)
        path = inst.write_bundle(bundle, args.output)
        _print_bundle_summary(path, bundle.summary())
        return 0

    if args.instances_command == "validate":
        for path in args.paths:
            summary = inst.validate_bundle(path).summary()
            print(
                f"ok {path}: {summary['name']} "
                f"({summary['functions']} functions, "
                f"{summary['calls']} calls, {summary['levels']} levels, "
                f"{summary['due_dates']} due dates) "
                f"{summary['fingerprint'][:16]}"
            )
        print(f"validated {len(args.paths)} bundle(s)")
        return 0

    # list
    rows = inst.list_bundles(args.root)
    if args.json is not None:
        import json as _json

        text = _json.dumps(rows, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            print(text, end="")
            return 0
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.json}")
    if not rows:
        print(f"no bundles under {args.root}")
        return 0
    for row in rows:
        if "error" in row:
            print(f"{row['path']}: ERROR {row['error']}")
        else:
            print(
                f"{row['path']}: {row['name']} source={row['source']} "
                f"functions={row['functions']} calls={row['calls']} "
                f"levels={row['levels']} due={row['due_dates']} "
                f"{str(row['fingerprint'])[:16]}"
            )
    return 0


def _cmd_walkthrough(_args: argparse.Namespace) -> int:
    from .analysis import format_timeline
    from .core import FunctionProfile, OCSPInstance, optimal_schedule

    profiles = {
        "f0": FunctionProfile("f0", (1.0,), (1.0,)),
        "f1": FunctionProfile("f1", (1.0, 4.0), (3.0, 2.0)),
        "f2": FunctionProfile("f2", (1.0, 5.0), (3.0, 1.0)),
    }
    fig1 = OCSPInstance(profiles, ("f0", "f1", "f2", "f1"), name="fig1")
    schemes = {
        "s1 (all level 0)": Schedule.of(("f0", 0), ("f1", 0), ("f2", 0)),
        "s2 (f1 at level 1)": Schedule.of(("f0", 0), ("f1", 1), ("f2", 0)),
        "s3 (f1 twice)": Schedule.of(
            ("f0", 0), ("f1", 0), ("f2", 0), ("f1", 1)
        ),
    }
    print("Figure 1: call sequence f0 f1 f2 f1")
    for title, schedule in schemes.items():
        result = simulate(fig1, schedule, record_timeline=True)
        print(f"--- {title} ---")
        print(format_timeline(result))
        print()
    fig2 = OCSPInstance(profiles, ("f0", "f1", "f2", "f1", "f2"), name="fig2")
    exact = optimal_schedule(fig2)
    print(
        f"Figure 2 optimum (one more f2 call): make-span "
        f"{exact.makespan:.0f} via {exact.schedule}"
    )
    return 0


def _make_service_engine(args: argparse.Namespace):
    """One engine + metrics registry from the shared ``serve`` knobs."""
    from .observability import MetricsRegistry
    from .service import DecisionCache, DecisionEngine, ServicePolicy

    metrics = MetricsRegistry()
    policy = ServicePolicy(
        optimism=args.optimism,
        max_functions=args.max_functions,
        max_tenants=args.max_tenants,
    )
    cache = None if args.no_decision_cache else DecisionCache()
    telemetry = None
    # `serve run` attaches the wall-clock plane unless --no-telemetry;
    # `serve replay` attaches it only on --telemetry (the replay is a
    # measurement tool first, and the default stays minimal).
    if args.serve_command == "run":
        enabled = not args.no_telemetry
    else:
        enabled = args.telemetry
    if enabled:
        from .telemetry import ServiceTelemetry

        telemetry = ServiceTelemetry(
            shards=args.shards,
            flight_capacity=args.flight_capacity,
            flight_dir=args.flight_dir,
            slo_window_s=args.slo_window,
        )
    engine = DecisionEngine(
        policy=policy,
        shards=args.shards,
        faults=args.faults,
        cache=cache,
        metrics=metrics,
        telemetry=telemetry,
    )
    return engine, metrics


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServerConfig

    config = ServerConfig(
        host=getattr(args, "host", "127.0.0.1"),
        port=getattr(args, "port", 0),
        batch_max=args.batch_max,
        queue_limit=args.queue_limit,
        admission_limit=args.admission_limit,
    )
    if args.serve_command == "run":
        return _serve_run(args, config)
    return _serve_replay(args, config)


def _serve_run(args: argparse.Namespace, config) -> int:
    import asyncio
    import json
    import signal

    from .service import DecisionServer

    engine, _metrics = _make_service_engine(args)
    telemetry = engine.telemetry

    def _dump_flight(reason: str) -> None:
        if telemetry is None:
            return
        path = telemetry.dump_flight(reason)
        if path is not None:
            print(f"repro serve: flight recorder wrote {path}", flush=True)

    def _write_status(server) -> None:
        if args.json_out is None:
            return
        doc = {
            "summary": engine.summary(),
            "rejected": server.rejected,
            "max_batch_seen": server.max_batch_seen,
        }
        if telemetry is not None:
            doc["uptime_s"] = telemetry.uptime_s()
            doc["slo"] = telemetry.slo.snapshot()
            doc["flight"] = telemetry.flight.snapshot()
            doc["metrics"] = telemetry.snapshot()
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_out}")

    async def _run() -> None:
        server = DecisionServer(engine, config)
        await server.start()
        if telemetry is not None and hasattr(signal, "SIGUSR1"):
            # SIGUSR-style black-box trigger: dump the flight rings
            # without disturbing the server.
            try:
                asyncio.get_running_loop().add_signal_handler(
                    signal.SIGUSR1, _dump_flight, "sigusr1"
                )
            except (NotImplementedError, RuntimeError):
                pass
        admin_note = (
            " admin: /healthz /statusz /metricsz /flightz;"
            if telemetry is not None
            else ""
        )
        print(
            f"repro serve: listening on {config.host}:{server.port} "
            f"(JSONL;{admin_note} send {{\"op\": \"shutdown\"}} to stop)",
            flush=True,
        )
        await server.serve_until_stopped()
        summary = engine.summary()
        print(
            f"repro serve: stopped after {summary['events']} events, "
            f"{summary['decisions']} decisions "
            f"({server.rejected} rejected)"
        )
        _write_status(server)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        _dump_flight("interrupt")
        print("repro serve: interrupted", file=sys.stderr)
        return 130
    except Exception:
        # The black box earns its name here: dump the last N decisions
        # before the crash propagates.
        _dump_flight("crash")
        raise
    return 0


def _serve_replay(args: argparse.Namespace, config) -> int:
    import json

    from .service import generate_events, load_events, run_replay

    engine, _metrics = _make_service_engine(args)
    if args.events_file is not None:
        events = load_events(args.events_file)
        source = args.events_file
    else:
        events = generate_events(
            tenants=args.tenants,
            events=args.events,
            scale=args.scale,
            seed=args.seed,
        )
        source = (
            f"generated (tenants={args.tenants} events={args.events} "
            f"scale={args.scale} seed={args.seed})"
        )
    if args.save_events is not None:
        from .service import write_events

        write_events(events, args.save_events)
        print(f"wrote {args.save_events}")
    report = run_replay(
        events,
        engine,
        decisions_out=args.decisions_out,
        mode=args.mode,
        resume=args.resume,
        window=args.window,
        config=config,
    )
    faults_note = f" faults={args.faults}" if args.faults else ""
    print(f"events: {source}{faults_note}")
    print(
        f"replayed {report.events} events from {report.tenants} tenants "
        f"in {report.wall_s:.3f} s ({args.mode})"
    )
    resumed = f" ({report.skipped} resumed from journal)" if report.skipped else ""
    print(
        f"decisions: {report.decisions}{resumed}  "
        f"rate: {report.decisions_per_sec:,.0f} decisions/sec"
    )
    print(
        f"latency: p50 {report.p50_ms:.3f} ms, p99 {report.p99_ms:.3f} ms "
        f"(median {report.latency.median_s * 1e3:.3f} ms over "
        f"{len(events)} events, via repro.perf)"
    )
    summary = report.summary
    if "cache_hits" in summary:
        print(
            f"decision cache: {summary['cache_hits']} hits / "
            f"{summary['cache_misses']} misses"
        )
    faults_summary = summary.get("faults")
    if faults_summary:
        print(f"faults: {faults_summary}")
    if report.slo:
        worst = max(
            (tenant["p99_ms"] or 0.0) for tenant in report.slo.values()
        )
        print(
            f"slo: {len(report.slo)} tenants tracked, "
            f"worst p99 {worst:.3f} ms (telemetry plane)"
        )
    if args.decisions_out is not None:
        print(f"wrote {args.decisions_out}")
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    return 0


def _render_top(doc: Dict[str, object]) -> None:
    """One ``repro top`` frame from a ``/statusz`` document."""
    summary = doc.get("summary", {})
    queue = doc.get("queue", {})
    uptime = doc.get("uptime_s")
    uptime_note = f"{uptime:.1f}s" if isinstance(uptime, float) else "n/a"
    draining = "yes" if doc.get("draining") else "no"
    print(
        f"uptime {uptime_note}  tenants {summary.get('tenants', 0)}  "
        f"events {summary.get('events', 0)}  "
        f"decisions {summary.get('decisions', 0)}  "
        f"queue {queue.get('depth', 0)}/{queue.get('limit', 0)}  "
        f"rejected {doc.get('rejected', 0)}  draining {draining}"
    )
    occupancy = doc.get("shard_occupancy")
    if occupancy:
        print(f"shard occupancy: {occupancy}")
    slo = doc.get("slo")
    if not slo:
        print("(no per-tenant SLOs: telemetry disabled or no decisions yet)")
        return
    header = (
        f"{'tenant':<24} {'decs':>8} {'rejs':>6} {'rej%':>6} "
        f"{'p50ms':>9} {'p99ms':>9} {'w.p99ms':>9}"
    )
    print(header)

    def _ms(value) -> str:
        return f"{value:.3f}" if isinstance(value, (int, float)) else "-"

    for tenant in sorted(slo):
        row = slo[tenant]
        window = row.get("window", {})
        print(
            f"{tenant:<24} {row.get('decisions', 0):>8} "
            f"{row.get('rejections', 0):>6} "
            f"{100.0 * row.get('rejection_rate', 0.0):>5.1f}% "
            f"{_ms(row.get('p50_ms')):>9} {_ms(row.get('p99_ms')):>9} "
            f"{_ms(window.get('p99_ms')):>9}"
        )


def _cmd_top(args: argparse.Namespace) -> int:
    import json
    import time

    from .telemetry import http_get

    iterations = 0
    while True:
        status, body = http_get(args.host, args.port, "/statusz")
        if status != 200:
            raise ValueError(
                f"/statusz answered HTTP {status}: "
                f"{body.decode('utf-8', 'replace').strip()}"
            )
        doc = json.loads(body.decode("utf-8"))
        if args.json:
            print(json.dumps(doc, sort_keys=True))
        else:
            if iterations:
                print()
            _render_top(doc)
        iterations += 1
        if args.interval is None:
            break
        if args.count and iterations >= args.count:
            break
        time.sleep(args.interval)
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    import json
    from collections import Counter

    from .telemetry import read_flight_bundle

    header, entries = read_flight_bundle(args.path)
    if args.json:
        print(
            json.dumps(
                {"header": header, "entries": entries}, sort_keys=True
            )
        )
        return 0
    print(
        f"flight bundle: reason={header['reason']} "
        f"created={header['created']} shards={header['shards']} "
        f"capacity={header['capacity']}"
    )
    print(
        f"recorded {header['recorded']} decisions over the run, "
        f"{len(entries)} retained in the rings"
    )
    tenants = Counter()
    actions = Counter()
    faults = Counter()
    for entry in entries:
        decision = entry.get("decision", {})
        tenants[str(decision.get("tenant"))] += 1
        actions[str(decision.get("action"))] += 1
        for key, value in (entry.get("faults") or {}).items():
            faults[key] = max(faults[key], int(value))
    if actions:
        joined = "  ".join(
            f"{action}={count}" for action, count in sorted(actions.items())
        )
        print(f"actions: {joined}")
    if tenants:
        print(f"tenants: {len(tenants)}")
        for tenant, count in sorted(tenants.items()):
            print(f"  {tenant:<24} {count:>6}")
    if faults:
        joined = "  ".join(
            f"{key}={count}" for key, count in sorted(faults.items())
        )
        print(f"fault tallies (max seen): {joined}")
    if args.last:
        print(f"last {min(args.last, len(entries))} entries:")
        for entry in entries[-args.last:]:
            decision = entry.get("decision", {})
            print(
                f"  #{entry.get('order')} shard={entry.get('shard')} "
                f"corr={entry.get('corr')} "
                f"{decision.get('function')} -> {decision.get('action')} "
                f"L{decision.get('level')} "
                f"(attempts {decision.get('attempts')})"
            )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "schedule": _cmd_schedule,
        "evaluate": _cmd_evaluate,
        "diagnose": _cmd_diagnose,
        "trace": _cmd_trace,
        "study": _cmd_study,
        "faults": _cmd_faults,
        "cache": _cmd_cache,
        "bench": _cmd_bench,
        "import-trace": _cmd_import_trace,
        "instances": _cmd_instances,
        "serve": _cmd_serve,
        "top": _cmd_top,
        "telemetry": _cmd_telemetry,
        "walkthrough": _cmd_walkthrough,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream closed the pipe (`repro cache stats | head`):
        # conventional CLI behavior is to stop quietly.  Point stdout
        # at devnull so the interpreter's shutdown flush does not print
        # the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, what the shell would report
    except (ValueError, OSError) as exc:
        # Every structured input error is a ValueError subclass
        # (ModelError, ScheduleError, FaultSpecError) or plain
        # ValueError (workload specs); OSError covers unreadable
        # files.  One diagnostic line, exit 2 — the full traceback
        # stays behind --debug.  (BrokenPipeError is an OSError
        # subclass; its handler above runs first.)
        if args.debug:
            raise
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
