"""Noise-aware comparison of benchmark results against baselines.

The two signals gate differently:

* **Counters compare exactly.**  They are machine-independent, so any
  difference is a real behavioural change.  An *increase* is a
  regression (the code does more work per run) and fails the
  comparison; a *decrease* is an improvement that warns until the
  baseline is refreshed — a stale baseline would mask the next
  regression up to the amount just saved.
* **Wall time compares against an IQR-derived threshold.**  The
  baseline's interquartile range is its own noise estimate; the current
  median must exceed ``median + max(IQR_SCALE * iqr, REL_FLOOR *
  median)`` to count as drift.  The relative floor handles the
  zero-IQR case (few repeats on a quiet machine: an IQR of 0 must not
  turn scheduler jitter into alarms).  Drift *warns*, never fails —
  wall time on shared runners is evidence, not proof.  When the machine
  fingerprints differ, timing is not compared at all (noted instead):
  cross-machine wall-clock deltas are meaningless.

Comparability gates (schema version, scale, params, kind) downgrade to
``skip`` with a note — an incomparable baseline is a workflow problem,
not a perf regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .baseline import SCHEMA_VERSION, load_baseline_dir

__all__ = [
    "IQR_SCALE",
    "REL_FLOOR",
    "CounterDiff",
    "Comparison",
    "compare_doc",
    "compare_dirs",
    "worst_status",
]

# Drift threshold: median + max(IQR_SCALE * iqr, REL_FLOOR * median).
IQR_SCALE = 3.0
REL_FLOOR = 0.15

# Severity order for aggregating many comparisons into one verdict.
_SEVERITY = {"pass": 0, "skip": 1, "warn": 2, "fail": 3}


@dataclass(frozen=True)
class CounterDiff:
    """One counter whose value changed (or appeared/disappeared)."""

    counter: str
    baseline: Optional[int]
    current: Optional[int]

    @property
    def regressed(self) -> bool:
        """More work than the baseline recorded."""
        return (
            self.baseline is not None
            and self.current is not None
            and self.current > self.baseline
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "counter": self.counter,
            "baseline": self.baseline,
            "current": self.current,
            "regressed": self.regressed,
        }


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing one benchmark against its baseline.

    ``status``: ``pass`` (both signals clean), ``warn`` (wall-time
    drift, counter improvement, or fingerprint mismatch), ``fail``
    (counter regression), or ``skip`` (no comparable baseline).
    """

    name: str
    status: str
    notes: Tuple[str, ...]
    counter_diffs: Tuple[CounterDiff, ...] = ()
    baseline_median_s: Optional[float] = None
    current_median_s: Optional[float] = None
    time_threshold_s: Optional[float] = None
    time_compared: bool = False

    @property
    def time_ratio(self) -> Optional[float]:
        if (
            self.baseline_median_s
            and self.current_median_s is not None
            and self.baseline_median_s > 0
        ):
            return self.current_median_s / self.baseline_median_s
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "notes": list(self.notes),
            "counter_diffs": [d.as_dict() for d in self.counter_diffs],
            "baseline_median_s": self.baseline_median_s,
            "current_median_s": self.current_median_s,
            "time_threshold_s": self.time_threshold_s,
            "time_ratio": self.time_ratio,
            "time_compared": self.time_compared,
        }


def _skip(name: str, note: str) -> Comparison:
    return Comparison(name=name, status="skip", notes=(note,))


def _median(doc: Dict[str, object]) -> Optional[float]:
    timing = doc.get("timing")
    if isinstance(timing, dict) and "median_s" in timing:
        return float(timing["median_s"])
    return None


def compare_doc(
    current: Dict[str, object],
    baseline: Optional[Dict[str, object]],
    iqr_scale: float = IQR_SCALE,
    rel_floor: float = REL_FLOOR,
) -> Comparison:
    """Compare one current result document against its baseline document."""
    name = str(current.get("name", "?"))
    if baseline is None:
        return _skip(name, "no baseline (new benchmark? commit one with "
                           "`repro bench run --update-baselines`)")
    base_schema = baseline.get("schema_version")
    if base_schema != SCHEMA_VERSION:
        return _skip(
            name,
            f"baseline schema_version {base_schema!r} != current "
            f"{SCHEMA_VERSION} (refresh the baseline)",
        )
    if baseline.get("kind") != current.get("kind"):
        return _skip(
            name,
            f"kind mismatch: baseline {baseline.get('kind')!r} vs current "
            f"{current.get('kind')!r}",
        )
    if baseline.get("kind") != "perf":
        return _skip(name, f"kind {baseline.get('kind')!r} is not gated")
    if baseline.get("scale") != current.get("scale"):
        return _skip(
            name,
            f"scale mismatch: baseline {baseline.get('scale')} vs current "
            f"{current.get('scale')} (set REPRO_SCALE to the baseline's "
            "scale or refresh)",
        )
    if baseline.get("params") != current.get("params"):
        return _skip(name, "benchmark params differ from the baseline's")

    notes: List[str] = []
    status = "pass"

    def escalate(to: str) -> None:
        nonlocal status
        if _SEVERITY[to] > _SEVERITY[status]:
            status = to

    # ---- signal 1: exact counters -----------------------------------
    base_counters = dict(baseline.get("counters") or {})
    cur_counters = dict(current.get("counters") or {})
    diffs: List[CounterDiff] = []
    for key in sorted(set(base_counters) | set(cur_counters)):
        b = base_counters.get(key)
        c = cur_counters.get(key)
        if b == c:
            continue
        diffs.append(CounterDiff(counter=key, baseline=b, current=c))
    for diff in diffs:
        if diff.regressed:
            escalate("fail")
            notes.append(
                f"counter regression: {diff.counter} "
                f"{diff.baseline} -> {diff.current} (more work per run)"
            )
        elif diff.baseline is not None and diff.current is not None:
            escalate("warn")
            notes.append(
                f"counter improved: {diff.counter} "
                f"{diff.baseline} -> {diff.current} (refresh the baseline "
                "so the gain is locked in)"
            )
        else:
            escalate("warn")
            notes.append(
                f"counter set changed: {diff.counter} "
                f"{diff.baseline} -> {diff.current} (refresh the baseline)"
            )

    # ---- signal 2: IQR-thresholded wall time ------------------------
    comparison_fields: Dict[str, object] = {}
    base_median = _median(baseline)
    cur_median = _median(current)
    same_machine = baseline.get("machine") == current.get("machine")
    if base_median is None or cur_median is None:
        notes.append("timing not compared: missing timing stats")
    elif not same_machine:
        escalate("warn")
        notes.append(
            "machine fingerprint differs from the baseline's; wall time "
            "not compared (counters still gate exactly)"
        )
        comparison_fields = {
            "baseline_median_s": base_median,
            "current_median_s": cur_median,
        }
    else:
        iqr = float((baseline.get("timing") or {}).get("iqr_s", 0.0))
        threshold = base_median + max(iqr_scale * iqr, rel_floor * base_median)
        comparison_fields = {
            "baseline_median_s": base_median,
            "current_median_s": cur_median,
            "time_threshold_s": threshold,
            "time_compared": True,
        }
        if cur_median > threshold:
            escalate("warn")
            notes.append(
                f"wall-time drift: median {cur_median * 1e3:.2f} ms exceeds "
                f"threshold {threshold * 1e3:.2f} ms (baseline "
                f"{base_median * 1e3:.2f} ms, iqr {iqr * 1e3:.2f} ms) — "
                "warning only; trust the counters for causality"
            )

    if status == "pass":
        notes.append("counters exact-match; wall time within threshold"
                     if comparison_fields.get("time_compared")
                     else "counters exact-match")
    return Comparison(
        name=name,
        status=status,
        notes=tuple(notes),
        counter_diffs=tuple(diffs),
        **comparison_fields,  # type: ignore[arg-type]
    )


def compare_dirs(
    results_dir: Union[str, Path],
    baselines_dir: Union[str, Path],
    iqr_scale: float = IQR_SCALE,
    rel_floor: float = REL_FLOOR,
) -> List[Comparison]:
    """Compare every result in ``results_dir`` against ``baselines_dir``.

    Results drive the iteration: a baseline without a fresh result is
    reported as a skip (the benchmark was removed or not run), and a
    result without a baseline skips with a "commit one" hint.
    """
    results = load_baseline_dir(results_dir)
    baselines = load_baseline_dir(baselines_dir)
    out: List[Comparison] = []
    for name in sorted(results):
        out.append(
            compare_doc(
                results[name],
                baselines.get(name),
                iqr_scale=iqr_scale,
                rel_floor=rel_floor,
            )
        )
    for name in sorted(set(baselines) - set(results)):
        if baselines[name].get("kind") != "perf":
            continue
        out.append(
            _skip(name, "baseline exists but no fresh result was produced")
        )
    return out


def worst_status(comparisons: List[Comparison]) -> str:
    """The most severe status across ``comparisons`` (``pass`` if empty)."""
    worst = "pass"
    for comparison in comparisons:
        if _SEVERITY[comparison.status] > _SEVERITY[worst]:
            worst = comparison.status
    return worst
