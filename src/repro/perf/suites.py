"""Registered perf benchmarks and named suites.

Each benchmark is a setup factory (see :mod:`repro.perf.harness`):
``make(scale)`` builds the workload and engines once, and the returned
callable does only the work worth measuring.  Workload sizes derive
from ``scale`` with the same convention as the pytest benchmark suite
(``REPRO_SCALE``, default 0.01), and the scale is recorded in every
baseline — results at different scales never compare.

The ``quick`` suite covers every instrumented hot path: the reference
simulator, the fast engine (full and incremental), the vector engine,
local search, the priority-queue co-simulation, the result store,
tracing, and the parallel experiment runner.  It is sized to finish in
seconds at the default scale so CI can gate on it.

Two narrower suites serve the engine-equivalence story:

* ``vecsim`` — only the engine-pinned benchmarks (each names its engine
  explicitly, so running them under ``--engine vector`` or
  ``$REPRO_ENGINE`` cannot change their counters vs the committed
  baselines);
* ``speedup`` — the reference/fast/vector evaluation benchmarks whose
  committed baselines back the documented speedup table (the same
  workload and schedule measured through each engine).
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..observability.metrics import MetricsRegistry
from .harness import BenchResult, run_benchmark

__all__ = [
    "BenchSpec",
    "REGISTRY",
    "register",
    "suite_names",
    "get_suite",
    "run_suite",
    "DEFAULT_SCALE",
]

DEFAULT_SCALE = 0.01

Factory = Callable[[float], Callable[[MetricsRegistry], None]]


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark: a named, suite-tagged setup factory."""

    name: str
    make: Factory
    suites: Tuple[str, ...]
    description: str
    warmups: int = 1
    repeats: int = 5


REGISTRY: Dict[str, BenchSpec] = {}


def register(
    name: str,
    suites: Tuple[str, ...] = ("quick",),
    description: str = "",
    warmups: int = 1,
    repeats: int = 5,
):
    """Decorator: register a benchmark factory under ``name``."""

    def deco(make: Factory) -> Factory:
        if name in REGISTRY:
            raise ValueError(f"benchmark {name!r} already registered")
        REGISTRY[name] = BenchSpec(
            name=name,
            make=make,
            suites=tuple(suites),
            description=description,
            warmups=warmups,
            repeats=repeats,
        )
        return make

    return deco


def suite_names() -> List[str]:
    names = {suite for spec in REGISTRY.values() for suite in spec.suites}
    return sorted(names)


def get_suite(suite: str) -> List[BenchSpec]:
    """The specs tagged with ``suite``, in registration order.

    Raises:
        KeyError: for a suite no benchmark is tagged with.
    """
    specs = [spec for spec in REGISTRY.values() if suite in spec.suites]
    if not specs:
        raise KeyError(
            f"unknown suite {suite!r}; available: {suite_names()}"
        )
    return specs


def run_suite(
    suite: str = "quick",
    scale: float = DEFAULT_SCALE,
    warmups: Optional[int] = None,
    repeats: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run every benchmark of ``suite`` and return the results."""
    results: List[BenchResult] = []
    for spec in get_suite(suite):
        if progress is not None:
            progress(spec.name)
        results.append(
            run_benchmark(
                spec.name,
                spec.make,
                scale=scale,
                warmups=spec.warmups if warmups is None else warmups,
                repeats=spec.repeats if repeats is None else repeats,
            )
        )
    return results


# ----------------------------------------------------------------------
# Workload helpers (setup only — never timed)
# ----------------------------------------------------------------------
def _workload(scale: float, calls_at_full: int = 200_000, seed: int = 42):
    from ..workloads import WorkloadSpec, generate

    spec = WorkloadSpec(
        name=f"perf-{calls_at_full}",
        num_functions=max(20, int(5_000 * scale)),
        num_calls=max(500, int(calls_at_full * scale)),
        num_levels=4,
        base_compile_us=50.0,
        mean_exec_us=2.0,
    )
    return generate(spec, seed=seed)


# ----------------------------------------------------------------------
# The quick suite
# ----------------------------------------------------------------------
@register(
    "core_simulate",
    suites=("quick", "speedup"),
    description="reference simulate() on a base-level schedule",
)
def _bench_core_simulate(scale: float):
    from ..core.makespan import simulate
    from ..core.single_level import base_level_schedule

    instance = _workload(scale)
    schedule = base_level_schedule(instance)

    def fn(metrics: MetricsRegistry) -> None:
        # Engine pinned: this benchmark *is* the reference measurement,
        # whatever engine the session defaults to.
        for _ in range(5):
            simulate(
                instance, schedule, validate=False, metrics=metrics,
                engine="reference",
            )

    return fn


@register(
    "core_simulate_vector",
    suites=("quick", "vecsim", "speedup"),
    description="simulate(engine='vector') on the core_simulate workload",
)
def _bench_core_simulate_vector(scale: float):
    from ..core.makespan import simulate
    from ..core.single_level import base_level_schedule

    instance = _workload(scale)
    schedule = base_level_schedule(instance)

    def fn(metrics: MetricsRegistry) -> None:
        # Same workload, schedule, and counters as core_simulate — the
        # committed baseline pair documents the vector engine's speedup
        # and proves counter identity across engines.
        for _ in range(5):
            simulate(
                instance, schedule, validate=False, metrics=metrics,
                engine="vector",
            )

    return fn


@register(
    "fastsim_evaluate",
    suites=("quick", "vecsim", "speedup"),
    description="FastSimulator full (non-incremental) evaluation",
)
def _bench_fastsim_evaluate(scale: float):
    from ..core.fastsim import FastSimulator
    from ..core.single_level import base_level_schedule

    instance = _workload(scale)
    schedule = base_level_schedule(instance)
    engine = FastSimulator(instance)

    def fn(metrics: MetricsRegistry) -> None:
        engine.metrics = metrics
        try:
            for _ in range(5):
                engine.evaluate(schedule)
        finally:
            engine.metrics = None

    return fn


@register(
    "vecsim_evaluate",
    suites=("quick", "vecsim", "speedup"),
    description="VectorSimulator full (non-incremental) evaluation",
)
def _bench_vecsim_evaluate(scale: float):
    from ..core.single_level import base_level_schedule
    from ..core.vecsim import VectorSimulator

    instance = _workload(scale)
    schedule = base_level_schedule(instance)
    engine = VectorSimulator(instance)

    def fn(metrics: MetricsRegistry) -> None:
        # Counter-exact twin of fastsim_evaluate: identical work
        # counters, different wall time — the pair of committed
        # baselines is the regression gate for both claims.
        engine.metrics = metrics
        try:
            for _ in range(5):
                engine.evaluate(schedule)
        finally:
            engine.metrics = None

    return fn


@register(
    "fastsim_incremental",
    description="FastSimulator propose/commit on random local-search moves",
)
def _bench_fastsim_incremental(scale: float):
    from ..core.fastsim import FastSimulator
    from ..core.localsearch import _propose
    from ..core.single_level import base_level_schedule

    instance = _workload(scale)
    schedule = base_level_schedule(instance)
    engine = FastSimulator(instance)

    def fn(metrics: MetricsRegistry) -> None:
        engine.metrics = metrics
        try:
            # Re-bind per run so every repeat walks the same trajectory
            # from the same baseline (a fresh rng makes the move stream
            # identical too).
            engine.bind(schedule)
            rng = random.Random(7)
            tasks = list(schedule.tasks)
            for _ in range(100):
                proposal = None
                while proposal is None:
                    proposal = _propose(instance, tasks, rng)
                span = engine.propose(
                    proposal, cutoff=engine.baseline_makespan
                )
                if span <= engine.baseline_makespan:
                    engine.commit()
                    tasks = proposal
        finally:
            engine.metrics = None

    return fn


@register(
    "localsearch_moves",
    description="hill-climbing local search on the fast engine",
)
def _bench_localsearch(scale: float):
    from ..core.localsearch import improve_schedule
    from ..core.single_level import base_level_schedule

    instance = _workload(scale, calls_at_full=100_000)
    schedule = base_level_schedule(instance)

    def fn(metrics: MetricsRegistry) -> None:
        improve_schedule(
            instance, schedule, iterations=200, seed=3, metrics=metrics
        )

    return fn


@register(
    "priorityqueue_hotness",
    description="priority-queue reactive co-simulation (hotness policy)",
)
def _bench_priorityqueue(scale: float):
    from ..vm.costbenefit import EstimatedModel
    from ..vm.jikes import JikesScheme
    from ..vm.priorityqueue import run_with_policy

    instance = _workload(scale, calls_at_full=50_000)

    def fn(metrics: MetricsRegistry) -> None:
        run_with_policy(
            instance,
            JikesScheme(EstimatedModel(instance, seed=0)),
            policy="hotness",
            metrics=metrics,
        )

    return fn


@register(
    "store_roundtrip",
    description="content-addressed store fingerprint + put + get",
)
def _bench_store(scale: float):
    from ..store import ResultStore, fingerprint_unit

    instance = _workload(scale, calls_at_full=20_000)
    entries = 32
    rows = [{"benchmark": "perf", "value": 1.25}]

    def fn(metrics: MetricsRegistry) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(tmp)
            fingerprints = [
                fingerprint_unit(
                    instance, "perf", {"entry": i}, benchmark="perf"
                )
                for i in range(entries)
            ]
            for fp in fingerprints:
                store.put(fp, rows, driver="perf", benchmark="perf")
            for fp in fingerprints:
                assert store.get(fp) == rows
            metrics.counter("store.puts").inc(store.puts)
            metrics.counter("store.hits").inc(store.hits)
            metrics.counter("store.misses").inc(store.misses)

    return fn


@register(
    "trace_record",
    description="simulate() with a Tracer attached (trace-enabled cost)",
)
def _bench_trace_record(scale: float):
    from ..core.makespan import simulate
    from ..core.single_level import base_level_schedule
    from ..observability import Tracer

    instance = _workload(scale, calls_at_full=100_000)
    schedule = base_level_schedule(instance)

    def fn(metrics: MetricsRegistry) -> None:
        tracer = Tracer()
        simulate(
            instance, schedule, validate=False, tracer=tracer,
            metrics=metrics,
        )
        metrics.counter("trace.events").inc(len(tracer.events))

    return fn


@register(
    "runner_serial",
    description="parallel experiment runner, serial path, figure5 units",
)
def _bench_runner(scale: float):
    from ..analysis.experiments import run_parallel

    suite = {
        "perf-a": _workload(scale, calls_at_full=20_000, seed=11),
        "perf-b": _workload(scale, calls_at_full=20_000, seed=12),
    }

    def fn(metrics: MetricsRegistry) -> None:
        run = run_parallel(
            suite, drivers=("figure5",), jobs=1, metrics=metrics
        )
        assert run.ok

    return fn


@register(
    "faults_sweep_small",
    description="fault-injected five-scheme sweep (2 rates, 1 benchmark)",
)
def _bench_faults_sweep(scale: float):
    from ..faults.sweep import fault_sweep_rows

    suite = {"perf": _workload(scale, calls_at_full=20_000, seed=13)}

    def fn(metrics: MetricsRegistry) -> None:
        rows = fault_sweep_rows(
            suite,
            spec="seed=0",
            rates=(0.0, 0.2),
            dimension="compile_fail",
            metrics=metrics,
        )
        assert len(rows) == 2

    return fn


@register(
    "service_decisions",
    description=(
        "multi-tenant decision service: interleaved DaCapo call events "
        "through a fault-injected, cache-backed engine"
    ),
)
def _bench_service_decisions(scale: float):
    from ..service import DecisionCache, DecisionEngine, run_replay
    from ..service.driver import generate_events

    # The event stream is built once; each measured run replays it
    # through a fresh engine (decisions + tallies are deterministic, so
    # the counters are identical across repeats by construction).
    events = generate_events(
        tenants=8,
        events=max(200, int(100_000 * scale)),
        scale=max(0.002, scale),
        seed=0,
    )

    def fn(metrics: MetricsRegistry) -> None:
        engine = DecisionEngine(
            faults="compile_fail=0.1,seed=3",
            cache=DecisionCache(),
            metrics=metrics,
        )
        report = run_replay(events, engine, mode="inproc")
        assert report.decisions > 0

    return fn


@register(
    "service_telemetry",
    suites=("quick", "telemetry"),
    description=(
        "decision service with the wall-clock telemetry plane attached: "
        "same replay as service_decisions plus tagged metrics, SLO "
        "windows, and the flight recorder"
    ),
)
def _bench_service_telemetry(scale: float):
    from ..service import DecisionCache, DecisionEngine, run_replay
    from ..telemetry import ServiceTelemetry
    from ..service.driver import generate_events

    events = generate_events(
        tenants=8,
        events=max(200, int(100_000 * scale)),
        scale=max(0.002, scale),
        seed=0,
    )

    def fn(metrics: MetricsRegistry) -> None:
        # The counters gated by the committed baseline come from the
        # engine's deterministic registry; the plane keeps its own
        # registries, so they must stay identical to service_decisions'.
        engine = DecisionEngine(
            faults="compile_fail=0.1,seed=3",
            cache=DecisionCache(),
            metrics=metrics,
            telemetry=ServiceTelemetry(shards=8),
        )
        report = run_replay(events, engine, mode="inproc")
        assert report.decisions > 0
        assert engine.telemetry.flight.recorded == engine.decisions

    return fn
