"""Schema-versioned ``BENCH_<name>.json`` baseline files.

A baseline records one benchmark's dual-signal measurement together
with everything needed to judge comparability later:

* ``schema_version`` — the envelope format; readers skip (with a
  warning) versions they do not understand instead of mis-parsing;
* ``machine`` — a host fingerprint (platform, Python, CPU count).
  Counters are machine-independent and always comparable; wall time is
  only compared against a baseline from a matching machine;
* ``scale`` / ``params`` — the workload knobs; a baseline at a
  different scale measured different work and is incomparable;
* ``git_revision`` — provenance for the trajectory, best-effort.

Two kinds share the envelope: ``"perf"`` documents from the
:mod:`repro.perf.harness`, and ``"legacy-text"`` sidecars the benchmark
suite's ``report`` fixture writes next to its ``.txt`` tables so the
existing 29 pytest benchmarks feed the machine-readable trajectory for
free.  Writes are atomic (``*.tmp`` + ``os.replace``), matching the
result store's crash discipline.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Dict, Optional, Union

from .harness import BenchResult

__all__ = [
    "SCHEMA_VERSION",
    "BaselineError",
    "machine_fingerprint",
    "git_revision",
    "baseline_path",
    "result_doc",
    "legacy_doc",
    "write_doc",
    "write_baseline",
    "write_legacy_sidecar",
    "load_baseline",
    "load_baseline_dir",
]

SCHEMA_VERSION = 1

_PREFIX = "BENCH_"


class BaselineError(ValueError):
    """A baseline file is unreadable or structurally invalid."""


def machine_fingerprint() -> Dict[str, object]:
    """Host identity for timing comparability (never for counters)."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
    }


def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """Current ``git rev-parse HEAD``, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def baseline_path(directory: Union[str, Path], name: str) -> Path:
    """``<directory>/BENCH_<name>.json``."""
    return Path(directory) / f"{_PREFIX}{name}.json"


def _envelope(name: str, kind: str) -> Dict[str, object]:
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "name": name,
        "created_at": time.time(),
        "git_revision": git_revision(),
        "machine": machine_fingerprint(),
    }


def result_doc(result: BenchResult) -> Dict[str, object]:
    """The on-disk document for a harness measurement."""
    doc = _envelope(result.name, "perf")
    doc.update(
        {
            "scale": result.scale,
            "warmups": result.warmups,
            "params": dict(result.params),
            "timing": result.timing.as_dict(),
            "counters": dict(result.counters),
        }
    )
    return doc


def legacy_doc(name: str, text: str, scale: float) -> Dict[str, object]:
    """Sidecar document for a legacy free-form ``.txt`` benchmark report."""
    doc = _envelope(name, "legacy-text")
    doc.update({"scale": scale, "text": text})
    return doc


def write_doc(path: Union[str, Path], doc: Dict[str, object]) -> Path:
    """Atomically write ``doc`` as JSON to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def write_baseline(directory: Union[str, Path], result: BenchResult) -> Path:
    """Write ``BENCH_<name>.json`` for a harness result; returns the path."""
    return write_doc(baseline_path(directory, result.name), result_doc(result))


def write_legacy_sidecar(
    directory: Union[str, Path], name: str, text: str, scale: float
) -> Path:
    """Write a legacy-text sidecar next to a ``.txt`` benchmark report."""
    return write_doc(baseline_path(directory, name), legacy_doc(name, text, scale))


def load_baseline(path: Union[str, Path]) -> Dict[str, object]:
    """Read one baseline document.

    Raises:
        BaselineError: missing file, invalid JSON, or a non-dict body.
        Schema-*version* mismatches are NOT raised here — the comparator
        downgrades them to a skip-with-warning so one old file cannot
        brick a whole comparison run.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise BaselineError(f"no baseline at {path}")
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}")
    if not isinstance(doc, dict) or "name" not in doc:
        raise BaselineError(f"malformed baseline {path}: not a baseline document")
    return doc


def load_baseline_dir(directory: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """Every readable ``BENCH_*.json`` in ``directory``, keyed by name.

    Unreadable files are skipped (a corrupt baseline must degrade to
    "missing", never break the comparison of the healthy ones).
    """
    directory = Path(directory)
    out: Dict[str, Dict[str, object]] = {}
    if not directory.is_dir():
        return out
    for path in sorted(directory.glob(f"{_PREFIX}*.json")):
        try:
            doc = load_baseline(path)
        except BaselineError:
            continue
        out[str(doc["name"])] = doc
    return out
