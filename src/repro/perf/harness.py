"""Dual-signal benchmark harness: wall time *and* deterministic work.

A wall-clock number alone cannot distinguish "the code got slower" from
"the machine was busy" — the noise floor of shared CI runners swamps
single-digit-percent regressions.  Following the measurement discipline
of the scheduling literature (separate *what work was done* from *how
long it took*), every benchmark here reports two signals per run:

* **robust wall-time statistics** — min / quartiles / median / IQR over
  several repeats, after warmups, so comparisons can use noise-aware
  thresholds instead of raw deltas;
* **deterministic work counters** — :class:`~repro.observability.metrics.Counter`
  values the instrumented hot paths emit (calls replayed, tasks
  prepared, moves evaluated, cache puts).  Counters depend only on the
  code and the inputs, never on the machine, so an *exact* mismatch
  against a baseline is a real behavioural change: either more work per
  run (an algorithmic regression) or less (an optimization that should
  refresh the baseline).

A benchmark is a **factory**: ``make(scale)`` performs setup (instance
generation, engine construction — excluded from timing) and returns the
work callable ``fn(metrics)`` that is timed.  The harness runs the
callable with a fresh :class:`~repro.observability.metrics.MetricsRegistry`
per repeat and requires the counter snapshot to be identical across
repeats — a benchmark whose work depends on wall time or global state
is rejected rather than silently measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..observability.metrics import Counter, Histogram, MetricsRegistry

__all__ = [
    "HarnessError",
    "TimingStats",
    "BenchResult",
    "robust_stats",
    "counters_of",
    "run_benchmark",
]


class HarnessError(RuntimeError):
    """A benchmark violated the harness contract (e.g. nondeterministic
    work counters across repeats)."""


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending sequence."""
    if not ordered:
        raise ValueError("quantile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class TimingStats:
    """Robust summary of the per-repeat wall times (seconds).

    ``iqr_s`` (``q3_s - q1_s``) is the noise yardstick the comparator
    scales its drift threshold by: a machine whose repeats spread wide
    gets a proportionally wider tolerance.
    """

    repeats: int
    times_s: Tuple[float, ...]
    min_s: float
    q1_s: float
    median_s: float
    q3_s: float
    max_s: float
    mean_s: float
    iqr_s: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "repeats": self.repeats,
            "times_s": list(self.times_s),
            "min_s": self.min_s,
            "q1_s": self.q1_s,
            "median_s": self.median_s,
            "q3_s": self.q3_s,
            "max_s": self.max_s,
            "mean_s": self.mean_s,
            "iqr_s": self.iqr_s,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "TimingStats":
        return cls(
            repeats=int(doc["repeats"]),
            times_s=tuple(float(t) for t in doc["times_s"]),
            min_s=float(doc["min_s"]),
            q1_s=float(doc["q1_s"]),
            median_s=float(doc["median_s"]),
            q3_s=float(doc["q3_s"]),
            max_s=float(doc["max_s"]),
            mean_s=float(doc["mean_s"]),
            iqr_s=float(doc["iqr_s"]),
        )


def robust_stats(times: Sequence[float]) -> TimingStats:
    """Summarize repeat wall times; raises ``ValueError`` when empty."""
    if not times:
        raise ValueError("no timing samples")
    ordered = sorted(times)
    q1 = _quantile(ordered, 0.25)
    q3 = _quantile(ordered, 0.75)
    return TimingStats(
        repeats=len(times),
        times_s=tuple(times),
        min_s=ordered[0],
        q1_s=q1,
        median_s=_quantile(ordered, 0.5),
        q3_s=q3,
        max_s=ordered[-1],
        mean_s=sum(times) / len(times),
        iqr_s=q3 - q1,
    )


def counters_of(registry: MetricsRegistry) -> Dict[str, int]:
    """The registry's deterministic work counts, as a flat name → int map.

    Counters map directly; histograms contribute their observation count
    as ``<name>.count`` (the observed *values* may be floats derived
    from virtual time, but how many observations happened is work).
    Gauges are excluded — last-value-wins carries no work semantics.
    """
    out: Dict[str, int] = {}
    for name in sorted(registry.snapshot()):
        metric = registry.get(name)
        if isinstance(metric, Counter):
            out[name] = metric.value
        elif isinstance(metric, Histogram):
            out[f"{name}.count"] = metric.count
    return out


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's dual-signal measurement."""

    name: str
    scale: float
    warmups: int
    timing: TimingStats
    counters: Dict[str, int]
    params: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scale": self.scale,
            "warmups": self.warmups,
            "timing": self.timing.as_dict(),
            "counters": dict(self.counters),
            "params": dict(self.params),
        }


def run_benchmark(
    name: str,
    make: Callable[[float], Callable[[MetricsRegistry], None]],
    scale: float,
    warmups: int = 1,
    repeats: int = 5,
    params: Optional[Dict[str, object]] = None,
) -> BenchResult:
    """Run one benchmark factory and collect both signals.

    Args:
        name: benchmark name (becomes ``BENCH_<name>.json``).
        make: setup factory; ``make(scale)`` returns the timed callable.
        scale: workload scale knob, recorded in the result (baselines
            with a different scale are incomparable).
        warmups: untimed runs before measurement (JIT-less Python still
            benefits: allocator, icache, branch predictors).
        repeats: timed runs.
        params: extra benchmark parameters recorded for comparability.

    Raises:
        HarnessError: if the counter snapshot differs between repeats —
            the benchmark's work is not deterministic and exact counter
            comparison would be meaningless.
        ValueError: for non-positive ``repeats`` or negative ``warmups``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmups < 0:
        raise ValueError(f"warmups must be >= 0, got {warmups}")
    fn = make(scale)
    for _ in range(warmups):
        fn(MetricsRegistry())
    times: list = []
    counters: Optional[Dict[str, int]] = None
    for repeat in range(repeats):
        registry = MetricsRegistry()
        started = time.perf_counter()
        fn(registry)
        times.append(time.perf_counter() - started)
        snap = counters_of(registry)
        if counters is None:
            counters = snap
        elif snap != counters:
            raise HarnessError(
                f"benchmark {name!r} is nondeterministic: repeat {repeat} "
                f"produced different work counters than repeat 0"
            )
    return BenchResult(
        name=name,
        scale=scale,
        warmups=warmups,
        timing=robust_stats(times),
        counters=counters or {},
        params=dict(params or {}),
    )
