"""Continuous-performance observability: measure, baseline, gate.

The reproduction's credibility rests on its own hot paths staying fast
(``simulate``/``FastSimulator``, IAR, the study grid), yet free-form
benchmark text under ``benchmarks/output/`` cannot be regression-gated.
This package closes the loop:

* :mod:`repro.perf.harness` — the dual-signal measurement harness:
  robust wall-time stats (min/median/IQR over repeats) *plus*
  deterministic work counters from the instrumented engines, so "slower
  because more work" is distinguishable from "slower per unit of work"
  (and both from machine noise);
* :mod:`repro.perf.suites` — registered benchmarks and named suites
  (``quick`` covers every instrumented hot path);
* :mod:`repro.perf.baseline` — schema-versioned ``BENCH_<name>.json``
  baseline files (machine fingerprint, scale, git revision, stats,
  counters), written atomically;
* :mod:`repro.perf.compare` — the noise-aware comparator: counters
  compare exactly (an increase fails, a decrease warns until the
  baseline is refreshed), wall time against an IQR-derived threshold
  (drift warns, never fails), cross-machine timing is not compared;
* :mod:`repro.perf.report` — Markdown/JSON rendering of a comparison.

Driven by ``repro bench {run,compare,report}``; see
``docs/BENCHMARKS.md`` for the workflow, including how to refresh
baselines after an intentional change.
"""

from .baseline import (
    SCHEMA_VERSION,
    BaselineError,
    baseline_path,
    git_revision,
    legacy_doc,
    load_baseline,
    load_baseline_dir,
    machine_fingerprint,
    result_doc,
    write_baseline,
    write_doc,
    write_legacy_sidecar,
)
from .compare import (
    IQR_SCALE,
    REL_FLOOR,
    Comparison,
    CounterDiff,
    compare_dirs,
    compare_doc,
    worst_status,
)
from .harness import (
    BenchResult,
    HarnessError,
    TimingStats,
    counters_of,
    robust_stats,
    run_benchmark,
)
from .report import render_markdown, render_text, report_json, to_json_text
from .suites import (
    DEFAULT_SCALE,
    REGISTRY,
    BenchSpec,
    get_suite,
    register,
    run_suite,
    suite_names,
)

__all__ = [
    "SCHEMA_VERSION",
    "BaselineError",
    "baseline_path",
    "git_revision",
    "legacy_doc",
    "load_baseline",
    "load_baseline_dir",
    "machine_fingerprint",
    "result_doc",
    "write_baseline",
    "write_doc",
    "write_legacy_sidecar",
    "IQR_SCALE",
    "REL_FLOOR",
    "Comparison",
    "CounterDiff",
    "compare_dirs",
    "compare_doc",
    "worst_status",
    "BenchResult",
    "HarnessError",
    "TimingStats",
    "counters_of",
    "robust_stats",
    "run_benchmark",
    "render_markdown",
    "render_text",
    "report_json",
    "to_json_text",
    "DEFAULT_SCALE",
    "REGISTRY",
    "BenchSpec",
    "get_suite",
    "register",
    "run_suite",
    "suite_names",
]
