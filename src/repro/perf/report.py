"""Render benchmark comparisons as Markdown and JSON.

The Markdown report is what a human reads on a PR (one row per
benchmark, worst status first); the JSON report is what the CI
artifact and downstream tooling consume.  Both are pure functions of
the comparison list so ``repro bench compare`` and ``repro bench
report`` cannot disagree.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from .compare import Comparison, worst_status

__all__ = ["report_json", "render_markdown", "render_text", "to_json_text"]

_STATUS_ICON = {"pass": "✓", "warn": "~", "fail": "✗", "skip": "-"}
_STATUS_ORDER = {"fail": 0, "warn": 1, "skip": 2, "pass": 3}


def _ms(value: Optional[float]) -> str:
    return f"{value * 1e3:.2f}" if value is not None else "—"


def _ratio(comparison: Comparison) -> str:
    ratio = comparison.time_ratio
    if ratio is None:
        return "—"
    return f"{ratio:.2f}x"


def report_json(comparisons: List[Comparison]) -> Dict[str, object]:
    """Machine-readable report document."""
    counts: Dict[str, int] = {}
    for comparison in comparisons:
        counts[comparison.status] = counts.get(comparison.status, 0) + 1
    return {
        "generated_at": time.time(),
        "overall": worst_status(comparisons),
        "status_counts": counts,
        "comparisons": [c.as_dict() for c in comparisons],
    }


def _sorted(comparisons: List[Comparison]) -> List[Comparison]:
    return sorted(
        comparisons, key=lambda c: (_STATUS_ORDER[c.status], c.name)
    )


def render_markdown(comparisons: List[Comparison]) -> str:
    """GitHub-flavoured Markdown report, worst status first."""
    lines = [
        "# Benchmark comparison",
        "",
        f"Overall: **{worst_status(comparisons)}** "
        f"({len(comparisons)} benchmark(s))",
        "",
        "| benchmark | status | median (base → cur, ms) | ratio | counters |",
        "|---|---|---|---|---|",
    ]
    for c in _sorted(comparisons):
        changed = sum(1 for d in c.counter_diffs)
        regressed = sum(1 for d in c.counter_diffs if d.regressed)
        if regressed:
            counter_cell = f"{regressed} regressed / {changed} changed"
        elif changed:
            counter_cell = f"{changed} changed"
        else:
            counter_cell = "exact match"
        lines.append(
            f"| {c.name} | {c.status} | "
            f"{_ms(c.baseline_median_s)} → {_ms(c.current_median_s)} | "
            f"{_ratio(c)} | {counter_cell} |"
        )
    lines.append("")
    for c in _sorted(comparisons):
        if c.status == "pass":
            continue
        lines.append(f"## {c.name} — {c.status}")
        lines.append("")
        for note in c.notes:
            lines.append(f"- {note}")
        for diff in c.counter_diffs:
            lines.append(
                f"- `{diff.counter}`: {diff.baseline} → {diff.current}"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_text(comparisons: List[Comparison]) -> str:
    """Terminal-friendly one-line-per-benchmark summary."""
    lines = []
    for c in _sorted(comparisons):
        icon = _STATUS_ICON.get(c.status, "?")
        timing = (
            f"{_ms(c.baseline_median_s)} -> {_ms(c.current_median_s)} ms"
            if c.current_median_s is not None
            else "no timing"
        )
        lines.append(f"{icon} {c.name:<24} {c.status:<5} {timing}")
        for note in c.notes:
            if c.status != "pass":
                lines.append(f"    {note}")
    lines.append(f"overall: {worst_status(comparisons)}")
    return "\n".join(lines)


def to_json_text(comparisons: List[Comparison]) -> str:
    return json.dumps(report_json(comparisons), indent=2, sort_keys=True) + "\n"
