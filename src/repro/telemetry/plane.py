"""The telemetry plane: one object bundling metrics, SLOs, and flight data.

``ServiceTelemetry`` is what the CLI attaches to a
:class:`~repro.service.state.DecisionEngine` and its transports when
telemetry is enabled.  It owns two registries — the tagged wall-clock
registry behind :class:`ServiceMetrics` and the SLO tracker's
per-tenant registry — both strictly separate from the engine's own
deterministic metrics registry, so attaching or detaching the plane
never changes an engine counter, a decision, or a journal byte.

Every ``note_*`` hook is a plain synchronous call that tolerates being
invoked from either the asyncio server or the inproc replay loop, and
the whole object is inert until something calls it: constructing a
plane costs a few small allocations and no threads, files, or sockets.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.observability.metrics import MetricsRegistry

from .flight import FlightRecorder
from .service_metrics import ServiceMetrics
from .slo import SloTracker

__all__ = ["ServiceTelemetry"]

_ERROR_LOG_SIZE = 64


class ServiceTelemetry:
    """Wall-clock observability plane for one decision engine + transports."""

    def __init__(
        self,
        shards: int = 8,
        flight_capacity: int = 256,
        flight_dir: Optional[str] = None,
        slo_window_s: float = 60.0,
        clock: Callable[[], float] = time.perf_counter,
        wall: Callable[[], float] = time.time,
    ) -> None:
        self.metrics = ServiceMetrics(MetricsRegistry(), clock=clock)
        self.slo = SloTracker(window_s=slo_window_s, wall=wall)
        self.flight = FlightRecorder(
            shards=shards, capacity=flight_capacity, wall=wall
        )
        self.flight_dir = flight_dir
        self.wall = wall
        self.started_wall = wall()
        self.draining = False
        self.errors: Deque[Dict[str, object]] = deque(maxlen=_ERROR_LOG_SIZE)

    # -- engine hooks (called from DecisionEngine when attached) ---------
    def note_decision(
        self,
        event: Dict[str, object],
        record: Dict[str, object],
        shard: int,
        tally: Optional[Dict[str, int]],
    ) -> None:
        """One decision: tagged counters, chain depth, and flight entry."""

        tenant = record["tenant"]
        self.metrics.count("service.decisions", shard=shard, tenant=tenant)
        if record["action"] == "compile":
            self.metrics.count("service.promotions", level=record["level"])
        self.metrics.record("service.fault_chain_depth", record["attempts"])
        self.flight.record(
            shard,
            {
                "corr": record.get("corr"),
                "request": dict(event),
                "decision": dict(record),
                "faults": dict(tally) if tally else {},
            },
        )

    def note_cache(self, tenant: str, shard: int, hit: bool) -> None:
        name = "service.cache.hits" if hit else "service.cache.misses"
        self.metrics.count(name, shard=shard, tenant=tenant)

    # -- transport hooks -------------------------------------------------
    def note_latency(self, tenant: str, latency_ms: float) -> None:
        self.slo.observe_decision(tenant, latency_ms)

    def note_rejection(self, tenant: str) -> None:
        self.metrics.count("service.rejected", tenant=tenant)
        self.slo.observe_rejection(tenant)

    def note_queue_depth(self, depth: int) -> None:
        # Batch sizes and per-request latency already land in the
        # engine's deterministic registry (``service.batch_size``,
        # ``service.latency_ms``) and are rendered alongside on
        # ``/metricsz``; the plane only adds what that registry cannot
        # carry, like this live gauge.
        self.metrics.gauge("service.queue_depth", depth)

    def note_error(self, exc: BaseException, where: str) -> Dict[str, object]:
        """Count and retain a structured error record; return it."""

        record = self.metrics.count_error(exc, where)
        record["wall_ts"] = self.wall()
        self.errors.append(record)
        return record

    # -- views -----------------------------------------------------------
    def uptime_s(self) -> float:
        return max(0.0, self.wall() - self.started_wall)

    def registries(self) -> Tuple[MetricsRegistry, MetricsRegistry]:
        """The tagged wall-clock registry and the SLO registry."""

        return self.metrics.registry, self.slo.registry

    def snapshot(self) -> Dict[str, object]:
        """Merged plain-data snapshot of both telemetry registries."""

        merged = dict(self.metrics.registry.snapshot())
        merged.update(self.slo.registry.snapshot())
        return dict(sorted(merged.items()))

    def dump_flight(self, reason: str) -> Optional[str]:
        """Dump the flight rings if a ``flight_dir`` is configured."""

        if self.flight_dir is None:
            return None
        return self.flight.dump(self.flight_dir, reason)
