"""Per-tenant SLO tracking: decide-latency quantiles and rejection rate.

Two measurement paths, deliberately kept apart:

* **Cumulative** — per-tenant :class:`Histogram` instruments (the PR 4
  deterministic reservoir) plus decision/rejection counters, living in
  the tracker's own registry under tagged names
  (``service.tenant.decide_latency_ms{tenant=...}``).  The *mechanism*
  is deterministic — seeded reservoirs, sorted snapshots — which is
  what lets ``/metricsz`` render from a reproducible structure even
  though latency *values* are wall-clock.
* **Sliding window** — bounded deques of ``(wall_ts, latency_ms)``
  trimmed to the last ``window_s`` seconds, answering "what is the p99
  *right now*" for ``/statusz`` and ``repro top``.

The tracker is fed by the transports (server worker, inproc replay),
never by :class:`~repro.service.state.DecisionEngine` — decisions can
not depend on it.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.observability.metrics import Histogram, MetricsRegistry

from .service_metrics import metric_key

__all__ = ["SloTracker"]

_WINDOW_SAMPLES = 4096


def _window_percentile(values, q: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class SloTracker:
    """Track per-tenant decide latency and rejection rate."""

    def __init__(
        self,
        window_s: float = 60.0,
        wall: Callable[[], float] = time.time,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = float(window_s)
        self.wall = wall
        self.registry = registry if registry is not None else MetricsRegistry()
        self._latency: Dict[str, Histogram] = {}
        self._window: Dict[str, Deque[Tuple[float, float]]] = {}
        self._window_rejects: Dict[str, Deque[float]] = {}

    # -- feeding ---------------------------------------------------------
    def observe_decision(self, tenant: str, latency_ms: float) -> None:
        histogram = self._latency.get(tenant)
        if histogram is None:
            histogram = self.registry.histogram(
                metric_key("service.tenant.decide_latency_ms", tenant=tenant)
            )
            self._latency[tenant] = histogram
            self._window[tenant] = deque(maxlen=_WINDOW_SAMPLES)
        histogram.record(latency_ms)
        self.registry.counter(
            metric_key("service.tenant.decisions", tenant=tenant)
        ).inc()
        self._window[tenant].append((self.wall(), latency_ms))

    def observe_rejection(self, tenant: str) -> None:
        self.registry.counter(
            metric_key("service.tenant.rejections", tenant=tenant)
        ).inc()
        window = self._window_rejects.get(tenant)
        if window is None:
            window = self._window_rejects[tenant] = deque(maxlen=_WINDOW_SAMPLES)
        window.append(self.wall())

    # -- reading ---------------------------------------------------------
    def tenants(self):
        return sorted(set(self._latency) | set(self._window_rejects))

    def _trimmed(self, tenant: str, now: float):
        cutoff = now - self.window_s
        window = self._window.get(tenant, ())
        while window and window[0][0] < cutoff:
            window.popleft()
        rejects = self._window_rejects.get(tenant, ())
        while rejects and rejects[0] < cutoff:
            rejects.popleft()
        return window, rejects

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant SLO view: cumulative quantiles, counts, rates, and
        the live sliding-window equivalents under ``"window"``."""

        now = self.wall()
        out: Dict[str, Dict[str, object]] = {}
        for tenant in self.tenants():
            histogram = self._latency.get(tenant)
            decisions = histogram.count if histogram is not None else 0
            rejections = 0
            counter = self.registry.get(
                metric_key("service.tenant.rejections", tenant=tenant)
            )
            if counter is not None:
                rejections = counter.value
            attempts = decisions + rejections
            window, rejects = self._trimmed(tenant, now)
            latencies = [latency for _, latency in window]
            window_attempts = len(latencies) + len(rejects)
            out[tenant] = {
                "decisions": decisions,
                "rejections": rejections,
                "rejection_rate": (rejections / attempts) if attempts else 0.0,
                "p50_ms": histogram.percentile(50.0) if histogram else None,
                "p99_ms": histogram.percentile(99.0) if histogram else None,
                "window": {
                    "seconds": self.window_s,
                    "decisions": len(latencies),
                    "rejections": len(rejects),
                    "rejection_rate": (
                        (len(rejects) / window_attempts) if window_attempts else 0.0
                    ),
                    "p50_ms": _window_percentile(latencies, 50.0),
                    "p99_ms": _window_percentile(latencies, 99.0),
                },
            }
        return out
