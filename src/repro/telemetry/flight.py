"""Black-box flight recorder: last-N request/decision ring per shard.

The recorder keeps a bounded ring buffer per engine shard holding the
most recent fully-decoded requests, the decisions they produced, and
the fault-injector tally at decision time.  On crash, drain, or an
admin trigger the rings are dumped **atomically** (write to a temp file
in the same directory, then :func:`os.replace`) as a timestamped JSONL
bundle: one header line, then entries sorted by global arrival order.
``repro telemetry inspect`` reads bundles back via
:func:`read_flight_bundle`.

Recording is O(1) per decision (a dict copy into a ``deque``) and only
happens when a telemetry plane is attached — the telemetry-off path
never touches this module.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple

__all__ = ["FlightRecorder", "read_flight_bundle"]

FLIGHT_KIND = "repro-flight"
FLIGHT_VERSION = 1


class FlightRecorder:
    """Bounded per-shard ring buffer of decoded requests and decisions."""

    def __init__(
        self,
        shards: int = 8,
        capacity: int = 256,
        wall: Callable[[], float] = time.time,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.shards = shards
        self.capacity = capacity
        self.wall = wall
        self.recorded = 0
        self.dumps = 0
        self._rings: List[Deque[Dict[str, object]]] = [
            deque(maxlen=capacity) for _ in range(shards)
        ]

    def record(self, shard: int, entry: Dict[str, object]) -> None:
        """Append ``entry`` to ``shard``'s ring, stamping order and time."""

        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} out of range [0, {self.shards})")
        self.recorded += 1
        stamped = dict(entry)
        stamped["order"] = self.recorded
        stamped["shard"] = shard
        stamped["wall_ts"] = self.wall()
        self._rings[shard].append(stamped)

    def entries(self) -> Iterator[Dict[str, object]]:
        """All retained entries, in global arrival order."""

        merged: List[Dict[str, object]] = []
        for ring in self._rings:
            merged.extend(ring)
        merged.sort(key=lambda entry: entry["order"])
        return iter(merged)

    def occupancy(self) -> List[int]:
        return [len(ring) for ring in self._rings]

    def snapshot(self) -> Dict[str, object]:
        return {
            "shards": self.shards,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "retained": sum(self.occupancy()),
            "dumps": self.dumps,
            "occupancy": self.occupancy(),
        }

    def dump(self, directory: str, reason: str) -> str:
        """Atomically write a timestamped JSONL bundle; return its path."""

        os.makedirs(directory, exist_ok=True)
        now = self.wall()
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(now))
        base = f"flight-{stamp}-{reason}"
        path = os.path.join(directory, f"{base}.jsonl")
        suffix = 0
        while os.path.exists(path):
            suffix += 1
            path = os.path.join(directory, f"{base}.{suffix}.jsonl")
        entries = list(self.entries())
        header = {
            "kind": FLIGHT_KIND,
            "version": FLIGHT_VERSION,
            "reason": reason,
            "created_unix": now,
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
            "shards": self.shards,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dumped": len(entries),
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(header, sort_keys=True) + "\n")
                for entry in entries:
                    fh.write(json.dumps(entry, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        self.dumps += 1
        return path


def read_flight_bundle(
    path: str,
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Read and validate a flight bundle; return ``(header, entries)``.

    Raises :class:`ValueError` on a missing/foreign header, a version
    from the future, an entry/header count mismatch, or out-of-order
    entries — a dump that fails here is corrupt, not merely old.
    """

    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().split("\n") if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty flight bundle")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: unreadable header: {exc}") from None
    if not isinstance(header, dict) or header.get("kind") != FLIGHT_KIND:
        raise ValueError(f"{path}: not a {FLIGHT_KIND} bundle")
    version = header.get("version")
    if not isinstance(version, int) or version > FLIGHT_VERSION:
        raise ValueError(f"{path}: unsupported flight version {version!r}")
    entries = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: unreadable entry: {exc}") from None
        if not isinstance(entry, dict) or "order" not in entry:
            raise ValueError(f"{path}:{lineno}: entry missing 'order'")
        if entries and entry["order"] <= entries[-1]["order"]:
            raise ValueError(f"{path}:{lineno}: entries out of order")
        entries.append(entry)
    dumped = header.get("dumped")
    if isinstance(dumped, int) and dumped != len(entries):
        raise ValueError(
            f"{path}: header says {dumped} entries, found {len(entries)}"
        )
    return header, entries
