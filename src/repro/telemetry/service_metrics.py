"""Tagged wall-clock metrics for the live decision service.

Everything in this module lives on the *wall-clock* side of the
observability contract (see ``docs/OBSERVABILITY.md``): it measures the
real server — queue wait, decide latency, batch cadence — and therefore
its *values* are not reproducible across runs.  What **is** deterministic
is the *shape*: which metrics exist, their label sets, and every counter
that tallies decisions rather than seconds.  Nothing here is ever
consulted by :class:`repro.service.state.DecisionEngine`, which is how
decision logs stay bitwise identical with telemetry on or off.

Tags ride inside the metric *name* using a canonical
``base{key=value,...}`` grammar (label keys sorted), so the untyped
:class:`repro.observability.metrics.MetricsRegistry` needs no schema
change and snapshots stay plain sorted dicts.  ``split_metric_key``
undoes the encoding for renderers such as
:func:`repro.telemetry.promtext.render_prometheus`.
"""

from __future__ import annotations

import time
import traceback
from typing import Callable, Dict, Optional, Tuple

from repro.observability.metrics import MetricsRegistry

__all__ = [
    "metric_key",
    "split_metric_key",
    "structured_error",
    "summarize_error",
    "RequestSpan",
    "ServiceMetrics",
]

_TRACEBACK_FRAMES = 3


def metric_key(name: str, **labels: object) -> str:
    """Encode ``name`` plus ``labels`` into a single registry key.

    Labels are sorted by key so the same logical series always maps to
    the same string: ``metric_key("d", b=1, a=2) == "d{a=2,b=1}"``.
    Label values must not contain ``{``, ``}``, ``,`` or ``=`` (tenant
    ids, shard indices, level numbers and exception type names never
    do).
    """

    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        if any(ch in value for ch in "{}=,"):
            raise ValueError(f"label value {value!r} contains a reserved character")
        parts.append(f"{key}={value}")
    return f"{name}{{{','.join(parts)}}}"


def split_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`metric_key` into ``(base_name, labels)``."""

    if not key.endswith("}") or "{" not in key:
        return key, {}
    base, _, raw = key[:-1].partition("{")
    labels: Dict[str, str] = {}
    for part in raw.split(","):
        if not part:
            continue
        lkey, sep, lvalue = part.partition("=")
        if not sep or not lkey:
            raise ValueError(f"malformed metric key {key!r}")
        labels[lkey] = lvalue
    return base, labels


def structured_error(exc: BaseException, where: str) -> Dict[str, object]:
    """Render an exception as a structured record instead of a bare string.

    Mirrors the failure records of ``repro.analysis.experiments``: the
    exception type, its message, and the last few stack frames as
    ``"file:line in name"`` strings — enough to debug from a status page
    or a flight-recorder bundle without a full traceback dump.
    """

    frames = traceback.extract_tb(exc.__traceback__)[-_TRACEBACK_FRAMES:]
    return {
        "where": where,
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": [
            f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} in {frame.name}"
            for frame in frames
        ],
    }


def summarize_error(record: Dict[str, object]) -> str:
    """One-line summary of a :func:`structured_error` record."""

    return f"{record.get('where')}: {record.get('type')}: {record.get('message')}"


class RequestSpan:
    """Wall-clock lifecycle of one request: enqueue→admit→decide→respond.

    The span is created when the server reads the request off the wire
    and is closed when the response hits the socket buffer.  Each stage
    boundary lands in a histogram (``service.span.queue_ms``,
    ``service.span.decide_ms``, ``service.span.respond_ms`` and the
    per-tenant ``service.span.total_ms{tenant=...}``), correlated with
    the decision journal through ``corr``.
    """

    __slots__ = ("corr", "tenant", "enqueued", "admitted", "decided", "responded")

    def __init__(self, corr: str, tenant: str, enqueued: float) -> None:
        self.corr = corr
        self.tenant = tenant
        self.enqueued = enqueued
        self.admitted: Optional[float] = None
        self.decided: Optional[float] = None
        self.responded: Optional[float] = None


class ServiceMetrics:
    """Tagged counters, gauges and histograms for the service hot path.

    A thin facade over :class:`MetricsRegistry`; "lock-free in asyncio"
    because every mutation is a plain synchronous dict operation that
    never awaits, so no two coroutines ever interleave inside an
    update.  Instrument handles are memoized per encoded key to keep the
    telemetry-on overhead at two dict lookups per event.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.clock = clock
        self._counters: Dict[str, object] = {}
        self._gauges: Dict[str, object] = {}
        self._histograms: Dict[str, object] = {}

    # -- instruments -----------------------------------------------------
    def count(self, name: str, amount: int = 1, **labels: object) -> None:
        key = metric_key(name, **labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = self.registry.counter(key)
        counter.inc(amount)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        key = metric_key(name, **labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = self.registry.gauge(key)
        gauge.set(value)

    def record(self, name: str, value: float, **labels: object) -> None:
        key = metric_key(name, **labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = self.registry.histogram(key)
        histogram.record(value)

    # -- request lifecycle spans ----------------------------------------
    def begin_span(self, corr: str, tenant: str) -> RequestSpan:
        return RequestSpan(corr, tenant, self.clock())

    def mark_admitted(self, span: RequestSpan) -> None:
        span.admitted = self.clock()

    def mark_decided(self, span: RequestSpan) -> None:
        span.decided = self.clock()

    def finish_span(self, span: RequestSpan) -> None:
        """Close the span and record each stage that actually happened."""

        span.responded = self.clock()
        admitted = span.admitted if span.admitted is not None else span.responded
        self.record("service.span.queue_ms", (admitted - span.enqueued) * 1e3)
        if span.decided is not None:
            self.record("service.span.decide_ms", (span.decided - admitted) * 1e3)
            self.record(
                "service.span.respond_ms", (span.responded - span.decided) * 1e3
            )
        self.record(
            "service.span.total_ms",
            (span.responded - span.enqueued) * 1e3,
            tenant=span.tenant,
        )

    # -- structured errors ----------------------------------------------
    def count_error(self, exc: BaseException, where: str) -> Dict[str, object]:
        """Count ``service.errors{type=...}`` and return the structured record."""

        record = structured_error(exc, where)
        self.count("service.errors", type=record["type"])
        return record

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return self.registry.snapshot()
