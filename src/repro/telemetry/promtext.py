"""Prometheus text exposition rendering and validation.

``render_prometheus`` turns one or more
:class:`~repro.observability.metrics.MetricsRegistry` objects into the
`text exposition format`_ served by ``/metricsz``: counters become
``*_total`` counter families, gauges become gauges, and histograms
become summaries with ``quantile`` labels from the deterministic
reservoir.  Tagged names produced by
:func:`repro.telemetry.service_metrics.metric_key` are decoded back
into label sets.

``validate_exposition`` is the matching strict parser used by tests and
the ``telemetry-smoke`` CI job: it checks name/label/value grammar,
``# TYPE`` placement and uniqueness, and duplicate samples, and returns
the number of samples so callers can assert non-emptiness.

.. _text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry

from .service_metrics import split_metric_key

__all__ = ["render_prometheus", "validate_exposition"]

_QUANTILES = ((50.0, "0.5"), (90.0, "0.9"), (99.0, "0.99"))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)
_LABEL_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\["\\n])*)"$'
)
_VALUE_RE = re.compile(r"^(?:[+-]?Inf|NaN|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)$")


def _sanitize(name: str) -> str:
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if isinstance(value, bool) or not isinstance(value, float):
        return str(int(value))
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value)


def _labelset(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape(labels[key])}"' for key in sorted(labels))
    return "{" + body + "}"


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Render registries as Prometheus text exposition (newline-terminated).

    Families are emitted sorted by exposition name; the same family may
    draw samples from several registries (e.g. the engine's untagged
    registry plus the telemetry plane's tagged one) as long as every
    contributor agrees on the instrument kind.
    """

    families: Dict[str, Tuple[str, str, List[str]]] = {}
    for registry in registries:
        for key in registry.names():
            metric = registry.get(key)
            base, labels = split_metric_key(key)
            if isinstance(metric, Counter):
                fam = _sanitize(base)
                if not fam.endswith("_total"):
                    fam += "_total"
                kind = "counter"
                samples = [f"{fam}{_labelset(labels)} {_fmt(metric.value)}"]
            elif isinstance(metric, Gauge):
                fam = _sanitize(base)
                kind = "gauge"
                samples = [f"{fam}{_labelset(labels)} {_fmt(metric.value)}"]
            elif isinstance(metric, Histogram):
                fam = _sanitize(base)
                kind = "summary"
                samples = []
                for q, qlabel in _QUANTILES:
                    value = metric.percentile(q)
                    if value is None:
                        continue
                    qlabels = dict(labels)
                    qlabels["quantile"] = qlabel
                    samples.append(f"{fam}{_labelset(qlabels)} {_fmt(float(value))}")
                samples.append(f"{fam}_sum{_labelset(labels)} {_fmt(metric.total)}")
                samples.append(f"{fam}_count{_labelset(labels)} {_fmt(metric.count)}")
            else:  # pragma: no cover - registry only stores the three kinds
                continue
            existing = families.get(fam)
            if existing is None:
                families[fam] = (kind, base, samples)
            elif existing[0] != kind:
                raise ValueError(
                    f"metric family {fam!r} rendered as both "
                    f"{existing[0]} and {kind}"
                )
            else:
                existing[2].extend(samples)
    lines: List[str] = []
    identities = set()
    for fam in sorted(families):
        kind, base, samples = families[fam]
        lines.append(f"# HELP {fam} repro metric {base}")
        lines.append(f"# TYPE {fam} {kind}")
        for sample in sorted(samples):
            identity = sample.rsplit(" ", 1)[0]
            if identity in identities:
                raise ValueError(
                    f"duplicate sample {identity!r}: the same series is "
                    f"registered in more than one registry"
                )
            identities.add(identity)
            lines.append(sample)
    return "\n".join(lines) + "\n" if lines else ""


def _family_of(name: str, types: Dict[str, str]) -> str:
    """Map a sample name onto its declared family, if any."""

    if name in types:
        return name
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix):
            stem = name[: -len(suffix)]
            if types.get(stem) in ("summary", "histogram"):
                return stem
    return name


def validate_exposition(text: str) -> int:
    """Strictly validate Prometheus text exposition; return the sample count.

    Raises :class:`ValueError` (with a line number) on grammar errors,
    duplicate or misplaced ``# TYPE`` lines, invalid label escapes,
    un-parseable values, or duplicate samples.
    """

    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    types: Dict[str, str] = {}
    seen_samples: Dict[str, int] = {}
    seen_families = set()
    count = 0
    for lineno, line in enumerate(text.split("\n")[:-1], start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: malformed TYPE line")
                _, _, name, kind = parts
                if not _NAME_RE.match(name):
                    raise ValueError(f"line {lineno}: invalid metric name {name!r}")
                if kind not in ("counter", "gauge", "summary", "histogram", "untyped"):
                    raise ValueError(f"line {lineno}: invalid metric type {kind!r}")
                if name in types:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
                if name in seen_families:
                    raise ValueError(
                        f"line {lineno}: TYPE for {name!r} after its samples"
                    )
                types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        raw_labels = match.group("labels")
        identity = name
        if raw_labels is not None:
            if raw_labels.strip() == "":
                raise ValueError(f"line {lineno}: empty label set")
            label_names = set()
            for part in _split_labels(raw_labels, lineno):
                lmatch = _LABEL_RE.match(part)
                if not lmatch:
                    raise ValueError(f"line {lineno}: malformed label {part!r}")
                lname = lmatch.group("name")
                if not _LABEL_NAME_RE.match(lname):
                    raise ValueError(f"line {lineno}: invalid label name {lname!r}")
                if lname in label_names:
                    raise ValueError(f"line {lineno}: duplicate label {lname!r}")
                label_names.add(lname)
            parts = sorted(_split_labels(raw_labels, lineno))
            identity = f"{name}{{{','.join(parts)}}}"
        if not _VALUE_RE.match(match.group("value")):
            raise ValueError(
                f"line {lineno}: invalid value {match.group('value')!r}"
            )
        if identity in seen_samples:
            raise ValueError(
                f"line {lineno}: duplicate sample (first at line "
                f"{seen_samples[identity]}): {identity}"
            )
        seen_samples[identity] = lineno
        seen_families.add(_family_of(name, types))
        count += 1
    return count


def _split_labels(raw: str, lineno: int) -> List[str]:
    """Split ``a="x",b="y"`` respecting escaped quotes inside values."""

    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in raw:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if in_quotes or escaped:
        raise ValueError(f"line {lineno}: unterminated label value")
    if current or not parts:
        parts.append("".join(current))
    return parts
