"""The admin plane: ``/healthz``, ``/statusz``, ``/metricsz``, ``/flightz``.

The decision server speaks JSONL, but operators speak ``curl``.  Rather
than opening a second port, the server sniffs the first bytes of each
connection line: an HTTP request line (``GET /statusz HTTP/1.1``) is
routed here, answered with a minimal ``Connection: close`` HTTP/1.0
response, and the connection ends — JSONL clients never notice.  The
plane is read-only except for ``/flightz/dump``, which triggers a
flight-recorder bundle exactly like SIGUSR1 does.

Endpoints:

* ``/healthz`` — liveness: ``{"ok": true}`` (503 once draining).
* ``/statusz`` — JSON: uptime, queue/admission state, engine summary,
  shard occupancy, drain state, per-tenant SLOs, recent errors.
* ``/metricsz`` — Prometheus text exposition rendered from the engine's
  deterministic registry plus both telemetry registries.
* ``/flightz`` — flight-recorder ring snapshot; ``/flightz/dump``
  dumps a bundle and returns its path.

No HTTP library is used (or available): :func:`http_get` is the
matching ~30-line client for ``repro top`` and the CI smoke job.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Optional, Tuple

from .promtext import render_prometheus

__all__ = ["AdminPlane", "parse_http_request_line", "http_response", "http_get"]

_STATUS_TEXT = {
    200: "OK",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    503: "Service Unavailable",
}
_HTTP_METHODS = ("GET", "HEAD", "POST")

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


def parse_http_request_line(line: bytes) -> Optional[Tuple[str, str]]:
    """``(method, path)`` if ``line`` is an HTTP request line, else ``None``."""

    try:
        text = line.decode("ascii").strip()
    except UnicodeDecodeError:
        return None
    parts = text.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        return None
    method, path = parts[0], parts[1]
    if method not in _HTTP_METHODS or not path.startswith("/"):
        return None
    return method, path


def http_response(status: int, content_type: str, body: bytes) -> bytes:
    """A complete minimal HTTP/1.0 response, connection-close."""

    head = (
        f"HTTP/1.0 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


class AdminPlane:
    """Route admin HTTP requests against a live :class:`DecisionServer`."""

    def __init__(self, server) -> None:
        self.server = server

    # -- endpoint bodies -------------------------------------------------
    def _draining(self) -> bool:
        telemetry = self.server.telemetry
        if telemetry is not None and telemetry.draining:
            return True
        stopping = self.server._stopping
        return bool(stopping is not None and stopping.is_set())

    def healthz(self) -> Tuple[int, Dict[str, object]]:
        draining = self._draining()
        status = 503 if draining else 200
        return status, {"ok": not draining, "draining": draining}

    def statusz(self) -> Dict[str, object]:
        server = self.server
        engine = server.engine
        telemetry = server.telemetry
        queue = server._queue
        doc: Dict[str, object] = {
            "ok": True,
            "draining": self._draining(),
            "queue": {
                "depth": queue.qsize() if queue is not None else 0,
                "limit": server.config.queue_limit,
                "admission_limit": server.config.admission_limit,
                "batch_max": server.config.batch_max,
                "max_batch_seen": server.max_batch_seen,
            },
            "rejected": server.rejected,
            "summary": engine.summary(),
            "shard_occupancy": [len(shard) for shard in engine.shards],
            "telemetry": {"enabled": telemetry is not None},
        }
        if telemetry is not None:
            doc["uptime_s"] = telemetry.uptime_s()
            doc["slo"] = telemetry.slo.snapshot()
            doc["flight"] = telemetry.flight.snapshot()
            doc["errors"] = list(telemetry.errors)
            doc["telemetry"]["flight_dir"] = telemetry.flight_dir
        return doc

    def metricsz(self) -> str:
        registries = []
        if self.server.engine.metrics is not None:
            registries.append(self.server.engine.metrics)
        telemetry = self.server.telemetry
        if telemetry is not None:
            registries.extend(telemetry.registries())
        return render_prometheus(*registries)

    def flightz(self) -> Tuple[int, Dict[str, object]]:
        telemetry = self.server.telemetry
        if telemetry is None:
            return 409, {"ok": False, "error": "telemetry disabled"}
        return 200, {"ok": True, "flight": telemetry.flight.snapshot()}

    def flightz_dump(self) -> Tuple[int, Dict[str, object]]:
        telemetry = self.server.telemetry
        if telemetry is None:
            return 409, {"ok": False, "error": "telemetry disabled"}
        if telemetry.flight_dir is None:
            return 409, {"ok": False, "error": "no --flight-dir configured"}
        path = telemetry.dump_flight("admin")
        return 200, {"ok": True, "path": path}

    # -- dispatch --------------------------------------------------------
    def handle(self, method: str, path: str) -> bytes:
        """Answer one admin request as raw HTTP response bytes."""

        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "POST" and path != "/flightz/dump":
            body = {"ok": False, "error": "POST only allowed on /flightz/dump"}
            return self._json(405, body, method)
        if path == "/healthz":
            status, doc = self.healthz()
            return self._json(status, doc, method)
        if path == "/statusz":
            return self._json(200, self.statusz(), method)
        if path == "/metricsz":
            body = self.metricsz().encode("utf-8")
            if method == "HEAD":
                body = b""
            return http_response(200, PROM_CONTENT_TYPE, body)
        if path == "/flightz":
            status, doc = self.flightz()
            return self._json(status, doc, method)
        if path == "/flightz/dump":
            status, doc = self.flightz_dump()
            return self._json(status, doc, method)
        return self._json(404, {"ok": False, "error": f"no such path {path}"}, method)

    @staticmethod
    def _json(status: int, doc: Dict[str, object], method: str = "GET") -> bytes:
        if method == "HEAD":
            body = b""
        else:
            body = json.dumps(doc, sort_keys=True).encode("utf-8") + b"\n"
        return http_response(status, JSON_CONTENT_TYPE, body)


def http_get(
    host: str, port: int, path: str, timeout: float = 5.0
) -> Tuple[int, bytes]:
    """Minimal HTTP GET against the admin plane: ``(status, body)``."""

    with socket.create_connection((host, port), timeout=timeout) as sock:
        request = f"GET {path} HTTP/1.0\r\nHost: {host}\r\nConnection: close\r\n\r\n"
        sock.sendall(request.encode("ascii"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("ascii", "replace")
    parts = status_line.split(" ")
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ValueError(f"malformed HTTP response: {status_line!r}")
    return int(parts[1]), body
