"""Wall-clock telemetry for the live decision service.

``repro.observability`` measures the *simulated* timeline (virtual
clock, deterministic, part of the experiment); ``repro.telemetry``
measures the *server itself* (wall clock, operational, never part of a
decision).  The hard rule separating them: nothing in this package is
ever read by :class:`repro.service.state.DecisionEngine`, so decision
logs are bitwise identical with telemetry on or off — the property the
``telemetry-smoke`` CI job enforces with ``cmp``.

The pieces:

* :class:`ServiceTelemetry` — the plane the CLI attaches: tagged
  metrics, per-tenant SLOs, the flight recorder, drain state.
* :class:`ServiceMetrics` / :class:`RequestSpan` — tagged counters,
  gauges, histograms, and enqueue→admit→decide→respond spans.
* :class:`SloTracker` — p50/p99 decide latency and rejection rate,
  cumulative and over a sliding window.
* :class:`FlightRecorder` / :func:`read_flight_bundle` — the black-box
  last-N ring per shard and its JSONL bundle format.
* :class:`AdminPlane` / :func:`http_get` — ``/healthz``, ``/statusz``,
  ``/metricsz``, ``/flightz`` on the server's port.
* :func:`render_prometheus` / :func:`validate_exposition` — Prometheus
  text exposition out of metric registries, and its strict parser.
"""

from .admin import AdminPlane, http_get, http_response, parse_http_request_line
from .flight import FlightRecorder, read_flight_bundle
from .plane import ServiceTelemetry
from .promtext import render_prometheus, validate_exposition
from .service_metrics import (
    RequestSpan,
    ServiceMetrics,
    metric_key,
    split_metric_key,
    structured_error,
    summarize_error,
)
from .slo import SloTracker

__all__ = [
    "ServiceTelemetry",
    "ServiceMetrics",
    "RequestSpan",
    "SloTracker",
    "FlightRecorder",
    "read_flight_bundle",
    "AdminPlane",
    "http_get",
    "http_response",
    "parse_http_request_line",
    "render_prometheus",
    "validate_exposition",
    "metric_key",
    "split_metric_key",
    "structured_error",
    "summarize_error",
]
