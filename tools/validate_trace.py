#!/usr/bin/env python3
"""Validate Chrome trace-event JSON files produced by ``repro trace``.

Checks each file against the schema rules of
:func:`repro.observability.validate_chrome_trace` (required keys per
event phase, finite non-negative timestamps, per-thread monotonicity,
non-overlapping complete spans, balanced begin/end pairs) and exits
non-zero on the first invalid file:

    PYTHONPATH=src python tools/validate_trace.py trace1.json [trace2.json ...]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability import TraceValidationError, validate_chrome_trace


def main(argv) -> int:
    if not argv:
        print("usage: validate_trace.py TRACE.json [TRACE.json ...]", file=sys.stderr)
        return 2
    for path in argv:
        try:
            count = validate_chrome_trace(Path(path).read_text())
        except (OSError, TraceValidationError, ValueError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            return 1
        print(f"{path}: ok ({count} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
