"""Table 2: runtime overhead of the IAR algorithm itself.

Paper: IAR takes milliseconds — under 1% of program time for most
benchmarks (max 3.38% on lusearch) — cheap enough for online use.  Our
absolute percentages are inflated by the Python-vs-JVM constant factor
and by trace scaling, but the *cross-benchmark ordering* (eclipse
lowest, lusearch highest) and the linear scaling of IAR time with trace
length must hold.
"""

from repro.analysis import format_table
from repro.analysis.experiments import table2
from repro.core.iar import iar
from repro.workloads import dacapo


def test_table2(benchmark, suite, report, scale):
    rows = benchmark.pedantic(table2, args=(suite,), rounds=1, iterations=1)
    text = format_table(
        rows,
        title=f"Table 2 — IAR scheduling overhead (scale={scale})",
        precision=4,
    )
    report("table2_iar_overhead", text)

    by_name = {r["benchmark"]: r for r in rows}
    # eclipse has by far the longest per-call times → smallest relative
    # overhead; lusearch the shortest → largest (paper's ordering).
    assert by_name["eclipse"]["percent_of_program"] == min(
        r["percent_of_program"] for r in rows
    )
    assert all(r["iar_time_s"] < 30.0 for r in rows)


def test_iar_time_scales_linearly(benchmark, scale):
    """O(N + M log M): doubling the trace roughly doubles IAR's time."""
    import time

    small = dacapo.load("jython", scale=scale / 2)
    large = dacapo.load("jython", scale=scale)

    def run(instance):
        t0 = time.perf_counter()
        iar(instance)
        return time.perf_counter() - t0

    run(small)  # warm-up
    t_small = min(run(small) for _ in range(3))
    t_large = benchmark.pedantic(run, args=(large,), rounds=1, iterations=1)
    assert t_large / t_small < 6.0, "IAR time must not blow up super-linearly"
