"""Figure 7: speed-up from concurrent JIT when the IAR schedule is used.

Paper's shape: "As the number of cores increases, the speedup increases
but slightly and always remains quite minor.  The largest speedup is
13% ... The average speedups are no greater than 7%" — because a good
compilation schedule already hides most compilation time.
"""

from repro.analysis import average_row, format_figure
from repro.analysis.experiments import figure7

CORES = (1, 2, 4, 8, 16)
SERIES = [f"cores_{k}" for k in CORES]


def test_figure7(benchmark, suite, report, scale):
    rows = benchmark.pedantic(
        figure7, args=(suite,), kwargs={"core_counts": CORES}, rounds=1,
        iterations=1,
    )
    avg = average_row(rows, SERIES)
    text = format_figure(
        [avg] + rows,
        SERIES,
        title=(
            "Figure 7 — concurrent-JIT speed-up on IAR schedules "
            f"(scale={scale})"
        ),
    )
    report("fig7_concurrency", text)

    assert avg["cores_1"] == 1.0
    # Monotone but minor gains.
    for lo, hi in zip(SERIES, SERIES[1:]):
        assert avg[hi] >= avg[lo] - 1e-9
    assert avg["cores_16"] < 1.25, "concurrency gain must stay minor"
    assert max(float(r["cores_16"]) for r in rows) < 1.4
