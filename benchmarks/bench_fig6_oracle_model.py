"""Figure 6: normalized make-span under the oracle cost-benefit model.

Paper's shape: fixing the model's time estimates lowers the reachable
bound (deeper suitable levels), so every scheme's gap *widens* — the
default's roughly doubles — while the IAR-to-bound range stays usable.
"Overall, the results suggest that the importance of compilation
scheduling actually increases as the cost-benefit model gets enhanced."
"""

from repro.analysis import average_row, format_figure
from repro.analysis.experiments import figure5, figure6

SERIES = ["lower_bound", "iar", "default", "base_level", "optimizing_level"]


def test_figure6(benchmark, suite, report, scale):
    rows = benchmark.pedantic(figure6, args=(suite,), rounds=1, iterations=1)
    avg = average_row(rows, SERIES)
    text = format_figure(
        [avg] + rows,
        SERIES,
        title=f"Figure 6 — normalized make-span, oracle model (scale={scale})",
    )
    report("fig6_oracle_model", text)

    rows5 = figure5(suite)
    avg5 = average_row(rows5, SERIES)
    gap5 = avg5["default"] - 1.0
    gap6 = avg["default"] - 1.0
    assert gap6 > gap5, "oracle model must widen the default's gap"
    assert avg["iar"] < avg["default"], "IAR still wins under the oracle"
    assert avg["default"] / avg["iar"] > avg5["default"] / avg5["iar"] * 0.9
