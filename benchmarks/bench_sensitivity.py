"""Sensitivity: where does compilation scheduling matter most?

Sweeps the workload ratios DESIGN.md §6 identifies as load-bearing and
reports the scheduling payoff (Jikes/IAR make-span ratio) at each
point.  The expected shape: payoff grows with compile cost and with
optimization payoff, shrinks when compiles are free — the boundary of
the paper's claim, mapped.
"""

from repro.analysis import format_table
from repro.analysis.sensitivity import sweep_parameter

SWEEPS = {
    "zipf_s": (1.1, 1.3, 1.45, 1.7),
    "base_compile_us": (0.1, 5.0, 20.0, 80.0),
    "max_speedup_range": ((1.5, 4.0), (3.0, 15.0), (6.0, 30.0)),
    "num_phases": (1, 2, 4),
}


def test_sensitivity(benchmark, report, scale):
    def run():
        out = {}
        for parameter, values in SWEEPS.items():
            out[parameter] = sweep_parameter(parameter, values)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    blocks = []
    for parameter, rows in results.items():
        blocks.append(
            format_table(rows, title=f"sweep: {parameter}")
        )
    text = "\n\n".join(blocks)
    report("sensitivity", text)

    compile_rows = results["base_compile_us"]
    payoffs = [float(r["scheduling_payoff"]) for r in compile_rows]
    iars = [float(r["iar"]) for r in compile_rows]
    # With near-free compiles, a planned schedule reaches the bound
    # (nothing to hide), yet the reactive scheme still pays a
    # wait-and-see regret — IAR's edge is foreknowledge, not only
    # ordering.  Expensive compiles enlarge the payoff further.
    assert iars[0] < 1.05
    assert payoffs[0] == min(payoffs)
    assert max(payoffs) > payoffs[0] + 0.15
