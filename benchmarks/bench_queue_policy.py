"""Extension: how much of the reactive gap is queue policy?

Production JITs order their compile queues (first-compiles first,
hotter methods first) instead of Jikes RVM's FIFO.  Replaying the Jikes
scheme under each policy separates the reactive gap into a queueing
part (fixable without planning) and a discovery part (needs
foreknowledge — what IAR exploits).
"""

from repro.analysis import average_row, format_figure
from repro.analysis.experiments import project_to_model_levels
from repro.core import lower_bound, simulate
from repro.core.iar import iar_schedule
from repro.vm.costbenefit import EstimatedModel
from repro.vm.jikes import JikesScheme
from repro.vm.priorityqueue import run_with_policy

POLICIES = ("fifo", "first_compiles", "hotness")


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        model = EstimatedModel(instance)
        projected = project_to_model_levels(instance, model)
        lb = lower_bound(projected)
        row = {"benchmark": name}
        for policy in POLICIES:
            result = run_with_policy(
                projected, JikesScheme(EstimatedModel(projected)), policy=policy
            )
            row[policy] = result.makespan / lb
        row["iar"] = (
            simulate(projected, iar_schedule(projected), validate=False).makespan
            / lb
        )
        rows.append(row)
    return rows


def test_queue_policy(benchmark, suite, report, scale):
    rows = benchmark.pedantic(_sweep, args=(suite,), rounds=1, iterations=1)
    series = list(POLICIES) + ["iar"]
    avg = average_row(rows, series)
    text = format_figure(
        [avg] + rows, series,
        title=f"Extension — compile-queue policies under the Jikes scheme (scale={scale})",
    )
    report("queue_policy", text)

    # Priority policies must not lose to FIFO on average, and even the
    # best queue policy cannot reach planned IAR — the rest of the gap
    # is discovery, not queueing.
    assert float(avg["first_compiles"]) <= float(avg["fifo"]) + 0.01
    best_policy = min(float(avg[p]) for p in POLICIES)
    assert float(avg["iar"]) < best_policy
