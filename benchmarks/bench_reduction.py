"""Theorem 2 machinery at scale: PARTITION → OCSP reductions.

Not a paper table, but the executable core of the NP-completeness
proof: building reduction instances, checking witness schedules, and
extracting partitions back out — timed on progressively larger inputs.
"""

import random

from repro.analysis import format_table
from repro.core import simulate
from repro.core.complexity import (
    extract_partition_subset,
    ocsp_from_partition,
    schedule_from_partition_subset,
    solve_partition,
)


def _roundtrip(n_values, seed):
    rng = random.Random(seed)
    # Force solvability: mirror pairs always admit a partition.
    half = [rng.randint(1, 40) for _ in range(n_values // 2)]
    values = half + half
    reduction = ocsp_from_partition(values)
    subset = solve_partition(values)
    assert subset is not None
    schedule = schedule_from_partition_subset(reduction, subset)
    result = simulate(reduction.instance, schedule, validate=False)
    extracted = extract_partition_subset(reduction, schedule)
    return reduction, result, extracted


def test_reduction_roundtrip(benchmark, report):
    rows = []
    for n in (10, 40, 160, 640):
        reduction, result, extracted = _roundtrip(n, seed=n)
        rows.append(
            {
                "values": n,
                "target": reduction.target,
                "makespan": result.makespan,
                "bound": reduction.optimal_makespan,
                "achieved": result.makespan == reduction.optimal_makespan,
                "partition_recovered": extracted is not None,
            }
        )
    text = format_table(rows, title="PARTITION → OCSP reduction round-trips")
    report("reduction_roundtrip", text)
    assert all(r["achieved"] for r in rows)
    assert all(r["partition_recovered"] for r in rows)

    benchmark.pedantic(_roundtrip, args=(640, 1), rounds=1, iterations=1)
