"""Throughput of the core machinery: make-span simulation and IAR.

These are real pytest-benchmark timings (multiple rounds) rather than
one-shot pedantic runs, tracking the cost of the two hot paths every
experiment goes through.
"""

import random

from repro.core import FastSimulator, iar_schedule, simulate
from repro.core.localsearch import _propose
from repro.core.single_level import base_level_schedule
from repro.workloads import WorkloadSpec, generate

SPEC = WorkloadSpec(
    name="throughput",
    num_functions=500,
    num_calls=200_000,
    num_levels=4,
    base_compile_us=50.0,
    mean_exec_us=2.0,
)


def _instance():
    return generate(SPEC, seed=42)


INSTANCE = _instance()
SCHEDULE = base_level_schedule(INSTANCE)


def test_simulate_throughput(benchmark):
    result = benchmark(simulate, INSTANCE, SCHEDULE, validate=False)
    assert result.makespan > 0


def test_simulate_16_threads_throughput(benchmark):
    result = benchmark(
        simulate, INSTANCE, SCHEDULE, compile_threads=16, validate=False
    )
    assert result.makespan > 0


def test_fast_evaluate_throughput(benchmark):
    """Full (non-incremental) evaluation on the precomputed engine."""
    fast = FastSimulator(INSTANCE)
    result = benchmark(fast.evaluate, SCHEDULE)
    assert result.makespan == simulate(INSTANCE, SCHEDULE, validate=False).makespan


def test_fast_incremental_throughput(benchmark):
    """Per-move cost of the propose/commit path local search runs on.

    Each round scores (and occasionally commits) one random schedule
    mutation; the engine replays only the affected call suffix.
    """
    fast = FastSimulator(INSTANCE)
    fast.bind(SCHEDULE)
    rng = random.Random(7)
    state = {"tasks": list(SCHEDULE)}

    def one_move():
        proposal = None
        while proposal is None:
            proposal = _propose(INSTANCE, state["tasks"], rng)
        span = fast.propose(proposal, cutoff=fast.baseline_makespan)
        if span <= fast.baseline_makespan:
            fast.commit()
            state["tasks"] = proposal
        return span

    span = benchmark(one_move)
    assert span > 0


def test_iar_throughput(benchmark):
    sched = benchmark(iar_schedule, INSTANCE)
    assert len(sched) >= INSTANCE.num_functions


def test_trace_generation_throughput(benchmark):
    inst = benchmark(_instance)
    assert inst.num_calls == SPEC.num_calls
