"""Extension experiment: cross-run prediction feeding IAR (Section 8).

The paper's "first barrier" to deploying IAR is predicting the call
sequence of a production run.  We fit a Markov model on one run and
plan for a perturbed replay (same program, different input), measuring
how the prediction quality translates into schedule quality.
"""

from repro.analysis import average_row, format_figure
from repro.core import OCSPInstance, cross_run_iar, perturb_sequence

REPLAY_NOISE = (0.0, 0.1, 0.3)


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        row = {"benchmark": name}
        for noise in REPLAY_NOISE:
            replay = perturb_sequence(instance, error_rate=noise, seed=5)
            replay = OCSPInstance(
                instance.profiles, replay.calls, name=f"{name}-replay"
            )
            result = cross_run_iar(instance, replay)
            row[f"deg@{noise:g}"] = result.degradation
            if noise == 0.3:
                row["accuracy@0.3"] = result.prediction_accuracy
        rows.append(row)
    return rows


def test_cross_run(benchmark, suite, report, scale):
    rows = benchmark.pedantic(_sweep, args=(suite,), rounds=1, iterations=1)
    series = [f"deg@{n:g}" for n in REPLAY_NOISE] + ["accuracy@0.3"]
    avg = average_row(rows, series)
    text = format_figure(
        [avg] + rows, series,
        title=(
            "Extension — cross-run IAR: make-span vs offline-limit IAR "
            f"(scale={scale})"
        ),
    )
    report("cross_run", text)

    # Planning on a Markov model of the same program stays within a
    # modest factor of the offline limit at every replay-noise level.
    for noise in REPLAY_NOISE:
        assert float(avg[f"deg@{noise:g}"]) < 1.6
