"""Ablation: contribution of IAR's step 3 and step 4 refinements.

Paper (Section 5.1): the fine adjustments do not change much — "there
is only a marginal room left for improvement by this fine adjustment."
We measure each step's contribution explicitly.
"""

from repro.analysis import average_row, format_figure
from repro.analysis.experiments import project_to_model_levels
from repro.core import lower_bound, simulate
from repro.core.iar import IARParams, iar
from repro.vm.costbenefit import EstimatedModel

VARIANTS = {
    "steps_1_2": IARParams(refine_slack=False, fill_gap=False),
    "plus_slack": IARParams(refine_slack=True, fill_gap=False),
    "plus_gap": IARParams(refine_slack=False, fill_gap=True),
    "full": IARParams(refine_slack=True, fill_gap=True),
}


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        model = EstimatedModel(instance)
        projected = project_to_model_levels(instance, model)
        lb = lower_bound(projected)
        row = {"benchmark": name}
        for label, params in VARIANTS.items():
            sched = iar(projected, params).schedule
            row[label] = simulate(projected, sched, validate=False).makespan / lb
        rows.append(row)
    return rows


def test_step_contributions(benchmark, suite, report, scale):
    rows = benchmark.pedantic(_sweep, args=(suite,), rounds=1, iterations=1)
    series = list(VARIANTS)
    avg = average_row(rows, series)
    text = format_figure(
        [avg] + rows, series,
        title=f"Ablation — IAR step contributions (scale={scale})",
    )
    report("ablation_iar_steps", text)

    # Refinements never hurt on average and their total effect is the
    # paper's "marginal room".
    assert avg["full"] <= avg["steps_1_2"] + 1e-9
    assert avg["steps_1_2"] - avg["full"] < 0.25
