"""Extension: periodic replanning (the Section 8 IAR extension).

Plan on noisy estimates, observe, replan at segment boundaries with a
rolling commit (in-flight compiles cannot be retracted).  Expected
shape: a few replans recover much of the noisy-plan-vs-oracle loss;
replanning too often thrashes.
"""

from repro.analysis import average_row, format_figure
from repro.core.replan import replan_iar

SEGMENTS = (1, 2, 4, 8)
TIME_ERROR = 1.2


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        row = {"benchmark": name}
        oracle = None
        for segments in SEGMENTS:
            result = replan_iar(
                instance, time_error=TIME_ERROR, segments=segments, seed=11
            )
            row[f"segs={segments}"] = result.makespan / result.lower_bound
            oracle = result.oracle_makespan / result.lower_bound
        row["oracle"] = oracle
        rows.append(row)
    return rows


def test_replan(benchmark, suite, report, scale):
    small = dict(sorted(suite.items(), key=lambda kv: kv[1].num_calls)[:5])
    rows = benchmark.pedantic(_sweep, args=(small,), rounds=1, iterations=1)
    series = [f"segs={s}" for s in SEGMENTS] + ["oracle"]
    avg = average_row(rows, series)
    text = format_figure(
        [avg] + rows, series,
        title=(
            "Extension — periodic replanning under ±120% time-estimate "
            f"noise (scale={scale})"
        ),
    )
    report("replan", text)

    # Moderate replanning should beat one-shot planning on average.
    best_replanned = min(float(avg[f"segs={s}"]) for s in (2, 4))
    assert best_replanned <= float(avg["segs=1"]) + 1e-9
    # And no setting dips below the oracle's bound-normalized span by
    # more than noise (sanity).
    for s in SEGMENTS:
        assert float(avg[f"segs={s}"]) >= 1.0
