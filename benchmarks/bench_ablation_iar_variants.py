"""Ablation: IAR's append-order and gap-priority design choices.

The paper: "We tried various ways to prioritize these additional
appending operations by considering factors ranging from optimization
overhead, to benefits, and positions of the calls in the sequence.  But
they do not outperform the simple heuristics Figure 3 shows."  We rerun
that search across both prioritized steps.
"""


from repro.analysis import average_row, format_figure
from repro.analysis.experiments import project_to_model_levels
from repro.core import lower_bound, simulate
from repro.core.iar import APPEND_ORDERS, GAP_PRIORITIES, IARParams, iar
from repro.vm.costbenefit import EstimatedModel

VARIANTS = [
    ("paper", IARParams()),
    *[
        (f"append={order}", IARParams(append_order=order))
        for order in APPEND_ORDERS
        if order != "compile_time"
    ],
    *[
        (f"gap={prio}", IARParams(gap_priority=prio))
        for prio in GAP_PRIORITIES
        if prio != "remaining_calls"
    ],
]


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        model = EstimatedModel(instance)
        projected = project_to_model_levels(instance, model)
        lb = lower_bound(projected)
        row = {"benchmark": name}
        for label, params in VARIANTS:
            sched = iar(projected, params).schedule
            row[label] = simulate(projected, sched, validate=False).makespan / lb
        rows.append(row)
    return rows


def test_iar_variants(benchmark, suite, report, scale):
    rows = benchmark.pedantic(_sweep, args=(suite,), rounds=1, iterations=1)
    series = [label for label, _ in VARIANTS]
    avg = average_row(rows, series)
    text = format_figure(
        [avg] + rows, series,
        title=f"Ablation — IAR append/gap prioritizations (scale={scale})",
    )
    report("ablation_iar_variants", text)

    # The paper's finding: no variant beats the simple heuristics by a
    # meaningful margin.
    paper = float(avg["paper"])
    for label in series[1:]:
        assert float(avg[label]) > paper - 0.03, (
            f"{label} unexpectedly dominates the paper's heuristic"
        )
