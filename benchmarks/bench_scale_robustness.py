"""Robustness: the headline claims must hold across trace scales.

The suite is generated at a configurable scale (DESIGN.md explains the
sqrt co-scaling of function counts and compile times).  This bench
re-checks the Figure 5 ordering at half and double the configured scale
— if the calibration were a single-point artifact, these would flip.
"""

from repro.analysis import average_row
from repro.analysis.experiments import figure5
from repro.workloads import dacapo

SERIES = ["lower_bound", "iar", "default", "base_level", "optimizing_level"]
BENCHES = ("antlr", "jython", "lusearch", "eclipse")


def _at_scale(scale):
    suite = {name: dacapo.load(name, scale=scale) for name in BENCHES}
    return average_row(figure5(suite), SERIES)


def test_scale_robustness(benchmark, report, scale):
    rows = []
    for factor, label in ((0.5, "half"), (1.0, "configured"), (2.0, "double")):
        avg = _at_scale(scale * factor)
        avg["benchmark"] = f"{label} ({scale * factor:g})"
        rows.append(avg)
    benchmark.pedantic(_at_scale, args=(scale,), rounds=1, iterations=1)

    from repro.analysis import format_figure

    text = format_figure(
        rows, SERIES, title=f"Scale robustness of the Figure 5 ordering"
    )
    report("scale_robustness", text)

    for row in rows:
        assert float(row["iar"]) < float(row["default"]), row["benchmark"]
        assert float(row["default"]) < float(row["base_level"]), row["benchmark"]
        assert float(row["iar"]) < 1.45, row["benchmark"]
