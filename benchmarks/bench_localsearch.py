"""Near-optimality probe: can local search improve IAR's schedules?

The paper brackets the optimum between the lower bound and IAR; on
traces too large for exact search this bench adds feasible-side
evidence: thousands of randomized schedule edits on top of IAR recover
almost nothing, while the same effort improves the naive base-level
schedule dramatically — IAR is already sitting near a strong local
(and, by the bound, near the global) optimum.
"""

import time

from repro.analysis import average_row, format_figure, format_table
from repro.analysis.experiments import project_to_model_levels
from repro.core import lower_bound
from repro.core.iar import iar_schedule
from repro.core.localsearch import improve_schedule
from repro.core.single_level import base_level_schedule
from repro.vm.costbenefit import EstimatedModel

ITERATIONS = 800


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        model = EstimatedModel(instance)
        projected = project_to_model_levels(instance, model)
        lb = lower_bound(projected)
        iar_sched = iar_schedule(projected)
        _, iar_stats = improve_schedule(
            projected, iar_sched, iterations=ITERATIONS, seed=13
        )
        base_sched = base_level_schedule(projected)
        _, base_stats = improve_schedule(
            projected, base_sched, iterations=ITERATIONS, seed=13
        )
        rows.append(
            {
                "benchmark": name,
                "iar": iar_stats.initial_makespan / lb,
                "iar+search": iar_stats.final_makespan / lb,
                "iar_gain%": 100 * iar_stats.improvement,
                "base": base_stats.initial_makespan / lb,
                "base+search": base_stats.final_makespan / lb,
                "base_gain%": 100 * base_stats.improvement,
            }
        )
    return rows


def test_localsearch_probe(benchmark, suite, report, scale):
    # Local search is O(iterations * N); probe the five smallest traces.
    small = dict(
        sorted(suite.items(), key=lambda kv: kv[1].num_calls)[:5]
    )
    rows = benchmark.pedantic(_sweep, args=(small,), rounds=1, iterations=1)
    series = ["iar", "iar+search", "iar_gain%", "base", "base+search", "base_gain%"]
    avg = average_row(rows, series)
    text = format_figure(
        [avg] + rows, series,
        title=(
            f"Near-optimality probe — {ITERATIONS} local-search edits "
            f"(scale={scale})"
        ),
    )
    report("localsearch_probe", text)

    # Search recovers little on IAR, much more on the naive schedule.
    assert float(avg["iar_gain%"]) < 6.0
    assert float(avg["base_gain%"]) > float(avg["iar_gain%"])


def _engine_timing(instance, schedule, engine, iterations):
    t0 = time.perf_counter()
    final, stats = improve_schedule(
        instance, schedule, iterations=iterations, seed=13, engine=engine
    )
    return time.perf_counter() - t0, final, stats


def test_fast_engine_speedup(suite, report, scale):
    """The tentpole's acceptance gate: the incremental FastSimulator
    engine must make local-search moves >= 3x cheaper than re-simulating
    from scratch, while walking the *identical* trajectory (same final
    schedule, same make-span).
    """
    rows = []
    worst = float("inf")
    # The three largest traces — where per-move cost dominates and the
    # suffix-replay advantage is the paper-relevant regime.
    big = dict(sorted(suite.items(), key=lambda kv: -kv[1].num_calls)[:3])
    for name, instance in big.items():
        schedule = iar_schedule(instance)
        ref_s, ref_final, ref_stats = _engine_timing(
            instance, schedule, "reference", ITERATIONS
        )
        fast_s, fast_final, fast_stats = _engine_timing(
            instance, schedule, "fast", ITERATIONS
        )
        assert tuple(fast_final) == tuple(ref_final)
        assert fast_stats == ref_stats
        speedup = ref_s / fast_s
        worst = min(worst, speedup)
        rows.append(
            {
                "benchmark": name,
                "calls": instance.num_calls,
                "reference_ms/move": 1000 * ref_s / ITERATIONS,
                "fast_ms/move": 1000 * fast_s / ITERATIONS,
                "speedup": speedup,
            }
        )
    report(
        "fast_engine_speedup",
        format_table(
            rows,
            title=(
                f"Local-search move cost, reference vs fast engine "
                f"({ITERATIONS} moves, scale={scale})"
            ),
        ),
    )
    assert worst >= 3.0, f"fast engine speedup {worst:.2f}x < 3x"