"""Ablation: sensitivity of IAR to the Formula 2 constant ``K``.

Paper (Section 5.1): "we tried different values of K in Formula 2 and
found that as long as it falls into a range between 3 and 10, the
results are quite similar (in our reported results, K=5)."
"""

from repro.analysis import average_row, format_figure
from repro.analysis.experiments import project_to_model_levels
from repro.core import iar_schedule, lower_bound, simulate
from repro.vm.costbenefit import EstimatedModel

K_VALUES = (1.0, 3.0, 5.0, 10.0, 30.0)


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        model = EstimatedModel(instance)
        projected = project_to_model_levels(instance, model)
        lb = lower_bound(projected)
        row = {"benchmark": name}
        for k in K_VALUES:
            sched = iar_schedule(projected, k=k)
            row[f"K={k:g}"] = simulate(projected, sched, validate=False).makespan / lb
        rows.append(row)
    return rows


def test_k_sensitivity(benchmark, suite, report, scale):
    rows = benchmark.pedantic(_sweep, args=(suite,), rounds=1, iterations=1)
    series = [f"K={k:g}" for k in K_VALUES]
    avg = average_row(rows, series)
    text = format_figure(
        [avg] + rows, series,
        title=f"Ablation — IAR sensitivity to K (scale={scale})",
    )
    report("ablation_K", text)

    inside = [float(avg[f"K={k:g}"]) for k in (3.0, 5.0, 10.0)]
    spread = (max(inside) - min(inside)) / min(inside)
    assert spread < 0.05, "K in [3,10] must give similar results (paper)"
