"""Extension: on-stack replacement's effect on scheduling pressure.

With OSR (Section 8's statement-level tier, made concrete) an
invocation switches to better code in flight.  On method-granularity
DaCapo-like traces OSR is a no-op — invocations last microseconds while
compiles take milliseconds, so upgrades never land mid-call (the bench
asserts this explicitly).  OSR matters for *loop-granularity* units:
few invocations, each long relative to compile times — the workload
this bench constructs.
"""

from repro.analysis import average_row, format_figure
from repro.core import lower_bound, simulate
from repro.core.iar import iar_schedule
from repro.core.osr import simulate_osr
from repro.core.single_level import optimizing_level_schedule
from repro.vm.v8 import run_v8
from repro.workloads import WorkloadSpec, generate

LOOPY = WorkloadSpec(
    name="loopy",
    num_functions=24,
    num_calls=300,
    num_levels=2,
    zipf_s=1.2,
    mean_exec_us=4000.0,     # long-running loop entries...
    base_compile_us=800.0,   # ...comparable to compile times
    level_compile_factors=(1.0, 12.0),
    max_speedup_range=(2.0, 8.0),
)


def _loopy_rows(seeds):
    rows = []
    for seed in seeds:
        inst = generate(LOOPY, seed=seed)
        lb = lower_bound(inst)
        schedules = {
            "iar": iar_schedule(inst),
            "v8": run_v8(inst).schedule,
            "opt_only": optimizing_level_schedule(inst),
        }
        row = {"workload": f"loopy-{seed}"}
        for label, sched in schedules.items():
            row[label] = simulate(inst, sched, validate=False).makespan / lb
            row[f"{label}_osr"] = (
                simulate_osr(inst, sched, validate=False).makespan / lb
            )
        rows.append(row)
    return rows


SERIES = ["iar", "iar_osr", "v8", "v8_osr", "opt_only", "opt_only_osr"]


def test_osr_on_loop_granularity(benchmark, suite, report, scale):
    rows = benchmark.pedantic(_loopy_rows, args=((1, 2, 3, 4),), rounds=1, iterations=1)
    avg = average_row(rows, SERIES)
    avg["workload"] = "average"
    text = format_figure(
        [avg] + rows, SERIES, label_key="workload",
        title="Extension — OSR on loop-granularity units",
    )
    report("osr", text)

    # OSR never hurts and visibly helps the mid-call-upgrade losers.
    for label in ("iar", "v8", "opt_only"):
        assert float(avg[f"{label}_osr"]) <= float(avg[label]) + 1e-9
    v8_gain = float(avg["v8"]) - float(avg["v8_osr"])
    iar_gain = float(avg["iar"]) - float(avg["iar_osr"])
    assert v8_gain > 0.01, "OSR must matter at loop granularity"
    # The FINDING: OSR helps eager promotion far more than it helps
    # IAR — enough that V8-with-OSR becomes competitive with (here even
    # slightly ahead of) IAR, whose decisions optimize the call-start
    # rule, not the OSR objective.  Scheduling for OSR runtimes is a
    # different problem.
    assert v8_gain > iar_gain
    assert abs(float(avg["iar_osr"]) - float(avg["v8_osr"])) < 0.05

    # And on method-granularity traces OSR is a no-op: invocations are
    # far shorter than compiles, upgrades never land mid-call.
    instance = next(iter(suite.values()))
    sched = iar_schedule(instance)
    plain = simulate(instance, sched, validate=False).makespan
    osr = simulate_osr(instance, sched, validate=False).makespan
    assert abs(plain - osr) / plain < 1e-3
