"""Figure 5: normalized make-span under the default cost-benefit model.

Paper's shape: the default Jikes RVM scheme sits far above the lower
bound (average gap >70%, more than half the programs >50%); both
single-level approximations are worse than the default on most
programs; IAR is near-optimal (no program >17% gap, 8.5% average).
"""

from repro.analysis import average_row, format_figure
from repro.analysis.experiments import figure5

SERIES = ["lower_bound", "iar", "default", "base_level", "optimizing_level"]


def test_figure5(benchmark, suite, report, scale):
    rows = benchmark.pedantic(figure5, args=(suite,), rounds=1, iterations=1)
    avg = average_row(rows, SERIES)
    text = format_figure(
        [avg] + rows,
        SERIES,
        title=f"Figure 5 — normalized make-span, default model (scale={scale})",
    )
    report("fig5_default_model", text)

    # Shape assertions (qualitative reproduction):
    assert avg["iar"] < 1.35, "IAR must stay near the lower bound"
    assert avg["default"] > avg["iar"] + 0.15, "default far from optimal"
    assert avg["base_level"] > avg["default"], "base-level worse than default"
    wins = sum(1 for r in rows if r["iar"] <= r["default"])
    assert wins >= 8, "IAR beats the default scheme on (almost) all programs"
    speedup = avg["default"] / avg["iar"]
    assert speedup > 1.2, f"headline speedup too small: {speedup:.2f}"
