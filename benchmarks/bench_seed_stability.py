"""Robustness: conclusions must not depend on the generator seed.

Regenerates the whole suite with three different workload seeds and
checks the Figure 5 ordering and magnitudes each time.
"""

from repro.analysis import average_row, format_figure
from repro.analysis.experiments import figure5
from repro.workloads import dacapo

SERIES = ["lower_bound", "iar", "default", "base_level", "optimizing_level"]
SEEDS = (101, 202, 303)


def _suite_with_seed(scale, seed):
    return {
        info.name: dacapo.load(info.name, scale=scale, seed=seed + i)
        for i, info in enumerate(dacapo.TABLE1)
    }


def _sweep(scale):
    rows = []
    for seed in SEEDS:
        suite = _suite_with_seed(scale, seed)
        avg = average_row(figure5(suite), SERIES)
        avg["benchmark"] = f"seed {seed}"
        rows.append(avg)
    return rows


def test_seed_stability(benchmark, report, scale):
    rows = benchmark.pedantic(_sweep, args=(scale,), rounds=1, iterations=1)
    text = format_figure(
        rows, SERIES, title=f"Seed robustness of the Figure 5 averages (scale={scale})"
    )
    report("seed_stability", text)

    for row in rows:
        assert float(row["iar"]) < 1.30, row["benchmark"]
        assert float(row["iar"]) < float(row["default"]), row["benchmark"]
        assert float(row["default"]) < float(row["base_level"]), row["benchmark"]
    iars = [float(r["iar"]) for r in rows]
    assert max(iars) - min(iars) < 0.15, "IAR quality must be seed-stable"
