"""Ablation: per-invocation execution-time variability (Section 8).

The paper argues that per-call execution-time variation "does not
affect the major conclusions" because only per-function totals enter
the analysis.  We inject unit-mean lognormal noise per invocation and
check that (a) mean make-spans track the deterministic model and
(b) the IAR-vs-default ranking never flips.
"""

from repro.analysis import average_row, format_figure
from repro.analysis.experiments import project_to_model_levels
from repro.core import iar_schedule, simulate
from repro.core.variability import simulate_variable
from repro.vm.costbenefit import EstimatedModel
from repro.vm.jikes import run_jikes

SIGMAS = (0.0, 0.25, 0.5, 1.0)
TRIALS = 3


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        model = EstimatedModel(instance)
        projected = project_to_model_levels(instance, model)
        iar_sched = iar_schedule(projected)
        jikes_sched = run_jikes(projected, model=EstimatedModel(projected)).schedule
        det_iar = simulate(projected, iar_sched, validate=False).makespan
        row = {"benchmark": name}
        for sigma in SIGMAS:
            iar_mean = sum(
                simulate_variable(projected, iar_sched, sigma, seed=s).makespan
                for s in range(TRIALS)
            ) / TRIALS
            jikes_mean = sum(
                simulate_variable(projected, jikes_sched, sigma, seed=s).makespan
                for s in range(TRIALS)
            ) / TRIALS
            row[f"ratio@{sigma:g}"] = jikes_mean / iar_mean
            if sigma == 0.5:
                row["drift@0.5"] = iar_mean / det_iar
        rows.append(row)
    return rows


def test_variability(benchmark, suite, report, scale):
    rows = benchmark.pedantic(_sweep, args=(suite,), rounds=1, iterations=1)
    series = [f"ratio@{s:g}" for s in SIGMAS] + ["drift@0.5"]
    avg = average_row(rows, series)
    text = format_figure(
        [avg] + rows, series,
        title=(
            "Ablation — default/IAR make-span ratio under per-call "
            f"variability (scale={scale})"
        ),
    )
    report("ablation_variability", text)

    # Ranking stable: the Jikes scheme never beats IAR at any sigma.
    for sigma in SIGMAS:
        assert float(avg[f"ratio@{sigma:g}"]) > 1.0
    # Mean make-span drifts little from the deterministic model.
    assert abs(float(avg["drift@0.5"]) - 1.0) < 0.1
