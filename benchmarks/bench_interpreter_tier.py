"""Extension experiment: the interpreter tier (Section 8).

"If we treat interpretation as the lowest level compilation ... the
analysis and algorithms discussed in this paper can still be applied."
We add a free-but-slow interpretation tier to every benchmark and
measure what it changes: bubbles vanish entirely (code is always
runnable), so the whole gap becomes level excess — and scheduling still
pays, but through code quality rather than stall avoidance.
"""

from repro.analysis import average_row, format_figure
from repro.core import (
    interpreter_prelude,
    lift_schedule,
    lower_bound,
    simulate,
    with_interpreter_tier,
)
from repro.core.iar import iar_schedule

SLOWDOWN = 4.0


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        tiered = with_interpreter_tier(instance, slowdown=SLOWDOWN)
        lb = lower_bound(tiered)
        interp_only = simulate(
            tiered, interpreter_prelude(tiered), validate=False
        )
        lifted = lift_schedule(tiered, iar_schedule(instance))
        lifted_result = simulate(tiered, lifted, validate=False)
        native = iar_schedule(tiered)
        native_result = simulate(tiered, native, validate=False)
        rows.append(
            {
                "benchmark": name,
                "interpret_only": interp_only.makespan / lb,
                "lifted_iar": lifted_result.makespan / lb,
                "tiered_iar": native_result.makespan / lb,
                "bubbles_lifted": lifted_result.total_bubble_time,
            }
        )
    return rows


def test_interpreter_tier(benchmark, suite, report, scale):
    rows = benchmark.pedantic(_sweep, args=(suite,), rounds=1, iterations=1)
    series = ["interpret_only", "lifted_iar", "tiered_iar", "bubbles_lifted"]
    avg = average_row(rows, series)
    text = format_figure(
        [avg] + rows, series,
        title=(
            "Extension — interpreter tier: normalized make-span "
            f"(slowdown {SLOWDOWN}x, scale={scale})"
        ),
    )
    report("interpreter_tier", text)

    # The tier removes every bubble...
    assert all(float(r["bubbles_lifted"]) == 0.0 for r in rows)
    # ...interpret-only is far from the bound, and scheduling still
    # closes most of the distance.
    assert float(avg["interpret_only"]) > 2.0
    assert float(avg["lifted_iar"]) < float(avg["interpret_only"])
    assert float(avg["tiered_iar"]) <= float(avg["lifted_iar"]) + 0.05
