"""Extension experiment: function inlining's effect on scheduling
(Section 8: inlining "may substantially change the length and execution
time of the caller function").

We run each mini-VM sample program with and without leaf-inlining,
extract both OCSP instances, and compare: the trace shrinks, per-call
work moves into the callers, and the schedulers' task changes shape —
but IAR stays ahead of the naive baseline either way.
"""

from repro.analysis import format_table
from repro.core import iar_schedule, lower_bound, simulate
from repro.core.single_level import base_level_schedule
from repro.jitsim import extract_instance, inline_program, loops_program, phased_program

PROGRAMS = {
    "loops": lambda: loops_program(hot_calls=2000, warm_calls=200),
    "phased": lambda: phased_program(phase_calls=1500),
}


def _compare():
    rows = []
    for name, build in PROGRAMS.items():
        original = build()
        inlined = inline_program(original, max_callee_size=32, rounds=2)
        inst_orig = extract_instance(original, name=f"{name}")
        inst_inl = extract_instance(inlined, name=f"{name}-inlined")

        def norm(inst):
            span = simulate(inst, iar_schedule(inst), validate=False).makespan
            base = simulate(
                inst, base_level_schedule(inst), validate=False
            ).makespan
            return span / lower_bound(inst), base / lower_bound(inst)

        iar_o, base_o = norm(inst_orig)
        iar_i, base_i = norm(inst_inl)
        rows.append(
            {
                "program": name,
                "calls_orig": inst_orig.num_calls,
                "calls_inlined": inst_inl.num_calls,
                "iar_orig": iar_o,
                "iar_inlined": iar_i,
                "base_orig": base_o,
                "base_inlined": base_i,
            }
        )
    return rows


def test_inlining_effect(benchmark, report):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    text = format_table(
        rows, title="Extension — inlining's effect on the OCSP instance"
    )
    report("inlining_effect", text)

    for row in rows:
        # Inlining removes leaf invocations from the trace...
        assert row["calls_inlined"] < row["calls_orig"]
        # ...and scheduling still pays on both shapes.
        assert row["iar_orig"] <= row["base_orig"] + 1e-9
        assert row["iar_inlined"] <= row["base_inlined"] + 1e-9
