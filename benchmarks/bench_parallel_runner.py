"""Wall-clock scaling of the parallel experiment runner.

The acceptance gates for ``run_parallel``: fanning the nine-trace
DaCapo suite across four worker processes must (a) produce rows
byte-identical to the serial path — always — and (b) beat the serial
run on wall-clock wherever the hardware can actually run two workers
at once.  On a single-CPU host process fan-out is pure overhead, so
the timing gate is skipped there (with the measured overhead still
reported for the record).
"""

import os
import time

import pytest

from repro.analysis import format_table, run_parallel

# The figure drivers re-run every scheduler per benchmark — the
# embarrassingly parallel bulk of a `repro study`.
DRIVERS = ("figure5", "figure6", "figure8")

try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # macOS / Windows
    CPUS = os.cpu_count() or 1


def _timed(suite, jobs):
    t0 = time.perf_counter()
    run = run_parallel(suite, drivers=DRIVERS, jobs=jobs)
    return time.perf_counter() - t0, run


@pytest.fixture(scope="module")
def timings(suite):
    # Warm both code paths (imports, allocator) before timing.
    small = {name: suite[name] for name in list(suite)[:1]}
    _timed(small, 1)
    _timed(small, 2)
    serial_s, serial = _timed(suite, 1)
    parallel_s, parallel = _timed(suite, 4)
    return serial_s, serial, parallel_s, parallel


def test_parallel_rows_identical_to_serial(timings, suite, report, scale):
    serial_s, serial, parallel_s, parallel = timings

    assert serial.ok and parallel.ok
    assert serial.rows == parallel.rows, "parallel run changed results"

    report(
        "parallel_runner",
        format_table(
            [
                {
                    "jobs": jobs,
                    "wall_s": secs,
                    "speedup": serial_s / secs,
                }
                for jobs, secs in ((1, serial_s), (4, parallel_s))
            ],
            title=(
                f"run_parallel over {len(suite)} traces x {len(DRIVERS)} "
                f"drivers (scale={scale}, {CPUS} CPUs visible)"
            ),
        ),
    )


@pytest.mark.skipif(
    CPUS < 2,
    reason=(
        "wall-clock speedup needs >= 2 CPUs; this host exposes only "
        "one, so four workers just time-slice a single core"
    ),
)
def test_parallel_runner_beats_serial(timings):
    serial_s, serial, parallel_s, parallel = timings
    assert serial.rows == parallel.rows
    assert parallel_s < serial_s, (
        f"jobs=4 ({parallel_s:.2f}s) not faster than serial ({serial_s:.2f}s)"
    )
