"""Table 1: benchmark characteristics (paper vs generated suite).

Regenerates the paper's Table 1 and benchmarks trace generation
throughput.
"""

from repro.analysis import format_table
from repro.analysis.experiments import table1
from repro.workloads import dacapo


def test_table1_characteristics(benchmark, report, scale):
    rows = benchmark.pedantic(table1, args=(scale,), rounds=1, iterations=1)
    text = format_table(
        rows,
        title=f"Table 1 — benchmark characteristics (scale={scale})",
        precision=1,
    )
    report("table1_workloads", text)

    assert len(rows) == 9
    # At full scale the generated traces match Table 1 exactly; at any
    # scale the function ordering by size must be preserved.
    by_paper = sorted(rows, key=lambda r: r["paper_calls"])
    by_generated = sorted(rows, key=lambda r: r["generated_calls"])
    assert [r["program"] for r in by_paper] == [r["program"] for r in by_generated]


def test_generation_throughput(benchmark, scale):
    """Trace generation speed for the largest benchmark (lusearch)."""
    result = benchmark.pedantic(
        dacapo.load, args=("lusearch",), kwargs={"scale": scale}, rounds=1,
        iterations=1,
    )
    assert result.num_calls > 0
