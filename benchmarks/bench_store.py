"""Throughput of the content-addressed result store.

The store only pays for itself if fingerprinting and cache I/O are
cheap next to the simulations they avoid.  This benchmark measures the
three costs a cached `repro study` run actually pays — fingerprinting
every unit, reading every hit, and (on the cold run) writing every
miss — and reports them against the wall-clock of computing one cell,
so EXPERIMENTS.md can cite the break-even point.
"""

import time

from repro.analysis import PARALLEL_DRIVERS
from repro.store import ResultStore, fingerprint_unit

DRIVER = "figure5"


def _rate(n: int, seconds: float) -> str:
    if seconds <= 0:
        return "inf"
    return f"{n / seconds:,.0f}/s"


def test_store_throughput(suite, report, scale, tmp_path):
    store = ResultStore(tmp_path / "store")

    # Fingerprint every (driver, benchmark) unit of the suite.
    t0 = time.perf_counter()
    fps = {
        name: fingerprint_unit(inst, DRIVER, benchmark=name)
        for name, inst in suite.items()
    }
    fp_s = time.perf_counter() - t0

    # One real cell, for the break-even comparison.
    first = next(iter(suite))
    t0 = time.perf_counter()
    rows = PARALLEL_DRIVERS[DRIVER]({first: suite[first]})
    cell_s = time.perf_counter() - t0

    payload = {name: rows for name in fps}

    t0 = time.perf_counter()
    for name, fp in fps.items():
        store.put(fp, payload[name], driver=DRIVER, benchmark=name)
    put_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for name, fp in fps.items():
        got = store.get(fp)
        assert got == payload[name]
    get_s = time.perf_counter() - t0

    n = len(fps)
    lines = [
        f"result store throughput ({n} units, scale={scale})",
        f"  fingerprint : {fp_s * 1e3:8.2f} ms total  ({_rate(n, fp_s)})",
        f"  put         : {put_s * 1e3:8.2f} ms total  ({_rate(n, put_s)})",
        f"  get (hit)   : {get_s * 1e3:8.2f} ms total  ({_rate(n, get_s)})",
        f"  one computed cell ({first}): {cell_s * 1e3:.2f} ms",
    ]
    overhead = (fp_s + get_s) / n
    lines.append(
        f"  warm-hit overhead per unit: {overhead * 1e3:.3f} ms "
        f"({overhead / cell_s * 100:.2f}% of one cell)"
    )
    report("bench_store", "\n".join(lines))

    # The gate: a warm hit must be far cheaper than recomputing.
    assert overhead < cell_s, "cache hit costs more than recomputing"
