"""Extension: how tight is the bracket around the true optimum?

The paper brackets the minimum make-span between the exec-only lower
bound and IAR's make-span.  Our warmup-aware bound (valid for one
compiler thread) accounts for the serialized first compiles, raising
the floor — the bracket around the unknown optimum narrows, which makes
every "X is near-optimal" claim sharper.
"""

from repro.analysis import average_row, format_figure
from repro.analysis.experiments import project_to_model_levels
from repro.core import (
    lower_bound,
    simulate,
    warmup_aware_lower_bound,
)
from repro.core.iar import iar_schedule
from repro.vm.costbenefit import EstimatedModel


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        projected = project_to_model_levels(instance, EstimatedModel(instance))
        exec_lb = lower_bound(projected)
        warm_lb = warmup_aware_lower_bound(projected)
        iar_span = simulate(
            projected, iar_schedule(projected), validate=False
        ).makespan
        rows.append(
            {
                "benchmark": name,
                "exec_lb": 1.0,
                "warmup_lb": warm_lb / exec_lb,
                "iar": iar_span / exec_lb,
                "bracket_shrink%": 100.0
                * (warm_lb - exec_lb)
                / max(iar_span - exec_lb, 1e-12),
            }
        )
    return rows


def test_bound_tightness(benchmark, suite, report, scale):
    rows = benchmark.pedantic(_sweep, args=(suite,), rounds=1, iterations=1)
    series = ["exec_lb", "warmup_lb", "iar", "bracket_shrink%"]
    avg = average_row(rows, series)
    text = format_figure(
        [avg] + rows, series,
        title=(
            "Extension — lower-bound tightness: the [bound, IAR] bracket "
            f"(normalized to the exec bound, scale={scale})"
        ),
    )
    report("bounds_tightness", text)

    for row in rows:
        assert 1.0 - 1e-9 <= float(row["warmup_lb"]) <= float(row["iar"]) + 1e-9
    # On the calibrated traces baseline compiles are cheap, so the
    # shrink is modest on average — but it must be visible on the
    # warmup-heavy benchmarks (eclipse, lusearch).
    assert max(float(r["bracket_shrink%"]) for r in rows) > 5.0
