"""Ablation: IAR's tolerance to time-estimation and sequence-prediction
error (motivated by Section 8).

The paper notes that deploying IAR online needs estimated times and
predicted call sequences, and asks for "the relations between
estimation errors and the quality of an advanced scheduling algorithm".
We plan IAR on noisy views and execute on the truth.
"""

from repro.analysis import average_row, format_figure
from repro.core.online import online_iar_makespan

TIME_ERRORS = (0.0, 0.25, 0.5, 1.0, 2.0)


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        row = {"benchmark": name}
        for err in TIME_ERRORS:
            result = online_iar_makespan(instance, time_error=err, seed=17)
            row[f"err={err:g}"] = result.degradation
        rows.append(row)
    return rows


def test_noise_tolerance(benchmark, suite, report, scale):
    rows = benchmark.pedantic(_sweep, args=(suite,), rounds=1, iterations=1)
    series = [f"err={e:g}" for e in TIME_ERRORS]
    avg = average_row(rows, series)
    text = format_figure(
        [avg] + rows, series,
        title=(
            "Ablation — IAR make-span degradation vs time-estimation "
            f"error (scale={scale}; 1.0 = perfect-information IAR)"
        ),
    )
    report("ablation_noise", text)

    assert avg["err=0"] == 1.0
    # Small estimation errors must be tolerable (<5% loss), large ones
    # must show measurable degradation — the Section 8 trade-off.
    assert avg["err=0.25"] < 1.05
    assert avg["err=2"] >= avg["err=0.25"] - 1e-9
