"""Section 6.2.5: feasibility of A*-search for optimal schedules.

Paper: "For a call sequence with six unique functions called for 50
times in total and two levels of compilations, the A*-search algorithm
finds an optimal compilation schedule by searching through 96 out of 4
billion (12!) paths.  However ... when the number of unique methods is
larger than 6, the A*-search program aborts for out of memory."

We reproduce the shape: optimal with a vanishing fraction of the path
space explored up to six functions, memory exhaustion beyond.
"""

from repro.analysis import format_table
from repro.analysis.experiments import astar_scaling

COUNTS = (2, 3, 4, 5, 6, 7)


def test_astar_scaling(benchmark, report, scale):
    rows = benchmark.pedantic(
        astar_scaling,
        kwargs={
            "function_counts": COUNTS,
            "calls_per_instance": 50,
            "max_frontier": 200_000,
        },
        rounds=1,
        iterations=1,
    )
    text = format_table(
        rows,
        title="A*-search feasibility (Section 6.2.5)",
        precision=1,
    )
    report("astar_search", text)

    by_m = {r["functions"]: r for r in rows}
    # Solvable through six functions...
    for m in (2, 3, 4, 5, 6):
        assert by_m[m]["status"] == "optimal"
    # ...searching a vanishing fraction of the path space at m=6...
    six = by_m[6]
    assert six["nodes_expanded"] < six["paths_total"] / 100
    # ...and out of memory at seven (the paper's cliff).
    assert by_m[7]["status"] == "out-of-memory"
