"""Extension: every scheduler in the library, side by side.

Beyond the paper's five bars: the HotSpot-style tiered scheme, the
count-promotion / hotness-first / greedy-budget static baselines, all
on the model-level projection of each benchmark.
"""

from repro.analysis import average_row, format_figure
from repro.analysis.experiments import grand_comparison

SERIES = [
    "lower_bound", "iar", "greedy_budget", "hotness_first", "ondemand",
    "tiered", "jikes", "v8", "optimizing_level", "base_level",
]


def _sweep(suite):
    rows = []
    for name, instance in suite.items():
        row = {"benchmark": name}
        row.update(grand_comparison(instance))
        rows.append(row)
    return rows


def test_grand_comparison(benchmark, suite, report, scale):
    rows = benchmark.pedantic(_sweep, args=(suite,), rounds=1, iterations=1)
    avg = average_row(rows, SERIES)
    text = format_figure(
        [avg] + rows, SERIES,
        title=f"Extension — all schedulers, normalized make-span (scale={scale})",
    )
    report("grand_comparison", text)

    # Planned schedules beat every reactive scheme on average.
    planned_best = min(float(avg[k]) for k in ("iar", "greedy_budget"))
    for reactive in ("jikes", "v8", "tiered"):
        assert float(avg[reactive]) > planned_best
    # And the naive extremes stay the worst.
    assert float(avg["base_level"]) == max(float(avg[k]) for k in SERIES)
