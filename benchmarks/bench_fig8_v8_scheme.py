"""Figure 8: the V8 scheduling scheme on two-level projections.

Paper's shape: the V8 scheme's gap from the (two-level) lower bound is
smaller than the Jikes case — 61% on average — mostly because the lower
bound itself is higher with only the two lowest levels; IAR stays ~4%
from the bound.  "The IAR algorithm still produces near optimal results
while the default scheduling has a large room for improvement."
"""

from repro.analysis import average_row, format_figure
from repro.analysis.experiments import figure5, figure8

SERIES = ["lower_bound", "iar", "default", "base_level", "optimizing_level"]


def test_figure8(benchmark, suite, report, scale):
    rows = benchmark.pedantic(figure8, args=(suite,), rounds=1, iterations=1)
    avg = average_row(rows, SERIES)
    text = format_figure(
        [avg] + rows,
        SERIES,
        title=f"Figure 8 — V8 scheme, two-level projection (scale={scale})",
    )
    report("fig8_v8_scheme", text)

    assert avg["iar"] < 1.3, "IAR near the bound in the V8 setting"
    assert avg["default"] > avg["iar"], "V8 scheme leaves room on the table"
    assert avg["base_level"] > avg["default"], "base-only is still worst"

    # The two-level lower bound is higher, so the single-level schemes'
    # gaps shrink relative to the Jikes (4-level) experiment — the
    # paper's "the gaps between the two single-level compilation
    # schedules and the lower bound also become smaller".
    rows5 = figure5(suite)
    avg5 = average_row(rows5, SERIES)
    assert (avg["base_level"] - 1.0) < (avg5["base_level"] - 1.0)
    assert (avg["optimizing_level"] - 1.0) <= (avg5["optimizing_level"] - 1.0)
