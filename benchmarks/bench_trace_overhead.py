"""Tracing-disabled overhead of the instrumented engines.

The observability layer's contract is "disabled means absent": with
``tracer=None`` (the default everywhere) the only added cost on a hot
path is one ``is None`` branch per emission site.  This harness times
the public ``simulate()`` (which now routes through the tracer check)
against the private ``_simulate`` body it wraps, and asserts the ratio
stays under ``REPRO_TRACE_OVERHEAD_MAX`` (default 1.05, i.e. < 5%).

Also usable as a plain script for the CI smoke job::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core.makespan import _simulate, simulate
from repro.core.single_level import base_level_schedule
from repro.observability import Tracer
from repro.workloads import WorkloadSpec, generate

OVERHEAD_MAX = float(os.environ.get("REPRO_TRACE_OVERHEAD_MAX", "1.05"))

SPEC = WorkloadSpec(
    name="trace-overhead",
    num_functions=300,
    num_calls=100_000,
    num_levels=4,
    base_compile_us=50.0,
    mean_exec_us=2.0,
)

INSTANCE = generate(SPEC, seed=42)
SCHEDULE = base_level_schedule(INSTANCE)


def _best_of(fn, repeats: int = 5) -> float:
    """Best-of-N wall time — robust to scheduler noise on CI boxes."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def measure_overhead_ratio(repeats: int = 5) -> float:
    """public simulate(tracer=None) time / private _simulate time."""
    # Warm both paths first so allocator/caching effects cancel out.
    simulate(INSTANCE, SCHEDULE, validate=False)
    _simulate(INSTANCE, SCHEDULE)
    wrapped = _best_of(
        lambda: simulate(INSTANCE, SCHEDULE, validate=False), repeats
    )
    direct = _best_of(lambda: _simulate(INSTANCE, SCHEDULE), repeats)
    return wrapped / direct


def test_tracing_disabled_overhead_is_negligible():
    ratio = measure_overhead_ratio()
    assert ratio < OVERHEAD_MAX, (
        f"simulate() with tracing disabled is {ratio:.3f}x the direct "
        f"engine (limit {OVERHEAD_MAX})"
    )


def test_traced_run_equals_untraced_run():
    plain = simulate(INSTANCE, SCHEDULE, validate=False)
    traced = simulate(INSTANCE, SCHEDULE, validate=False, tracer=Tracer())
    assert traced.makespan == plain.makespan
    assert traced.total_bubble_time == plain.total_bubble_time


def main() -> int:
    ratio = measure_overhead_ratio()
    print(f"tracing-disabled overhead: {ratio:.4f}x (limit {OVERHEAD_MAX}x)")
    if ratio >= OVERHEAD_MAX:
        print("FAIL: overhead above limit")
        return 1
    test_traced_run_equals_untraced_run()
    print("traced run bitwise-identical to untraced run: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
