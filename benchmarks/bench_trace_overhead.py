"""Tracing- and metrics-disabled overhead of the instrumented engines.

The observability layer's contract is "disabled means absent": with
``tracer=None`` / ``metrics=None`` (the defaults everywhere) the only
added cost on a hot path is one ``is None`` branch per emission site.
This harness times the public ``simulate()`` (which now routes through
the tracer and metrics checks) against the private ``_simulate`` body
it wraps, and asserts the ratio stays under
``REPRO_TRACE_OVERHEAD_MAX`` (default 1.05, i.e. < 5%).  The same
discipline covers the perf counter hooks: a ``FastSimulator`` with no
registry attached must evaluate at parity with one that never heard of
metrics — counting happens at call boundaries, never inside the replay
loops.

Also usable as a plain script for the CI smoke job::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.core.makespan import _simulate, simulate
from repro.core.single_level import base_level_schedule
from repro.observability import Tracer
from repro.workloads import WorkloadSpec, generate

OVERHEAD_MAX = float(os.environ.get("REPRO_TRACE_OVERHEAD_MAX", "1.05"))

SPEC = WorkloadSpec(
    name="trace-overhead",
    num_functions=300,
    num_calls=100_000,
    num_levels=4,
    base_compile_us=50.0,
    mean_exec_us=2.0,
)

INSTANCE = generate(SPEC, seed=42)
SCHEDULE = base_level_schedule(INSTANCE)


def _best_of(fn, repeats: int = 5) -> float:
    """Best-of-N wall time — robust to scheduler noise on CI boxes."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def measure_overhead_ratio(repeats: int = 5) -> float:
    """public simulate(tracer=None) time / private _simulate time."""
    # Warm both paths first so allocator/caching effects cancel out.
    simulate(INSTANCE, SCHEDULE, validate=False)
    _simulate(INSTANCE, SCHEDULE)
    wrapped = _best_of(
        lambda: simulate(INSTANCE, SCHEDULE, validate=False), repeats
    )
    direct = _best_of(lambda: _simulate(INSTANCE, SCHEDULE), repeats)
    return wrapped / direct


def test_tracing_disabled_overhead_is_negligible():
    ratio = measure_overhead_ratio()
    assert ratio < OVERHEAD_MAX, (
        f"simulate() with tracing disabled is {ratio:.3f}x the direct "
        f"engine (limit {OVERHEAD_MAX})"
    )


def test_traced_run_equals_untraced_run():
    plain = simulate(INSTANCE, SCHEDULE, validate=False)
    traced = simulate(INSTANCE, SCHEDULE, validate=False, tracer=Tracer())
    assert traced.makespan == plain.makespan
    assert traced.total_bubble_time == plain.total_bubble_time


def measure_metrics_overhead_ratio(repeats: int = 5) -> float:
    """FastSimulator evaluate with metrics=None vs enabled registry.

    The disabled path must be at parity (the counter hooks sit at call
    boundaries, so even the *enabled* path adds only O(1) per call) —
    the ratio here is disabled/enabled, expected ~1.0.
    """
    from repro.core.fastsim import FastSimulator
    from repro.observability import MetricsRegistry

    disabled = FastSimulator(INSTANCE)
    enabled = FastSimulator(INSTANCE, metrics=MetricsRegistry())
    disabled.evaluate(SCHEDULE)
    enabled.evaluate(SCHEDULE)
    t_disabled = _best_of(lambda: disabled.evaluate(SCHEDULE), repeats)
    t_enabled = _best_of(lambda: enabled.evaluate(SCHEDULE), repeats)
    return t_disabled / t_enabled


def test_metrics_disabled_runs_at_parity():
    # Guard against hooks creeping into the replay loops: disabled must
    # not be slower than enabled beyond the noise limit (enabled does
    # strictly more work, so disabled/enabled > limit means the
    # disabled path itself regressed).
    ratio = measure_metrics_overhead_ratio()
    assert ratio < OVERHEAD_MAX, (
        f"FastSimulator with metrics disabled is {ratio:.3f}x the "
        f"enabled engine (limit {OVERHEAD_MAX})"
    )


def test_metrics_never_change_the_numbers():
    from repro.core.fastsim import FastSimulator
    from repro.observability import MetricsRegistry

    plain = FastSimulator(INSTANCE).evaluate(SCHEDULE)
    reg = MetricsRegistry()
    counted = FastSimulator(INSTANCE, metrics=reg).evaluate(SCHEDULE)
    assert counted.makespan == plain.makespan
    assert counted.total_bubble_time == plain.total_bubble_time
    assert reg.counter("fastsim.calls_replayed").value == len(INSTANCE.calls)


def main() -> int:
    ratio = measure_overhead_ratio()
    print(f"tracing-disabled overhead: {ratio:.4f}x (limit {OVERHEAD_MAX}x)")
    if ratio >= OVERHEAD_MAX:
        print("FAIL: overhead above limit")
        return 1
    test_traced_run_equals_untraced_run()
    print("traced run bitwise-identical to untraced run: ok")
    mratio = measure_metrics_overhead_ratio()
    print(
        f"metrics-disabled / metrics-enabled fastsim: {mratio:.4f}x "
        f"(limit {OVERHEAD_MAX}x)"
    )
    if mratio >= OVERHEAD_MAX:
        print("FAIL: metrics-disabled path above limit")
        return 1
    test_metrics_never_change_the_numbers()
    print("counted run bitwise-identical to uncounted run: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
