"""Shared fixtures and reporting for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md's per-experiment index), prints it, and
writes it under ``benchmarks/output/`` so EXPERIMENTS.md can cite the
numbers.  The workload scale is controlled by the ``REPRO_SCALE``
environment variable (default 0.01; 1.0 reproduces the full Table 1
trace lengths — slow).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.workloads import dacapo

SCALE = float(os.environ.get("REPRO_SCALE", "0.01"))
OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE


@pytest.fixture(scope="session")
def suite():
    """The nine Table-1 benchmarks at the configured scale."""
    return dacapo.load_suite(scale=SCALE)


@pytest.fixture(scope="session")
def report():
    """Print a rendered table and persist it under benchmarks/output/.

    Each table is written twice: the human-readable ``{name}.txt`` and
    a schema-versioned ``BENCH_{name}.json`` sidecar (via the perf
    baseline writer) carrying the text plus machine fingerprint, scale,
    and git revision — so archived outputs say where they came from.
    """
    from repro.perf import write_legacy_sidecar

    def _report(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        write_legacy_sidecar(OUTPUT_DIR, name, text, scale=SCALE)
        print()
        print(text)

    return _report
