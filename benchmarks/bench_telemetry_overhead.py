"""Telemetry-disabled overhead of the decision engine's hot path.

The telemetry plane's contract mirrors the tracer's: "disabled means
absent".  With ``telemetry=None`` (the default everywhere) the only
added cost per decision is one ``is None`` branch at each emission
site, so the decide path must stay within ``REPRO_TELEMETRY_OVERHEAD_MAX``
(default 1.05, i.e. < 5%) of the strictly-busier telemetry-attached
path — if the disabled path is measurably *slower* than one doing
extra work, hooks have crept inside the replay loop.  The committed
``BENCH_service_telemetry.json`` baseline gates the same path's
deterministic counters in the bench-smoke CI job.

The second contract checked here is the important one: the decision
log is bitwise identical with the plane attached or not, clean and
under a nonzero fault spec.

Also usable as a plain script for the CI smoke job::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.service import DecisionCache, DecisionEngine, generate_events
from repro.service.driver import decision_line, replay_inproc
from repro.telemetry import ServiceTelemetry

OVERHEAD_MAX = float(os.environ.get("REPRO_TELEMETRY_OVERHEAD_MAX", "1.05"))

FAULTS = "compile_fail=0.1,retries=1,seed=3"

EVENTS = generate_events(tenants=8, events=5_000, scale=0.01, seed=0)


def _best_of(fn, repeats: int = 5) -> float:
    """Best-of-N wall time — robust to scheduler noise on CI boxes."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def _engine(telemetry: bool, faults=None) -> DecisionEngine:
    return DecisionEngine(
        faults=faults,
        cache=DecisionCache(),
        telemetry=ServiceTelemetry(shards=8) if telemetry else None,
    )


def _replay(telemetry: bool, faults=None):
    records, _ = replay_inproc(EVENTS, _engine(telemetry, faults))
    return records


def measure_disabled_parity_ratio(repeats: int = 5) -> float:
    """replay with telemetry=None time / telemetry-attached time.

    The attached plane does strictly more work per decision (tagged
    counters, flight ring, SLO windows), so disabled/attached above the
    limit means the disabled path itself regressed.
    """
    _replay(False)  # warm both paths so allocator effects cancel out
    _replay(True)
    disabled = _best_of(lambda: _replay(False), repeats)
    enabled = _best_of(lambda: _replay(True), repeats)
    return disabled / enabled


def measure_enabled_overhead_ratio(repeats: int = 5) -> float:
    """Informational: telemetry-attached time / telemetry=None time."""
    _replay(False)
    _replay(True)
    disabled = _best_of(lambda: _replay(False), repeats)
    enabled = _best_of(lambda: _replay(True), repeats)
    return enabled / disabled


def test_telemetry_disabled_overhead_is_negligible():
    ratio = measure_disabled_parity_ratio()
    assert ratio < OVERHEAD_MAX, (
        f"decide path with telemetry disabled is {ratio:.3f}x the "
        f"telemetry-attached path (limit {OVERHEAD_MAX})"
    )


def test_telemetry_never_changes_the_log():
    for faults in (None, FAULTS):
        plain = _replay(False, faults)
        observed = _replay(True, faults)
        assert [decision_line(r) for r in observed] == [
            decision_line(r) for r in plain
        ], f"decision log changed with telemetry attached (faults={faults!r})"


def test_telemetry_observed_every_decision():
    engine = _engine(True, FAULTS)
    records, _ = replay_inproc(EVENTS, engine)
    assert engine.telemetry.flight.recorded == len(records)


def main() -> int:
    ratio = measure_disabled_parity_ratio()
    print(
        f"telemetry-disabled / telemetry-attached decide path: "
        f"{ratio:.4f}x (limit {OVERHEAD_MAX}x)"
    )
    if ratio >= OVERHEAD_MAX:
        print("FAIL: telemetry-disabled path above limit")
        return 1
    enabled = measure_enabled_overhead_ratio()
    print(f"telemetry-attached overhead: {enabled:.4f}x (informational)")
    test_telemetry_never_changes_the_log()
    print("decision log bitwise-identical with telemetry on/off: ok")
    test_telemetry_observed_every_decision()
    print("flight recorder saw every journaled decision: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
