"""Determinism battery: reservoirs, and the telemetry on/off contract.

Two layers of the same promise:

* The :class:`repro.observability.metrics.Histogram` reservoir is
  seeded from its *name*, so the same name fed the same values yields
  the same quantiles in any registry, any process, any order of
  unrelated registrations — which is what makes engine metric snapshots
  comparable across runs at all.
* Attaching a :class:`repro.telemetry.ServiceTelemetry` plane must not
  change a single byte of the decision log, the engine summary, or the
  engine's deterministic metric snapshot — clean or under a nonzero
  fault spec, in-process or over a real socket.
"""

from __future__ import annotations

import json

import pytest

from repro.observability import MetricsRegistry
from repro.observability.metrics import Histogram
from repro.service import (
    DecisionCache,
    DecisionEngine,
    generate_events,
    run_replay,
)
from repro.telemetry import ServiceTelemetry

FAULTS = "compile_fail=0.1,retries=1,seed=3"
TENANTS = 6
EVENTS = 400


@pytest.fixture(scope="module")
def events():
    return generate_events(tenants=TENANTS, events=EVENTS, scale=0.02, seed=0)


# ---------------------------------------------------------------------------
# Reservoir determinism
# ---------------------------------------------------------------------------
class TestReservoirDeterminism:
    VALUES = [float((i * 37) % 101) for i in range(5000)]

    def _summary(self, histogram: Histogram):
        return (
            histogram.count,
            histogram.total,
            histogram.percentile(50.0),
            histogram.percentile(90.0),
            histogram.percentile(99.0),
        )

    def test_same_name_same_values_same_quantiles(self):
        a, b = Histogram("service.latency_ms"), Histogram("service.latency_ms")
        for value in self.VALUES:
            a.record(value)
            b.record(value)
        assert self._summary(a) == self._summary(b)

    def test_registry_independent(self):
        ra, rb = MetricsRegistry(), MetricsRegistry()
        rb.counter("unrelated.noise").inc()  # extra registrations
        rb.histogram("other.first")  # and creation-order changes
        ha = ra.histogram("service.latency_ms")
        hb = rb.histogram("service.latency_ms")
        for value in self.VALUES:
            ha.record(value)
            hb.record(value)
        assert self._summary(ha) == self._summary(hb)

    def test_different_names_sample_differently(self):
        # The CRC-of-name seed means distinct series keep independent
        # reservoirs; with >1024 values the kept subsets should differ.
        a, b = Histogram("series.a"), Histogram("series.b")
        for value in self.VALUES:
            a.record(value)
            b.record(value)
        assert (a.count, a.total) == (b.count, b.total)
        assert sorted(a._samples) != sorted(b._samples)

    def test_snapshot_render_stable_across_repeats(self):
        def build():
            registry = MetricsRegistry()
            histogram = registry.histogram("service.latency_ms")
            for value in self.VALUES:
                histogram.record(value)
            registry.counter("service.decisions").inc(7)
            return registry

        first, second = build(), build()
        assert first.snapshot() == second.snapshot()
        assert first.render() == second.render()


# ---------------------------------------------------------------------------
# Telemetry on/off parity
# ---------------------------------------------------------------------------
def _journal(events, tmp_path, name, mode, faults=None, telemetry=False):
    engine = DecisionEngine(
        faults=faults,
        cache=DecisionCache(),
        metrics=MetricsRegistry(),
        telemetry=ServiceTelemetry(shards=8) if telemetry else None,
    )
    out = tmp_path / name
    report = run_replay(events, engine, decisions_out=out, mode=mode)
    return out.read_bytes(), engine, report


class TestTelemetryOnOffParity:
    @pytest.mark.parametrize("mode", ["inproc", "socket"])
    @pytest.mark.parametrize("faults", [None, FAULTS])
    def test_journal_and_engine_state_bitwise_equal(
        self, events, tmp_path, mode, faults
    ):
        tag = f"{mode}-{'faults' if faults else 'clean'}"
        off_log, off_engine, off_report = _journal(
            events, tmp_path, f"off-{tag}.jsonl", mode, faults, telemetry=False
        )
        on_log, on_engine, on_report = _journal(
            events, tmp_path, f"on-{tag}.jsonl", mode, faults, telemetry=True
        )
        assert on_log == off_log  # the acceptance bar: bitwise identity
        assert on_engine.summary() == off_engine.summary()
        # The engine's own deterministic registry must also be
        # byte-identical: telemetry data lives in separate registries.
        on_snap = {
            k: v
            for k, v in on_engine.metrics.snapshot().items()
            if not k.startswith("service.latency_ms")
            and not k.startswith("service.batch_size")
        }
        off_snap = {
            k: v
            for k, v in off_engine.metrics.snapshot().items()
            if not k.startswith("service.latency_ms")
            and not k.startswith("service.batch_size")
        }
        assert on_snap == off_snap
        assert on_report.decisions == off_report.decisions

    def test_corr_is_stamped_identically(self, events, tmp_path):
        off_log, _, _ = _journal(
            events, tmp_path, "corr-off.jsonl", "inproc", telemetry=False
        )
        records = [
            json.loads(line) for line in off_log.splitlines() if line.strip()
        ]
        assert records, "journal is empty"
        for record in records:
            assert record["corr"] == f"{record['tenant']}.{record['seq']}"

    def test_telemetry_plane_observed_the_run(self, events, tmp_path):
        _, engine, report = _journal(
            events, tmp_path, "observed.jsonl", "inproc", FAULTS, telemetry=True
        )
        telemetry = engine.telemetry
        snap = telemetry.snapshot()
        decisions = sum(
            value
            for key, value in snap.items()
            if key.startswith("service.decisions{")
        )
        assert decisions == engine.decisions
        assert telemetry.flight.recorded == engine.decisions
        assert report.slo  # the report carries the SLO view
        assert set(report.slo) == {
            str(e["tenant"]) for e in events if e["op"] == "call"
        }

    def test_resume_with_telemetry_matches_uninterrupted(
        self, events, tmp_path
    ):
        full_log, _, _ = _journal(
            events, tmp_path, "full.jsonl", "inproc", FAULTS, telemetry=True
        )
        # Journal only the first half, then resume with telemetry on.
        half = events[: len(events) // 2]
        out = tmp_path / "resumed.jsonl"
        engine = DecisionEngine(
            faults=FAULTS, cache=DecisionCache(),
            telemetry=ServiceTelemetry(shards=8),
        )
        run_replay(half, engine, decisions_out=out, mode="inproc")
        engine = DecisionEngine(
            faults=FAULTS, cache=DecisionCache(),
            telemetry=ServiceTelemetry(shards=8),
        )
        run_replay(
            events, engine, decisions_out=out, mode="inproc", resume=True
        )
        assert out.read_bytes() == full_log
