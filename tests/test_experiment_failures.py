"""Failure handling in the parallel runner (the narrowed handlers).

The broad ``except Exception`` blocks in ``analysis/experiments.py``
used to flatten every failure into one string.  Now a failing unit
attaches a structured failure record (type, message, trimmed traceback)
to the run journal, ``SuiteRun.errors`` carries the exception type and
attempt count, and store corruption — the one failure that poisons
*every* unit — aborts the run with :class:`StoreCorruptionError`
instead of being silently recomputed around.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import run_parallel
from repro.core import FunctionProfile, OCSPInstance
from repro.store import ResultStore, StoreCorruptionError
from repro.store.runstate import load_runstate
from repro.workloads import WorkloadSpec, generate


@pytest.fixture(scope="module")
def suite():
    spec = WorkloadSpec(
        name="ok", num_functions=6, num_calls=80, num_levels=3
    )
    return {"ok": generate(spec, seed=7)}


def _poisoned(suite):
    broken = OCSPInstance(
        {"f0": FunctionProfile("f0", (1.0,), (1.0,))}, ("f0",), name="bad"
    )
    object.__setattr__(broken, "calls", ("f0", "missing"))
    out = dict(suite)
    out["bad"] = broken
    return out


@pytest.mark.parametrize("jobs", [1, 2])
def test_errors_carry_type_and_attempts(suite, jobs):
    run = run_parallel(
        _poisoned(suite), drivers=("figure5",), jobs=jobs, max_retries=1
    )
    assert not run.ok
    (entry,) = run.errors
    assert entry["benchmark"] == "bad"
    assert entry["type"]  # the exception class name, not a guess
    assert entry["attempts"] == "2"  # first try + one retry


@pytest.mark.parametrize("jobs", [1, 2])
def test_journal_gets_a_structured_failure_record(suite, tmp_path, jobs):
    checkpoint = tmp_path / f"runstate-{jobs}.jsonl"
    run = run_parallel(
        _poisoned(suite),
        drivers=("figure5",),
        jobs=jobs,
        checkpoint=checkpoint,
        max_retries=0,
    )
    assert not run.ok
    records = load_runstate(checkpoint)
    failed = records["figure5/bad"]
    assert failed.status == "failed"
    failure = failed.failure
    assert failure is not None
    assert failure["unit"] == "figure5/bad"
    assert failure["type"] and failure["message"]
    # the trimmed traceback is file:line frames, machine-minable
    assert isinstance(failure["traceback"], list)
    if failure["traceback"]:  # synthetic records may carry none
        assert all(":" in frame for frame in failure["traceback"])
    # healthy units carry no failure
    assert records["figure5/ok"].failure is None
    # and the record survives a JSON round trip (it is journaled JSON)
    assert json.loads(json.dumps(failure)) == failure


@pytest.mark.parametrize("jobs", [1, 2])
def test_corrupt_store_entry_aborts_the_run(suite, tmp_path, jobs):
    cache_dir = tmp_path / f"cache-{jobs}"
    first = run_parallel(
        suite, drivers=("figure5",), jobs=jobs, cache=cache_dir
    )
    assert first.ok
    store = ResultStore(cache_dir)
    # mangle every cached entry in place: valid version header, broken
    # structure (the strict read must escalate, not silently recompute)
    damaged = 0
    for sub in store.objects_dir.iterdir():
        for path in sub.glob("*.json"):
            doc = json.loads(path.read_text())
            doc["fingerprint"] = "0" * 64
            path.write_text(json.dumps(doc))
            damaged += 1
    assert damaged > 0
    with pytest.raises(StoreCorruptionError, match="corrupt store entry"):
        run_parallel(suite, drivers=("figure5",), jobs=jobs, cache=cache_dir)


def test_default_store_reads_stay_lenient(suite, tmp_path):
    # Outside the runner, a damaged entry is still just a miss (the
    # pinned contract of test_store.py) — strict mode is opt-in.
    cache_dir = tmp_path / "cache"
    run_parallel(suite, drivers=("figure5",), jobs=1, cache=cache_dir)
    store = ResultStore(cache_dir)
    (path,) = [
        p for sub in store.objects_dir.iterdir() for p in sub.glob("*.json")
    ]
    path.write_text("garbage")
    assert store.get(path.stem) is None
    assert not path.exists()  # lenient mode unlinks the dead weight
