"""Tests for the make-span simulator, anchored on the paper's Figures 1–2."""

import pytest

from repro.core import (
    CompileTask,
    Schedule,
    ScheduleError,
    iter_calls,
    simulate,
    simulate_single_core,
)

S1 = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0))
S2 = Schedule.of(("f0", 0), ("f1", 1), ("f2", 0))
S3 = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0), ("f1", 1))


class TestFigure1:
    """Exact make-spans of the three schemes in Figure 1."""

    def test_scheme_s1_all_low(self, fig1_instance):
        assert simulate(fig1_instance, S1).makespan == 11.0

    def test_scheme_s2_f1_high_only(self, fig1_instance):
        assert simulate(fig1_instance, S2).makespan == 12.0

    def test_scheme_s3_f1_recompiled(self, fig1_instance):
        assert simulate(fig1_instance, S3).makespan == 10.0

    def test_s3_is_best_of_three(self, fig1_instance):
        spans = [simulate(fig1_instance, s).makespan for s in (S1, S2, S3)]
        assert min(spans) == spans[2]

    def test_s2_bubble_waiting_for_high_compile(self, fig1_instance):
        # f0 waits for its own compile [0,1] (bubble 1) and f1's first
        # call is ready at t=2 but c11 finishes at t=5 (bubble 3).
        result = simulate(fig1_instance, S2)
        assert result.total_bubble_time == 4.0


class TestFigure2:
    """Appending a call to f2 flips the ranking (Figure 2)."""

    def _extended(self, schedule):
        return Schedule(schedule.tasks + (CompileTask("f2", 1),))

    def test_s1_extended_becomes_best(self, fig2_instance):
        assert simulate(fig2_instance, self._extended(S1)).makespan == 12.0

    def test_s2_extended(self, fig2_instance):
        assert simulate(fig2_instance, self._extended(S2)).makespan == 13.0

    def test_s3_without_extension(self, fig2_instance):
        assert simulate(fig2_instance, S3).makespan == 13.0

    def test_s3_extension_not_beneficial(self, fig2_instance):
        # The paper notes appending c21 to s3 is "apparently not
        # beneficial": the make-span stays 13.
        assert simulate(fig2_instance, self._extended(S3)).makespan == 13.0

    def test_previously_best_is_now_worst(self, fig2_instance):
        spans = {
            "s1x": simulate(fig2_instance, self._extended(S1)).makespan,
            "s2x": simulate(fig2_instance, self._extended(S2)).makespan,
            "s3": simulate(fig2_instance, S3).makespan,
        }
        assert spans["s1x"] == min(spans.values())
        assert spans["s3"] == max(spans.values())


class TestSimulationMechanics:
    def test_calls_at_level_histogram(self, fig1_instance):
        result = simulate(fig1_instance, S3)
        assert result.calls_at_level == {0: 3, 1: 1}

    def test_total_exec_plus_bubbles_equals_makespan(self, fig1_instance):
        for sched in (S1, S2, S3):
            result = simulate(fig1_instance, sched)
            assert result.total_exec_time + result.total_bubble_time == pytest.approx(
                result.makespan
            )

    def test_compile_end_reported(self, fig1_instance):
        result = simulate(fig1_instance, S3)
        assert result.compile_end == 7.0  # 1+1+1+4

    def test_timeline_recording(self, fig1_instance):
        result = simulate(fig1_instance, S3, record_timeline=True)
        assert len(result.task_timings) == 4
        assert len(result.call_timings) == 4
        first = result.call_timings[0]
        assert first.function == "f0"
        assert first.start == 1.0 and first.finish == 2.0 and first.bubble == 1.0
        last = result.call_timings[-1]
        assert last.level == 1  # second f1 call runs the recompiled code

    def test_timeline_off_by_default(self, fig1_instance):
        result = simulate(fig1_instance, S1)
        assert result.task_timings is None
        assert result.call_timings is None

    def test_invalid_schedule_raises(self, fig1_instance):
        with pytest.raises(ScheduleError):
            simulate(fig1_instance, Schedule.of(("f0", 0)))

    def test_validate_can_be_disabled_for_covering_schedules(self, fig1_instance):
        # Skipping validation is the caller's promise; a covering
        # schedule still simulates fine.
        result = simulate(fig1_instance, S1, validate=False)
        assert result.makespan == 11.0

    def test_bad_thread_count(self, fig1_instance):
        with pytest.raises(ValueError):
            simulate(fig1_instance, S1, compile_threads=0)

    def test_useless_tail_task_does_not_change_makespan(self, fig1_instance):
        extended = Schedule(S3.tasks + (CompileTask("f2", 1),))
        assert (
            simulate(fig1_instance, extended).makespan
            == simulate(fig1_instance, S3).makespan
        )

    def test_version_decided_at_call_start(self, fig2_instance):
        # In s3 on fig2, c21 would finish at 12 while f2's 2nd call
        # starts at 10 — the call must run the level-0 code.
        extended = Schedule(S3.tasks + (CompileTask("f2", 1),))
        result = simulate(fig2_instance, extended, record_timeline=True)
        assert result.call_timings[-1].level == 0


class TestConcurrentCompilation:
    def test_more_threads_never_hurt(self, fig2_instance):
        base = simulate(fig2_instance, S2).makespan
        for k in (2, 3, 8):
            assert simulate(fig2_instance, S2, compile_threads=k).makespan <= base

    def test_two_threads_overlap_compiles(self, fig1_instance):
        # With 2 threads, c11 (len 4) runs alongside c00/c10/c20.
        result = simulate(fig1_instance, S2, compile_threads=2)
        # c00 on t0 [0,1], c11 on t1 [0,4], c20 on t0 [1,2]:
        # e00 [1,2], f1 waits until 4, e11 [4,6], e20 [6,9], e11 [9,11]
        assert result.makespan == 11.0

    def test_thread_assignment_recorded(self, fig1_instance):
        result = simulate(
            fig1_instance, S2, compile_threads=2, record_timeline=True
        )
        threads = {t.thread for t in result.task_timings}
        assert threads == {0, 1}


class TestIterCalls:
    def test_matches_simulate(self, fig2_instance):
        sched = S3
        events = list(iter_calls(fig2_instance, sched))
        result = simulate(fig2_instance, sched, record_timeline=True)
        assert len(events) == len(result.call_timings)
        for (fname, level, start, finish, bubble), timing in zip(
            events, result.call_timings
        ):
            assert fname == timing.function
            assert level == timing.level
            assert start == timing.start
            assert finish == timing.finish
            assert bubble == timing.bubble

    def test_lazy(self, fig2_instance):
        gen = iter_calls(fig2_instance, S3)
        first = next(gen)
        assert first[0] == "f0"


class TestSingleCore:
    def test_sum_of_compiles_and_execs(self, fig1_instance):
        result = simulate_single_core(fig1_instance, S1)
        # compiles 1+1+1 + execs 1+3+3+3
        assert result.makespan == 13.0
        assert result.total_bubble_time == 0.0

    def test_recompilation_charged_but_best_level_used(self, fig1_instance):
        result = simulate_single_core(fig1_instance, S3)
        # compiles 1+1+1+4; f1's two calls both at level 1 (optimal
        # single-core interleaving compiles before first use)
        assert result.makespan == 7.0 + (1.0 + 2.0 + 3.0 + 2.0)
        assert result.calls_at_level == {0: 2, 1: 2}

    def test_invalid_schedule_raises(self, fig1_instance):
        with pytest.raises(ScheduleError):
            simulate_single_core(fig1_instance, Schedule.of(("f0", 0)))
