"""Tests for per-invocation execution-time variability (Section 8)."""

import pytest

from repro.core import Schedule, iar_schedule, simulate, simulate_variable
from repro.core.single_level import base_level_schedule
from repro.core.variability import variability_experiment


class TestSimulateVariable:
    def test_zero_sigma_matches_deterministic(self, fig2_instance):
        sched = Schedule.of(("f0", 0), ("f1", 0), ("f2", 0), ("f1", 1))
        det = simulate(fig2_instance, sched)
        var = simulate_variable(fig2_instance, sched, rel_sigma=0.0)
        assert var.makespan == det.makespan
        assert var.total_bubble_time == det.total_bubble_time

    def test_deterministic_per_seed(self, small_synthetic):
        sched = base_level_schedule(small_synthetic)
        a = simulate_variable(small_synthetic, sched, 0.5, seed=4)
        b = simulate_variable(small_synthetic, sched, 0.5, seed=4)
        assert a.makespan == b.makespan

    def test_seed_varies(self, small_synthetic):
        sched = base_level_schedule(small_synthetic)
        a = simulate_variable(small_synthetic, sched, 0.5, seed=4)
        b = simulate_variable(small_synthetic, sched, 0.5, seed=5)
        assert a.makespan != b.makespan

    def test_negative_sigma_rejected(self, small_synthetic):
        sched = base_level_schedule(small_synthetic)
        with pytest.raises(ValueError):
            simulate_variable(small_synthetic, sched, -0.1)

    def test_bad_threads_rejected(self, small_synthetic):
        sched = base_level_schedule(small_synthetic)
        with pytest.raises(ValueError):
            simulate_variable(small_synthetic, sched, 0.1, compile_threads=0)

    def test_unit_mean_noise(self, small_synthetic):
        """The paper's Section 8 argument: averages are what matter.
        Across seeds, the mean variable make-span stays near the
        deterministic one."""
        sched = base_level_schedule(small_synthetic)
        det = simulate(small_synthetic, sched, validate=False).makespan
        trials = [
            simulate_variable(small_synthetic, sched, 0.5, seed=s).makespan
            for s in range(12)
        ]
        mean = sum(trials) / len(trials)
        assert abs(mean - det) / det < 0.05

    def test_counts_every_call(self, small_synthetic):
        sched = base_level_schedule(small_synthetic)
        result = simulate_variable(small_synthetic, sched, 0.5, seed=1)
        assert sum(result.calls_at_level.values()) == small_synthetic.num_calls


class TestVariabilityExperiment:
    def test_rankings_stable_under_noise(self, small_synthetic):
        """The paper's conclusion: variability does not change who
        wins.  IAR must beat base-level at every sigma."""
        schedules = {
            "iar": iar_schedule(small_synthetic),
            "base": base_level_schedule(small_synthetic),
        }
        rows = variability_experiment(
            small_synthetic, schedules, sigmas=(0.0, 0.5, 1.0), trials=4
        )
        for row in rows:
            assert row["iar"] <= row["base"]

    def test_row_shape(self, small_synthetic):
        schedules = {"iar": iar_schedule(small_synthetic)}
        rows = variability_experiment(
            small_synthetic, schedules, sigmas=(0.0, 0.3), trials=2
        )
        assert [row["sigma"] for row in rows] == [0.0, 0.3]
        assert all("iar" in row for row in rows)
