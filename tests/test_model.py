"""Tests for the OCSP data model (Definition 1)."""

import pytest

from repro.core import FunctionProfile, ModelError, OCSPInstance
from repro.core.model import merge_instances, validate_monotone_levels


class TestValidateMonotoneLevels:
    def test_accepts_single_level(self):
        validate_monotone_levels([1.0], [2.0])

    def test_accepts_monotone(self):
        validate_monotone_levels([1.0, 2.0, 2.0], [3.0, 3.0, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ModelError, match="at least one"):
            validate_monotone_levels([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ModelError, match="one entry per level"):
            validate_monotone_levels([1.0, 2.0], [1.0])

    def test_rejects_decreasing_compile(self):
        with pytest.raises(ModelError, match="non-decreasing"):
            validate_monotone_levels([2.0, 1.0], [2.0, 1.0])

    def test_rejects_increasing_exec(self):
        with pytest.raises(ModelError, match="non-increasing"):
            validate_monotone_levels([1.0, 2.0], [1.0, 2.0])

    def test_rejects_negative(self):
        with pytest.raises(ModelError, match="negative"):
            validate_monotone_levels([-1.0], [1.0])

    def test_rejects_nan(self):
        with pytest.raises(ModelError, match="not finite"):
            validate_monotone_levels([float("nan")], [1.0])

    def test_rejects_inf_exec(self):
        with pytest.raises(ModelError, match="not finite"):
            validate_monotone_levels([1.0], [float("inf")])


class TestFunctionProfile:
    def test_basic_accessors(self):
        prof = FunctionProfile("f", (1.0, 2.0), (4.0, 3.0))
        assert prof.num_levels == 2
        assert list(prof.levels) == [0, 1]
        assert prof.compile_time(1) == 2.0
        assert prof.exec_time(0) == 4.0

    def test_times_coerced_to_tuples(self):
        prof = FunctionProfile("f", [1.0, 2.0], [4.0, 3.0])
        assert isinstance(prof.compile_times, tuple)
        assert isinstance(prof.exec_times, tuple)

    def test_total_cost(self):
        prof = FunctionProfile("f", (1.0, 10.0), (5.0, 1.0))
        assert prof.total_cost(0, 3) == 1.0 + 15.0
        assert prof.total_cost(1, 3) == 10.0 + 3.0

    def test_most_cost_effective_level_prefers_cheap_for_cold(self):
        prof = FunctionProfile("f", (1.0, 10.0), (5.0, 1.0))
        assert prof.most_cost_effective_level(1) == 0

    def test_most_cost_effective_level_prefers_deep_for_hot(self):
        prof = FunctionProfile("f", (1.0, 10.0), (5.0, 1.0))
        assert prof.most_cost_effective_level(100) == 1

    def test_most_cost_effective_tie_break_low(self):
        # n=2: level0 cost 1+6=7, level1 cost 5+2=7 (tie)
        prof = FunctionProfile("f", (1.0, 5.0), (3.0, 1.0))
        assert prof.most_cost_effective_level(2, tie_break="low") == 0
        assert prof.most_cost_effective_level(2, tie_break="high") == 1

    def test_most_cost_effective_rejects_bad_tie_break(self):
        prof = FunctionProfile("f", (1.0,), (1.0,))
        with pytest.raises(ModelError):
            prof.most_cost_effective_level(1, tie_break="middle")

    def test_most_cost_effective_rejects_negative_calls(self):
        prof = FunctionProfile("f", (1.0,), (1.0,))
        with pytest.raises(ModelError):
            prof.most_cost_effective_level(-1)

    def test_most_responsive_level_is_zero(self):
        prof = FunctionProfile("f", (1.0, 2.0, 3.0), (3.0, 2.0, 1.0))
        assert prof.most_responsive_level == 0

    def test_reduced_to_two_levels(self):
        prof = FunctionProfile("f", (1.0, 5.0, 20.0), (9.0, 3.0, 1.0))
        reduced = prof.reduced_to_two_levels(100)  # hot: top level wins
        assert reduced.num_levels == 2
        assert reduced.compile_times == (1.0, 20.0)
        assert reduced.exec_times == (9.0, 1.0)

    def test_reduced_to_two_levels_collapses_when_cold(self):
        prof = FunctionProfile("f", (1.0, 50.0), (2.0, 1.9))
        reduced = prof.reduced_to_two_levels(1)
        assert reduced.num_levels == 1
        assert reduced.compile_times == (1.0,)

    def test_with_times(self):
        prof = FunctionProfile("f", (1.0, 2.0), (4.0, 3.0))
        new = prof.with_times(exec_times=(5.0, 2.0))
        assert new.exec_times == (5.0, 2.0)
        assert new.compile_times == prof.compile_times
        assert prof.exec_times == (4.0, 3.0)  # original untouched

    def test_invalid_profile_rejected_at_construction(self):
        with pytest.raises(ModelError):
            FunctionProfile("f", (2.0, 1.0), (1.0, 1.0))


class TestOCSPInstance:
    def _instance(self):
        profiles = {
            "a": FunctionProfile("a", (1.0,), (2.0,)),
            "b": FunctionProfile("b", (1.0, 3.0), (4.0, 2.0)),
            "unused": FunctionProfile("unused", (1.0,), (1.0,)),
        }
        return OCSPInstance(profiles, ("a", "b", "a", "a"), name="t")

    def test_counts_and_first_index(self):
        inst = self._instance()
        assert inst.num_calls == 4
        assert inst.num_functions == 2
        assert inst.call_count("a") == 3
        assert inst.call_count("b") == 1
        assert inst.call_count("unused") == 0
        assert inst.first_call_index("a") == 0
        assert inst.first_call_index("b") == 1

    def test_first_call_index_missing_raises(self):
        inst = self._instance()
        with pytest.raises(KeyError):
            inst.first_call_index("unused")

    def test_called_functions_in_first_call_order(self):
        inst = self._instance()
        assert inst.called_functions == ["a", "b"]

    def test_unknown_function_in_calls_rejected(self):
        with pytest.raises(ModelError, match="no profile"):
            OCSPInstance({"a": FunctionProfile("a", (1.0,), (1.0,))}, ("a", "x"))

    def test_max_level(self):
        inst = self._instance()
        assert inst.max_level("a") == 0
        assert inst.max_level("b") == 1

    def test_prefix(self):
        inst = self._instance()
        pre = inst.prefix(2)
        assert pre.calls == ("a", "b")
        assert pre.call_count("a") == 1

    def test_reduced_to_two_levels_drops_uncalled(self):
        inst = self._instance()
        reduced = inst.reduced_to_two_levels()
        assert "unused" not in reduced.profiles
        assert reduced.calls == inst.calls

    def test_restricted_to_levels(self):
        inst = self._instance()
        restricted = inst.restricted_to_levels({"b": [1]})
        assert restricted.profiles["b"].num_levels == 1
        assert restricted.profiles["b"].compile_times == (3.0,)
        assert restricted.profiles["a"].num_levels == 1  # untouched

    def test_restricted_to_levels_rejects_empty(self):
        inst = self._instance()
        with pytest.raises(ModelError, match="at least one level"):
            inst.restricted_to_levels({"b": []})

    def test_restricted_to_levels_rejects_out_of_range(self):
        inst = self._instance()
        with pytest.raises(ModelError, match="out of range"):
            inst.restricted_to_levels({"b": [5]})

    def test_total_exec_time_at_level(self):
        inst = self._instance()
        total = inst.total_exec_time_at_level(lambda f: 0)
        assert total == 2.0 + 4.0 + 2.0 + 2.0

    def test_summary(self):
        inst = self._instance()
        summary = inst.summary()
        assert summary["num_functions"] == 2
        assert summary["call_seq_length"] == 4
        assert summary["levels"] == 2

    def test_empty_calls_allowed(self):
        inst = OCSPInstance({}, ())
        assert inst.num_calls == 0
        assert inst.called_functions == []


class TestMergeInstances:
    def test_merges_disjoint(self):
        a = OCSPInstance({"a": FunctionProfile("a", (1.0,), (1.0,))}, ("a",))
        b = OCSPInstance({"b": FunctionProfile("b", (1.0,), (1.0,))}, ("b", "b"))
        merged = merge_instances([a, b], name="ab")
        assert merged.calls == ("a", "b", "b")
        assert merged.num_functions == 2
        assert merged.name == "ab"

    def test_identical_profiles_ok(self):
        prof = FunctionProfile("a", (1.0,), (1.0,))
        a = OCSPInstance({"a": prof}, ("a",))
        b = OCSPInstance({"a": prof}, ("a",))
        merged = merge_instances([a, b])
        assert merged.call_count("a") == 2

    def test_conflicting_profiles_rejected(self):
        a = OCSPInstance({"a": FunctionProfile("a", (1.0,), (1.0,))}, ("a",))
        b = OCSPInstance({"a": FunctionProfile("a", (2.0,), (1.0,))}, ("a",))
        with pytest.raises(ModelError, match="conflicting"):
            merge_instances([a, b])
