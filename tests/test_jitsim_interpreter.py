"""Tests for the mini-VM interpreter."""

import pytest

from repro.jitsim import (
    Interpreter,
    Program,
    VMError,
    assemble,
    fib_program,
    loops_program,
    phased_program,
)


class TestArithmetic:
    def _run(self, source, *args, num_params=0, num_locals=1):
        func = assemble("main", num_params, num_locals, source)
        program = Program.from_functions([func], entry="main")
        return Interpreter(program).run(*args)

    def test_constants_and_add(self):
        assert self._run("PUSH 2\nPUSH 3\nADD\nRET").result == 5

    def test_sub_mul(self):
        assert self._run("PUSH 7\nPUSH 3\nSUB\nPUSH 2\nMUL\nRET").result == 8

    def test_div_mod(self):
        assert self._run("PUSH 17\nPUSH 5\nDIV\nRET").result == 3
        assert self._run("PUSH 17\nPUSH 5\nMOD\nRET").result == 2

    def test_neg_dup_pop(self):
        assert self._run("PUSH 3\nNEG\nRET").result == -3
        assert self._run("PUSH 3\nDUP\nADD\nRET").result == 6
        assert self._run("PUSH 9\nPUSH 3\nPOP\nRET").result == 9

    def test_comparisons(self):
        assert self._run("PUSH 1\nPUSH 2\nLT\nRET").result == 1
        assert self._run("PUSH 2\nPUSH 2\nLT\nRET").result == 0
        assert self._run("PUSH 2\nPUSH 2\nLE\nRET").result == 1
        assert self._run("PUSH 2\nPUSH 2\nEQ\nRET").result == 1

    def test_locals(self):
        assert (
            self._run("PUSH 5\nSTORE 0\nLOAD 0\nLOAD 0\nMUL\nRET").result == 25
        )

    def test_params(self):
        func = assemble("main", 2, 2, "LOAD 0\nLOAD 1\nSUB\nRET")
        program = Program.from_functions([func], entry="main")
        assert Interpreter(program).run(10, 4).result == 6

    def test_loop_sum(self):
        # sum 1..5 via countdown
        source = """
            PUSH 0
            STORE 1
        loop:
            LOAD 0
            JZ done
            LOAD 1
            LOAD 0
            ADD
            STORE 1
            LOAD 0
            PUSH 1
            SUB
            STORE 0
            JMP loop
        done:
            LOAD 1
            RET
        """
        func = assemble("main", 1, 2, source)
        program = Program.from_functions([func], entry="main")
        assert Interpreter(program).run(5).result == 15


class TestErrors:
    def _program(self, source, num_params=0, num_locals=1):
        func = assemble("main", num_params, num_locals, source)
        return Program.from_functions([func], entry="main")

    def test_division_by_zero(self):
        with pytest.raises(VMError, match="division by zero"):
            Interpreter(self._program("PUSH 1\nPUSH 0\nDIV\nRET")).run()

    def test_modulo_by_zero(self):
        with pytest.raises(VMError, match="modulo by zero"):
            Interpreter(self._program("PUSH 1\nPUSH 0\nMOD\nRET")).run()

    def test_stack_underflow(self):
        with pytest.raises(VMError, match="underflow"):
            Interpreter(self._program("ADD\nRET")).run()

    def test_dup_on_empty(self):
        with pytest.raises(VMError, match="DUP"):
            Interpreter(self._program("DUP\nRET")).run()

    def test_step_budget(self):
        prog = self._program("start:\nJMP start\nPUSH 0\nRET")
        with pytest.raises(VMError, match="step budget"):
            Interpreter(prog, max_steps=100).run()

    def test_wrong_arity(self):
        prog = self._program("PUSH 0\nRET")
        with pytest.raises(TypeError):
            Interpreter(prog).run(1, 2)


class TestCallsAndTraces:
    def test_fib_result(self):
        trace = Interpreter(fib_program()).run(10)
        assert trace.result == 55

    def test_fib_trace_shape(self):
        trace = Interpreter(fib_program()).run(5)
        seq = trace.call_sequence
        assert seq[0] == "main"
        # naive fib(5) makes 15 fib invocations
        assert seq.count("fib") == 15
        assert len(seq) == 16

    def test_per_invocation_instruction_counts(self):
        trace = Interpreter(fib_program()).run(3)
        means = trace.mean_instructions()
        assert means["fib"] > 0
        assert means["main"] > 0
        # total = sum over invocations
        total = sum(rec.instructions for rec in trace.invocations)
        assert total == trace.total_instructions

    def test_callee_work_not_charged_to_caller(self):
        trace = Interpreter(fib_program()).run(8)
        means = trace.mean_instructions()
        # main only loads, calls, returns: few instructions despite
        # the expensive call inside.
        assert means["main"] < 10

    def test_loops_program_hotness(self):
        trace = Interpreter(loops_program(hot_calls=50, warm_calls=5)).run()
        seq = trace.call_sequence
        assert seq.count("hot_leaf") == 50
        assert seq.count("warm_helper") == 5
        assert seq.count("cold_init_a") == 1

    def test_phased_program_disjoint_phases(self):
        trace = Interpreter(phased_program(phase_calls=10)).run()
        seq = list(trace.call_sequence)
        assert seq.count("alpha") == 10
        assert seq.count("beta") == 10
        # every alpha call precedes every beta call
        assert max(i for i, f in enumerate(seq) if f == "alpha") < min(
            i for i, f in enumerate(seq) if f == "beta"
        )

    def test_determinism(self):
        a = Interpreter(loops_program()).run()
        b = Interpreter(loops_program()).run()
        assert a.call_sequence == b.call_sequence
        assert a.total_instructions == b.total_instructions
